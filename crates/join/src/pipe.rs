//! Pipe joins (§4.2.1): sequential composition of service invocations.
//!
//! "Pipe joins use the fact that the access patterns of certain search
//! services accept input parameters. […] A subset of the attributes of
//! these tuples is the set of join attributes of a pipe join, whose
//! values are passed, or 'piped', to another service that appears later
//! in the sequence."
//!
//! The recommended execution is nested-loop with rectangular completion:
//! the same number of fetches `F` is retrieved from the downstream
//! service for each tuple flowing out of the upstream one (§4.5).

use std::collections::BTreeMap;

use seco_model::{Comparator, CompositeTuple, Value};
use seco_query::feasibility::{BindingSource, IoDependency};
use seco_query::predicate::{satisfies_available, ResolvedPredicate, SchemaMap};
use seco_services::invocation::Request;
use seco_services::Service;

use crate::error::JoinError;

/// Outcome of a pipe-join stage.
#[derive(Debug, Clone, PartialEq)]
pub struct PipeOutcome {
    /// Extended composites, in input order (then service rank order).
    pub results: Vec<CompositeTuple>,
    /// Request-responses issued to the downstream service.
    pub calls: usize,
}

/// Executes one pipe-join stage: extends each input composite with the
/// matching tuples of `service` (the query atom `atom`).
///
/// * `bindings` — the atom's input bindings from the feasibility
///   analysis (constants and pipes);
/// * `query_inputs` — values of the `INPUT` variables;
/// * `fetches` — chunks fetched per input composite (the fetch factor
///   `F` of §5.5);
/// * `keep_first` — keep only the first (best-ranked) surviving result
///   per input composite (the §5.6 `Restaurant` choice).
#[allow(clippy::too_many_arguments)]
pub fn pipe_join(
    inputs: &[CompositeTuple],
    atom: &str,
    service: &dyn Service,
    bindings: &[&IoDependency],
    query_inputs: &BTreeMap<String, Value>,
    predicates: &[ResolvedPredicate],
    schemas: &SchemaMap<'_>,
    fetches: usize,
    keep_first: bool,
) -> Result<PipeOutcome, JoinError> {
    let fetches = fetches.max(1);
    let mut results = Vec::new();
    let mut calls = 0usize;

    for input in inputs {
        // Assemble the request for this input composite.
        let mut request = Request::unbound();
        for dep in bindings {
            match &dep.source {
                BindingSource::Constant { operand, op } => {
                    let value = operand.resolve(query_inputs).map_err(JoinError::Query)?;
                    if *op == Comparator::Eq {
                        request = request.bind(dep.input.clone(), value);
                    } else {
                        request = request.constrain(dep.input.clone(), *op, value);
                    }
                }
                BindingSource::Piped { from_atom, from_path } => {
                    let schema = schemas
                        .get(from_atom)
                        .ok_or_else(|| JoinError::Query(seco_query::QueryError::UnknownAtom(from_atom.clone())))?;
                    let tuple = input.component(from_atom).ok_or_else(|| {
                        JoinError::Query(seco_query::QueryError::UnknownAtom(from_atom.clone()))
                    })?;
                    let value = tuple.first_value_at(schema, from_path).map_err(JoinError::Model)?;
                    request = request.bind(dep.input.clone(), value);
                }
            }
        }

        // Fetch F chunks (rectangular completion per input tuple).
        let mut kept_for_input = 0usize;
        'chunks: for c in 0..fetches {
            let resp = service.fetch(&request.at_chunk(c))?;
            calls += 1;
            let has_more = resp.has_more;
            for tuple in resp.tuples {
                let candidate = input.extend_with(atom.to_owned(), tuple);
                if satisfies_available(predicates, &candidate, schemas)? {
                    results.push(candidate);
                    kept_for_input += 1;
                    if keep_first {
                        break 'chunks;
                    }
                }
            }
            if !has_more {
                break;
            }
        }
        let _ = kept_for_input;
    }

    Ok(PipeOutcome { results, calls })
}

#[cfg(test)]
mod tests {
    use super::*;
    use seco_query::builder::running_example;
    use seco_query::feasibility::analyze;
    use seco_query::predicate::resolve_predicates;
    use seco_services::domains::entertainment;
    use seco_services::invocation::Request;
    use seco_model::AttributePath;

    /// Fetches the first theatre chunk and pipes it into Restaurant.
    fn setup_theatre_inputs(
        reg: &seco_services::ServiceRegistry,
    ) -> Vec<CompositeTuple> {
        let theatre = reg.service("Theatre1").unwrap();
        let req = Request::unbound()
            .bind(AttributePath::atomic("UAddress"), Value::text("via Golgi 42"))
            .bind(AttributePath::atomic("UCity"), Value::text("Milano"))
            .bind(AttributePath::atomic("UCountry"), Value::text("country-0"));
        use seco_services::Service as _;
        theatre
            .fetch(&req)
            .unwrap()
            .tuples
            .into_iter()
            .map(|t| CompositeTuple::single("T", t))
            .collect()
    }

    #[test]
    fn pipes_theatre_addresses_into_restaurant() {
        let reg = entertainment::build_registry(3).unwrap();
        let query = running_example();
        let report = analyze(&query, &reg).unwrap();
        let joins = query.expanded_joins(&reg).unwrap();
        let predicates = resolve_predicates(&query, &joins).unwrap();
        let mut schemas = SchemaMap::new();
        for a in &query.atoms {
            schemas.insert(a.alias.clone(), &reg.interface(&a.service).unwrap().schema);
        }
        let inputs = setup_theatre_inputs(&reg);
        assert_eq!(inputs.len(), 5);

        let restaurant = reg.service("Restaurant1").unwrap();
        let bindings = report.bindings_of("R");
        // Join predicates referencing M are skipped (M not present);
        // address equalities hold by construction of the pipe.
        let out = pipe_join(
            &inputs,
            "R",
            restaurant.as_ref(),
            &bindings,
            &query.inputs,
            &predicates,
            &schemas,
            1,
            true,
        )
        .unwrap();
        // One call per theatre.
        assert_eq!(out.calls, 5);
        // keep_first: at most one restaurant per theatre; DinnerPlace
        // selectivity keeps roughly 40% of them.
        assert!(out.results.len() <= 5);
        for r in &out.results {
            assert_eq!(r.arity(), 2);
            let t = r.component("T").unwrap();
            let rr = r.component("R").unwrap();
            let tschema = &reg.interface("Theatre1").unwrap().schema;
            let rschema = &reg.interface("Restaurant1").unwrap().schema;
            // The pipe carried the theatre address into the restaurant
            // lookup (echoed by the service).
            assert_eq!(
                t.first_value_at(tschema, &AttributePath::atomic("TAddress")).unwrap(),
                rr.first_value_at(rschema, &AttributePath::atomic("UAddress")).unwrap()
            );
        }
    }

    #[test]
    fn keep_first_caps_results_per_input() {
        let reg = entertainment::build_registry(3).unwrap();
        let query = running_example();
        let report = analyze(&query, &reg).unwrap();
        let predicates = Vec::new(); // no filtering: count raw results
        let mut schemas = SchemaMap::new();
        for a in &query.atoms {
            schemas.insert(a.alias.clone(), &reg.interface(&a.service).unwrap().schema);
        }
        let inputs = setup_theatre_inputs(&reg);
        let restaurant = reg.service("Restaurant1").unwrap();
        let bindings = report.bindings_of("R");

        let all = pipe_join(
            &inputs, "R", restaurant.as_ref(), &bindings, &query.inputs,
            &predicates, &schemas, 1, false,
        )
        .unwrap();
        let first_only = pipe_join(
            &inputs, "R", restaurant.as_ref(), &bindings, &query.inputs,
            &predicates, &schemas, 1, true,
        )
        .unwrap();
        assert!(first_only.results.len() <= inputs.len());
        assert!(all.results.len() >= first_only.results.len());
        // Non-empty restaurants return a whole chunk (5) vs 1.
        if !first_only.results.is_empty() {
            assert!(all.results.len() > first_only.results.len());
        }
    }

    #[test]
    fn fetch_factor_multiplies_calls() {
        let reg = entertainment::build_registry(3).unwrap();
        let query = running_example();
        let report = analyze(&query, &reg).unwrap();
        let mut schemas = SchemaMap::new();
        for a in &query.atoms {
            schemas.insert(a.alias.clone(), &reg.interface(&a.service).unwrap().schema);
        }
        let inputs = setup_theatre_inputs(&reg);
        let restaurant = reg.service("Restaurant1").unwrap();
        let bindings = report.bindings_of("R");
        let out = pipe_join(
            &inputs, "R", restaurant.as_ref(), &bindings, &query.inputs,
            &[], &schemas, 3, false,
        )
        .unwrap();
        // Restaurants hold 5 = one chunk, so has_more=false stops the
        // fetch loop after one call per input; empty answers also stop
        // after one call. Calls stay at one per input here.
        assert_eq!(out.calls, 5);
    }

    #[test]
    fn empty_inputs_produce_no_calls() {
        let reg = entertainment::build_registry(3).unwrap();
        let query = running_example();
        let report = analyze(&query, &reg).unwrap();
        let schemas = SchemaMap::new();
        let restaurant = reg.service("Restaurant1").unwrap();
        let bindings = report.bindings_of("R");
        let out = pipe_join(
            &[], "R", restaurant.as_ref(), &bindings, &query.inputs,
            &[], &schemas, 1, false,
        )
        .unwrap();
        assert_eq!(out.calls, 0);
        assert!(out.results.is_empty());
    }
}
