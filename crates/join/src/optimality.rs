//! Extraction-optimality (§4.1): the chapter's quality notion for
//! non-top-k join methods.
//!
//! "If we assume that services return results in decreasing ranking
//! order, we say that a join strategy is *extraction-optimal* if it
//! produces elements rk in decreasing order of the product of the two
//! rankings ρX · ρY and with the minimum cost. Such notion extends from
//! tuples to tiles by using the ranking of the first tuple of the tile
//! as representative for the entire tile. […] The notion of extraction
//! optimality can be further refined to be interpreted in *global*
//! sense, i.e. relative to all the tiles in the search space, or in
//! *local* sense, i.e. relative to the tiles already loaded in the
//! search space and available to the join operation."

use seco_model::CompositeTuple;

use crate::strategy::CallTarget;
use crate::tile::{Tile, TileSpace};

/// Number of *rank inversions* in an emission order: pairs `(i, j)`,
/// `i < j`, where the earlier result has a strictly smaller score
/// product than the later one. An extraction-optimal emission has zero
/// inversions.
pub fn score_product_inversions(results: &[CompositeTuple]) -> usize {
    let scores: Vec<f64> = results.iter().map(CompositeTuple::score_product).collect();
    let mut inversions = 0;
    for i in 0..scores.len() {
        for j in i + 1..scores.len() {
            if scores[i] < scores[j] - 1e-12 {
                inversions += 1;
            }
        }
    }
    inversions
}

/// Normalised inversion rate in `[0, 1]`: inversions divided by the
/// number of pairs (0 when fewer than two results).
pub fn inversion_rate(results: &[CompositeTuple]) -> f64 {
    let n = results.len();
    if n < 2 {
        return 0.0;
    }
    let pairs = n * (n - 1) / 2;
    score_product_inversions(results) as f64 / pairs as f64
}

/// True when a tile order is **globally extraction-optimal**: tiles
/// appear in non-increasing representative order relative to *all*
/// tiles of the space (the order must also be a permutation of the
/// whole space).
pub fn is_globally_extraction_optimal(order: &[Tile], space: &TileSpace) -> bool {
    if order.len() != space.tile_count() {
        return false;
    }
    order
        .windows(2)
        .all(|w| space.representative(w[0]) >= space.representative(w[1]) - 1e-12)
}

/// True when a tile order is **locally extraction-optimal**: every
/// processed tile has the maximum representative among the tiles
/// *available* (loaded but not yet processed) at that moment. The call
/// sequence determines availability; `calls` and `order` must come from
/// the same exploration.
pub fn is_locally_extraction_optimal(
    calls: &[CallTarget],
    order: &[Tile],
    space: &TileSpace,
) -> bool {
    // Replay the calls, tracking availability, and check each processed
    // tile against the available alternatives at its processing time.
    let mut cx = 0usize;
    let mut cy = 0usize;
    let mut call_iter = calls.iter();
    let mut processed: std::collections::BTreeSet<Tile> = std::collections::BTreeSet::new();

    for tile in order {
        // Advance calls until the tile's chunks are loaded.
        while tile.x >= cx || tile.y >= cy {
            match call_iter.next() {
                Some(CallTarget::X) => cx += 1,
                Some(CallTarget::Y) => cy += 1,
                None => return false, // order references unloaded chunks
            }
        }
        // All loaded, unprocessed tiles are the alternatives.
        let best_available = (0..cx)
            .flat_map(|x| (0..cy).map(move |y| Tile::new(x, y)))
            .filter(|t| !processed.contains(t) && space.contains(*t))
            .map(|t| space.representative(t))
            .fold(f64::NEG_INFINITY, f64::max);
        if space.representative(*tile) < best_available - 1e-12 {
            return false;
        }
        processed.insert(*tile);
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::completion::explore;
    use seco_model::{ScoreDecay, ScoringFunction};
    use seco_plan::{Completion, Invocation};

    fn space(dx: ScoreDecay, dy: ScoreDecay, total: usize, chunk: usize) -> TileSpace {
        TileSpace::new(
            ScoringFunction::new(dx, total, chunk).unwrap(),
            ScoringFunction::new(dy, total, chunk).unwrap(),
        )
    }

    #[test]
    fn optimal_order_is_globally_optimal() {
        let s = space(ScoreDecay::Linear, ScoreDecay::Quadratic, 40, 10);
        let order = s.optimal_order();
        assert!(is_globally_extraction_optimal(&order, &s));
        // A reversed order is not.
        let mut rev = order.clone();
        rev.reverse();
        assert!(!is_globally_extraction_optimal(&rev, &s));
        // A partial order is not (must cover the space).
        assert!(!is_globally_extraction_optimal(&order[..3], &s));
    }

    #[test]
    fn rectangular_merge_scan_is_locally_optimal_on_symmetric_spaces() {
        // §4.4.1: "The rectangular strategy is locally extraction-
        // optimal."
        let s = space(ScoreDecay::Linear, ScoreDecay::Linear, 40, 10);
        let e = explore(
            Invocation::merge_scan_even(),
            Completion::Rectangular,
            1,
            s.nx,
            s.ny,
        )
        .unwrap();
        assert!(is_locally_extraction_optimal(&e.calls, &e.order, &s));
    }

    #[test]
    fn triangular_merge_scan_is_locally_optimal() {
        // §4.4.2: "The triangular extraction strategy is locally
        // extraction-optimal."
        let s = space(ScoreDecay::Linear, ScoreDecay::Linear, 40, 10);
        let e = explore(
            Invocation::merge_scan_even(),
            Completion::Triangular,
            1,
            s.nx,
            s.ny,
        )
        .unwrap();
        assert!(is_locally_extraction_optimal(&e.calls, &e.order, &s));
    }

    #[test]
    fn nested_loop_is_globally_optimal_iff_the_step_drops_to_zero_at_h() {
        // §4.4.1: "With the nested loop method, if the step scoring
        // function of the first service drops from 1 to 0 exactly in
        // correspondence to the h-th chunk, then the method is globally
        // extraction-optimal."
        let ideal = TileSpace::new(
            ScoringFunction::new(
                ScoreDecay::Step {
                    h: 2,
                    high: 1.0,
                    low: 0.0,
                },
                40,
                10,
            )
            .unwrap(),
            ScoringFunction::new(ScoreDecay::Linear, 40, 10).unwrap(),
        );
        let e = explore(
            Invocation::NestedLoop,
            Completion::Rectangular,
            2,
            ideal.nx,
            ideal.ny,
        )
        .unwrap();
        // With a hard 1→0 step the NL order is monotone in the
        // representative (all post-step tiles have representative 0).
        assert!(
            is_globally_extraction_optimal(&e.order, &ideal),
            "ideal step must make NL+rect globally optimal"
        );

        // With a progressive first service NL is NOT globally optimal.
        let progressive = space(ScoreDecay::Linear, ScoreDecay::Linear, 40, 10);
        let e2 = explore(
            Invocation::NestedLoop,
            Completion::Rectangular,
            2,
            progressive.nx,
            progressive.ny,
        )
        .unwrap();
        assert!(!is_globally_extraction_optimal(&e2.order, &progressive));
    }

    #[test]
    fn inversion_counting() {
        use seco_model::{Adornment, AttributeDef, DataType, ServiceSchema, Tuple};
        let schema = ServiceSchema::new(
            "S",
            vec![AttributeDef::atomic("A", DataType::Int, Adornment::Output)],
        )
        .unwrap();
        let mk =
            |s: f64| CompositeTuple::single("X", Tuple::builder(&schema).score(s).build().unwrap());
        let sorted = vec![mk(0.9), mk(0.5), mk(0.1)];
        assert_eq!(score_product_inversions(&sorted), 0);
        assert_eq!(inversion_rate(&sorted), 0.0);
        let reversed = vec![mk(0.1), mk(0.5), mk(0.9)];
        assert_eq!(score_product_inversions(&reversed), 3);
        assert_eq!(inversion_rate(&reversed), 1.0);
        let mixed = vec![mk(0.5), mk(0.9), mk(0.1)];
        assert_eq!(score_product_inversions(&mixed), 1);
        assert_eq!(inversion_rate(&[]), 0.0);
        assert_eq!(inversion_rate(&[mk(1.0)]), 0.0);
    }

    #[test]
    fn local_optimality_rejects_greedy_violations() {
        // Processing the far corner before the origin is locally
        // suboptimal under any decreasing scoring.
        let s = space(ScoreDecay::Linear, ScoreDecay::Linear, 20, 10);
        let calls = vec![CallTarget::X, CallTarget::Y, CallTarget::X, CallTarget::Y];
        let bad_order = vec![
            Tile::new(1, 1),
            Tile::new(0, 0),
            Tile::new(1, 0),
            Tile::new(0, 1),
        ];
        assert!(!is_locally_extraction_optimal(&calls, &bad_order, &s));
        // Order referencing never-loaded chunks is rejected.
        let impossible = vec![Tile::new(3, 3)];
        assert!(!is_locally_extraction_optimal(&calls[..2], &impossible, &s));
    }
}
