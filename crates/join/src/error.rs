//! Error type of the join layer.

use std::fmt;

use seco_model::ModelError;
use seco_query::QueryError;
use seco_services::ServiceError;

/// Errors raised while executing join methods.
#[derive(Debug, Clone, PartialEq)]
pub enum JoinError {
    /// Underlying model error.
    Model(ModelError),
    /// Underlying query error (predicate evaluation).
    Query(QueryError),
    /// Underlying service error (request-responses).
    Service(ServiceError),
    /// The method/parameter combination is ill-formed.
    BadMethod {
        /// Description of the problem.
        detail: String,
    },
}

impl fmt::Display for JoinError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JoinError::Model(e) => write!(f, "model error: {e}"),
            JoinError::Query(e) => write!(f, "query error: {e}"),
            JoinError::Service(e) => write!(f, "service error: {e}"),
            JoinError::BadMethod { detail } => write!(f, "bad join method: {detail}"),
        }
    }
}

impl std::error::Error for JoinError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            JoinError::Model(e) => Some(e),
            JoinError::Query(e) => Some(e),
            JoinError::Service(e) => Some(e),
            JoinError::BadMethod { .. } => None,
        }
    }
}

impl From<ModelError> for JoinError {
    fn from(e: ModelError) -> Self {
        JoinError::Model(e)
    }
}
impl From<QueryError> for JoinError {
    fn from(e: QueryError) -> Self {
        JoinError::Query(e)
    }
}
impl From<ServiceError> for JoinError {
    fn from(e: ServiceError) -> Self {
        JoinError::Service(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = JoinError::BadMethod {
            detail: "zero ratio".into(),
        };
        assert!(e.to_string().contains("zero ratio"));
        assert!(std::error::Error::source(&e).is_none());
        let e: JoinError = ServiceError::UnknownService("s".into()).into();
        assert!(std::error::Error::source(&e).is_some());
        let e: JoinError = QueryError::UnknownAtom("a".into()).into();
        assert!(e.to_string().contains("query error"));
        let e: JoinError = ModelError::UnknownName("m".into()).into();
        assert!(e.to_string().contains("model error"));
    }
}
