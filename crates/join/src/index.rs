//! Hash-accelerated tile joins: options, counters, key plans, and the
//! per-chunk hash index.
//!
//! The baseline `join_tile` scans the full `nX × nY` cross product of a
//! tile. When the predicate set contains equality conjuncts over atomic
//! attributes of the two streams' atoms ([`seco_query::EquiCandidate`]),
//! a key mismatch on any such conjunct falsifies the conjunction under
//! *every* group-row mapping, so pairs with different keys can be
//! skipped without evaluating them. This module turns that observation
//! into a per-chunk hash index: each Y chunk is bucketed once by its
//! join-key values (interned to [`Symbol`]s), and each X composite
//! probes its bucket instead of scanning the chunk.
//!
//! Exactness invariants, relied on by the equivalence property tests:
//!
//! * **Key encoding is equality-faithful.** Two values get the same
//!   encoding whenever the baseline's `=` holds (numeric promotion
//!   included: `Int` and `Float` both encode as the promoted `f64`'s
//!   bits, with `-0.0` normalized to `0.0`), and probing re-verifies
//!   every bucket hit with the full compiled evaluation, so accidental
//!   encoding collisions (large-integer rounding, separator bytes in
//!   text) can only add *candidates*, never results.
//! * **Fallback on anything unusual.** A composite missing a planned
//!   atom, or carrying an unencodable value (a raw `NaN`, on which the
//!   baseline would error), is left out of the buckets and scanned
//!   against every probe, so the interpreter's behavior — including its
//!   errors — is reproduced.
//! * **Emission order is the nested loop's.** Bucket entries keep
//!   source indices, and the probe merges bucket hits with unscanned
//!   ("unkeyed") entries in ascending index order, so results appear in
//!   the exact (i, j) order of the baseline.

use std::collections::HashMap;

use seco_model::{ChunkColumns, ColumnRef, CompositeTuple, Symbol, Value};
use seco_query::EquiCandidate;

/// Which candidate-pair enumeration the join executor uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum JoinIndexMode {
    /// The original nested-loop scan, untouched.
    Off,
    /// Per-chunk hash index on equi-join keys, with nested-loop
    /// fallback when no key exists. Byte-identical to `Off`.
    #[default]
    Hash,
}

/// Join-kernel options carried through `EngineConfig` and the CLI.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct JoinIndexOptions {
    /// Candidate enumeration mode.
    pub mode: JoinIndexMode,
    /// Enables the score-frontier tile bound
    /// ([`crate::strategy::TilePruner`]) on top of index-emptiness
    /// pruning.
    pub tile_prune: bool,
}

/// Options for the columnar data plane. Both switches preserve
/// byte-identical results; they only choose how candidate pairs are
/// keyed and evaluated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ColumnarOptions {
    /// Consume chunk bodies column-wise where possible: hash keys are
    /// extracted straight from typed columns and batch kernels read
    /// body-backed columns zero-copy. When off, executors go through
    /// the materialized row view only.
    pub columnar: bool,
    /// Evaluate compiled predicates with vectorized batch kernels
    /// (selection masks over whole chunks, residual evaluation over
    /// index-selected candidate lists). When off, every candidate is
    /// evaluated scalar, one composite at a time.
    pub batch_eval: bool,
}

impl Default for ColumnarOptions {
    fn default() -> Self {
        ColumnarOptions {
            columnar: true,
            batch_eval: true,
        }
    }
}

impl ColumnarOptions {
    /// The pre-columnar row-at-a-time configuration.
    pub fn row_plane() -> ColumnarOptions {
        ColumnarOptions {
            columnar: false,
            batch_eval: false,
        }
    }
}

/// Counters describing how much work the join kernel actually did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct JoinStats {
    /// Hash indexes built (one per chunk that got bucketed).
    pub index_builds: u64,
    /// Bucket lookups performed by keyed probes.
    pub probes: u64,
    /// Candidate pairs skipped without evaluation (key mismatches and
    /// pruned tiles).
    pub pairs_skipped: u64,
    /// Whole tiles skipped (index-emptiness or score-frontier bound).
    pub tiles_pruned: u64,
    /// Predicate-set evaluations performed (compiled or interpreted).
    /// Batch kernels count every candidate they cover, so this matches
    /// the scalar path exactly.
    pub predicate_evals: u64,
    /// Typed columns consumed by the columnar plane (key extraction,
    /// batch kernels, and gathers).
    pub columns_scanned: u64,
    /// Successful batch-kernel invocations (each covers many
    /// candidates; scalar fallbacks are not counted).
    pub batch_evals: u64,
    /// Rows materialized out of the columnar plane into the shared row
    /// view (chunks that stayed columnar end to end contribute zero).
    pub rows_materialized: u64,
    /// Chunks actually fetched from the two streams (rank join and the
    /// paced executor both report `calls_x + calls_y` here).
    pub chunks_fetched: u64,
    /// Chunks the rank join proved it never needed to fetch (known only
    /// when the operator was given a [`crate::tile::TileSpace`] with
    /// total chunk counts; zero otherwise).
    pub chunks_saved: u64,
    /// Threshold-bound evaluations performed by the rank join.
    pub bound_checks: u64,
    /// Intermediate composite materializations the n-ary kernel elided
    /// (rows a binary cascade would have built as `CompositeTuple`s).
    pub intermediates_elided: u64,
    /// Microseconds until the k-th result was provably final in the
    /// rank join's buffer (0 when the run never reached k).
    pub time_to_kth_us: u64,
}

impl JoinStats {
    /// Accumulates `other` into `self`.
    pub fn merge(&mut self, other: &JoinStats) {
        self.index_builds += other.index_builds;
        self.probes += other.probes;
        self.pairs_skipped += other.pairs_skipped;
        self.tiles_pruned += other.tiles_pruned;
        self.predicate_evals += other.predicate_evals;
        self.columns_scanned += other.columns_scanned;
        self.batch_evals += other.batch_evals;
        self.rows_materialized += other.rows_materialized;
        self.chunks_fetched += other.chunks_fetched;
        self.chunks_saved += other.chunks_saved;
        self.bound_checks += other.bound_checks;
        self.intermediates_elided += other.intermediates_elided;
        // Time-to-k-th is a latency, not a volume: merging runs keeps
        // the slowest one rather than summing unrelated clocks.
        self.time_to_kth_us = self.time_to_kth_us.max(other.time_to_kth_us);
    }
}

/// Separates the per-candidate encodings inside a joint key. Text
/// containing the separator can at worst merge two distinct joint keys
/// into one bucket — a safe collision, since every hit is re-verified.
pub(crate) const KEY_SEP: char = '\u{1f}';

/// Appends an equality-faithful encoding of `v` to `out`. Returns
/// `false` for values with no faithful encoding (a raw `NaN`), which
/// the caller must route to the scan-everything fallback.
pub(crate) fn encode_value(v: &Value, out: &mut String) -> bool {
    use std::fmt::Write;
    match v {
        // `=` holds for Null only against Null, so Null gets its own tag.
        Value::Null => out.push('n'),
        Value::Bool(b) => out.push_str(if *b { "b1" } else { "b0" }),
        // Int and Float share the baseline's numeric promotion: encode
        // the promoted f64's bits. `-0.0 == 0.0` under `=`, so normalize.
        Value::Int(i) => {
            let f = *i as f64;
            let f = if f == 0.0 { 0.0 } else { f };
            let _ = write!(out, "f{:016x}", f.to_bits());
        }
        Value::Float(f) => {
            if f.is_nan() {
                return false;
            }
            let f = if *f == 0.0 { 0.0 } else { *f };
            let _ = write!(out, "f{:016x}", f.to_bits());
        }
        Value::Text(s) => {
            out.push('t');
            out.push_str(s);
        }
        Value::Date(d) => {
            let _ = write!(out, "d{}", d.ordinal());
        }
    }
    true
}

/// Appends the encoding of row `j` of a typed column — byte-identical
/// to [`encode_value`] on the row view's `Value`, without building it.
/// Returns `false` for unencodable cells (a raw `NaN`).
fn encode_cell(col: &ColumnRef<'_>, j: usize, out: &mut String) -> bool {
    use std::fmt::Write;
    if col.is_null(j) {
        out.push('n');
        return true;
    }
    match col {
        ColumnRef::Bool(v, _) => out.push_str(if v[j] { "b1" } else { "b0" }),
        ColumnRef::Int(v, _) => {
            let f = v[j] as f64;
            let f = if f == 0.0 { 0.0 } else { f };
            let _ = write!(out, "f{:016x}", f.to_bits());
        }
        ColumnRef::Float(v, _) => {
            if v[j].is_nan() {
                return false;
            }
            let f = if v[j] == 0.0 { 0.0 } else { v[j] };
            let _ = write!(out, "f{:016x}", f.to_bits());
        }
        ColumnRef::Text(v, _) => {
            out.push('t');
            out.push_str(v[j].as_str());
        }
        ColumnRef::Date(v, _) => {
            let _ = write!(out, "d{}", v[j].ordinal());
        }
        ColumnRef::Mixed(v) => return encode_value(&v[j], out),
    }
    true
}

/// One equi conjunct oriented for a concrete (X, Y) chunk pair: which
/// atom/field the indexed (Y) side keys on, and which atom/field the
/// probing (X) side supplies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct PlanEntry {
    y_atom: Symbol,
    y_field: usize,
    x_atom: Symbol,
    x_field: usize,
}

/// The key layout for one Y-chunk shape: the oriented equi conjuncts
/// whose Y-side atoms appear in the chunk's composites. Plans are
/// deduplicated per run; indexes and probe-key caches are tagged with
/// the plan they were built under.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KeyPlan {
    entries: Vec<PlanEntry>,
}

impl KeyPlan {
    /// Orients `equi` against a sample composite of the Y chunk.
    /// Returns `None` when no conjunct applies (the executor then keeps
    /// the nested loop for tiles over this chunk).
    ///
    /// A conjunct whose *both* atoms appear in the sample is still
    /// usable: the merged pair shares those components (or the merge
    /// fails), so a key mismatch implies either no merge or a false
    /// predicate — skipping remains exact.
    pub fn build(equi: &[EquiCandidate], sample: &CompositeTuple) -> Option<KeyPlan> {
        let mut entries = Vec::new();
        for c in equi {
            let has_right = sample.component(c.right_atom.as_str()).is_some();
            let has_left = sample.component(c.left_atom.as_str()).is_some();
            if has_right {
                entries.push(PlanEntry {
                    y_atom: c.right_atom,
                    y_field: c.right_field,
                    x_atom: c.left_atom,
                    x_field: c.left_field,
                });
            } else if has_left {
                entries.push(PlanEntry {
                    y_atom: c.left_atom,
                    y_field: c.left_field,
                    x_atom: c.right_atom,
                    x_field: c.right_field,
                });
            }
        }
        if entries.is_empty() {
            None
        } else {
            Some(KeyPlan { entries })
        }
    }

    fn key_of(
        &self,
        composite: &CompositeTuple,
        pick: impl Fn(&PlanEntry) -> (Symbol, usize),
    ) -> Option<Symbol> {
        let mut buf = String::new();
        for (i, e) in self.entries.iter().enumerate() {
            if i > 0 {
                buf.push(KEY_SEP);
            }
            let (atom, field) = pick(e);
            let tuple = composite.component(atom.as_str())?;
            if !encode_value(tuple.atomic_at(field), &mut buf) {
                return None;
            }
        }
        Some(Symbol::intern(&buf))
    }

    /// The joint key of a Y-side composite, or `None` when the
    /// composite is missing a planned atom or holds an unencodable
    /// value (it then lands in the index's unkeyed list).
    pub fn y_key(&self, composite: &CompositeTuple) -> Option<Symbol> {
        self.key_of(composite, |e| (e.y_atom, e.y_field))
    }

    /// The joint key an X-side composite probes with, or `None` when it
    /// cannot supply every planned value (it then scans the whole
    /// chunk).
    pub fn x_key(&self, composite: &CompositeTuple) -> Option<Symbol> {
        self.key_of(composite, |e| (e.x_atom, e.x_field))
    }

    /// The single atom every Y-side entry keys on, when there is one.
    /// Only then can keys be read straight off a service chunk's
    /// columns (whose rows all belong to that atom).
    pub fn single_y_atom(&self) -> Option<Symbol> {
        let first = self.entries.first()?.y_atom;
        self.entries
            .iter()
            .all(|e| e.y_atom == first)
            .then_some(first)
    }
}

/// Hash index over one Y chunk, built lazily once and cached for every
/// tile in that chunk's row.
#[derive(Debug, Clone)]
pub struct JoinIndex {
    /// Which [`KeyPlan`] (by run-local id) the buckets were keyed under.
    pub plan_id: usize,
    /// Join-key buckets; entries are ascending source indices.
    pub buckets: HashMap<Symbol, Vec<u32>>,
    /// Composites with no key (missing atom, unencodable value), probed
    /// by every X composite. Ascending source indices.
    pub unkeyed: Vec<u32>,
}

impl JoinIndex {
    /// Buckets `chunk` under `plan`.
    pub fn build(plan: &KeyPlan, plan_id: usize, chunk: &[CompositeTuple]) -> JoinIndex {
        let mut buckets: HashMap<Symbol, Vec<u32>> = HashMap::new();
        let mut unkeyed = Vec::new();
        for (j, c) in chunk.iter().enumerate() {
            match plan.y_key(c) {
                Some(key) => buckets.entry(key).or_default().push(j as u32),
                None => unkeyed.push(j as u32),
            }
        }
        JoinIndex {
            plan_id,
            buckets,
            unkeyed,
        }
    }

    /// Buckets a single-atom chunk straight from its typed columns,
    /// never touching the row view. Returns the number of columns
    /// scanned alongside the index. `None` when the plan keys on more
    /// than one atom, `atom` is not it, or a planned field has no
    /// atomic column — the caller then falls back to the row build,
    /// which produces byte-identical buckets.
    pub fn build_from_columns(
        plan: &KeyPlan,
        plan_id: usize,
        atom: Symbol,
        cols: &ChunkColumns,
    ) -> Option<(JoinIndex, usize)> {
        if plan.single_y_atom() != Some(atom) {
            return None;
        }
        let key_cols: Vec<ColumnRef<'_>> = plan
            .entries
            .iter()
            .map(|e| cols.column(e.y_field))
            .collect::<Option<_>>()?;
        let mut buckets: HashMap<Symbol, Vec<u32>> = HashMap::new();
        let mut unkeyed = Vec::new();
        let mut buf = String::new();
        'rows: for j in 0..cols.len() {
            buf.clear();
            for (i, col) in key_cols.iter().enumerate() {
                if i > 0 {
                    buf.push(KEY_SEP);
                }
                if !encode_cell(col, j, &mut buf) {
                    unkeyed.push(j as u32);
                    continue 'rows;
                }
            }
            buckets
                .entry(Symbol::intern(&buf))
                .or_default()
                .push(j as u32);
        }
        Some((
            JoinIndex {
                plan_id,
                buckets,
                unkeyed,
            },
            key_cols.len(),
        ))
    }
}

/// Cached probe keys of one X chunk under one plan.
#[derive(Debug, Clone)]
pub struct ProbeKeys {
    /// Which plan the keys were extracted under.
    pub plan_id: usize,
    /// Per composite: its probe key, or `None` for scan-everything.
    pub keys: Vec<Option<Symbol>>,
    /// Distinct probe keys present (for index-emptiness pruning).
    pub distinct: Vec<Symbol>,
    /// True when every composite has a probe key.
    pub all_keyed: bool,
}

impl ProbeKeys {
    /// Extracts the probe keys of `chunk` under `plan`.
    pub fn build(plan: &KeyPlan, plan_id: usize, chunk: &[CompositeTuple]) -> ProbeKeys {
        let mut keys = Vec::with_capacity(chunk.len());
        let mut distinct: Vec<Symbol> = Vec::new();
        let mut all_keyed = true;
        for c in chunk {
            let key = plan.x_key(c);
            match key {
                Some(k) => {
                    if !distinct.contains(&k) {
                        distinct.push(k);
                    }
                }
                None => all_keyed = false,
            }
            keys.push(key);
        }
        ProbeKeys {
            plan_id,
            keys,
            distinct,
            all_keyed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encoding_is_equality_faithful() {
        let mut a = String::new();
        let mut b = String::new();
        // Int/Float promotion: 3 = 3.0.
        assert!(encode_value(&Value::Int(3), &mut a));
        assert!(encode_value(&Value::Float(3.0), &mut b));
        assert_eq!(a, b);
        // -0.0 = 0.0.
        a.clear();
        b.clear();
        assert!(encode_value(&Value::Float(-0.0), &mut a));
        assert!(encode_value(&Value::Float(0.0), &mut b));
        assert_eq!(a, b);
        // Null only matches Null.
        a.clear();
        b.clear();
        assert!(encode_value(&Value::Null, &mut a));
        assert!(encode_value(&Value::text(""), &mut b));
        assert_ne!(a, b);
        // Distinct texts stay distinct.
        a.clear();
        b.clear();
        assert!(encode_value(&Value::text("x"), &mut a));
        assert!(encode_value(&Value::text("y"), &mut b));
        assert_ne!(a, b);
        // NaN has no faithful encoding.
        a.clear();
        assert!(!encode_value(&Value::Float(f64::NAN), &mut a));
    }

    #[test]
    fn stats_merge_adds_counters() {
        let mut s = JoinStats {
            index_builds: 1,
            probes: 2,
            pairs_skipped: 3,
            tiles_pruned: 4,
            predicate_evals: 5,
            columns_scanned: 6,
            batch_evals: 7,
            rows_materialized: 8,
            chunks_fetched: 9,
            chunks_saved: 10,
            bound_checks: 11,
            intermediates_elided: 12,
            time_to_kth_us: 500,
        };
        s.merge(&JoinStats {
            index_builds: 10,
            probes: 20,
            pairs_skipped: 30,
            tiles_pruned: 40,
            predicate_evals: 50,
            columns_scanned: 60,
            batch_evals: 70,
            rows_materialized: 80,
            chunks_fetched: 90,
            chunks_saved: 100,
            bound_checks: 110,
            intermediates_elided: 120,
            time_to_kth_us: 130,
        });
        assert_eq!(
            s,
            JoinStats {
                index_builds: 11,
                probes: 22,
                pairs_skipped: 33,
                tiles_pruned: 44,
                predicate_evals: 55,
                columns_scanned: 66,
                batch_evals: 77,
                rows_materialized: 88,
                chunks_fetched: 99,
                chunks_saved: 110,
                bound_checks: 121,
                intermediates_elided: 132,
                // Latency merges by max, not sum.
                time_to_kth_us: 500,
            }
        );
    }

    #[test]
    fn columnar_key_build_matches_row_build() {
        use seco_model::tuple::FieldSlot;
        use seco_model::Tuple;
        // K mixes Int/Float/Null (a Mixed column); T stays typed Text.
        let rows: Vec<Tuple> = [
            (Value::Int(1), Value::text("a")),
            (Value::Int(0), Value::text("b")),
            (Value::Null, Value::text("c")),
            (Value::Float(-0.0), Value::text("a")),
            (Value::Float(f64::NAN), Value::text("d")),
            (Value::Int(1), Value::Null),
        ]
        .into_iter()
        .map(|(k, t)| Tuple {
            fields: vec![FieldSlot::Atomic(k), FieldSlot::Atomic(t)],
            score: 0.0,
            source_rank: 0,
        })
        .collect();
        let atom = Symbol::from("y");
        let plan = KeyPlan {
            entries: vec![
                PlanEntry {
                    y_atom: atom,
                    y_field: 0,
                    x_atom: Symbol::from("x"),
                    x_field: 0,
                },
                PlanEntry {
                    y_atom: atom,
                    y_field: 1,
                    x_atom: Symbol::from("x"),
                    x_field: 1,
                },
            ],
        };
        let composites: Vec<CompositeTuple> = rows
            .iter()
            .map(|t| CompositeTuple::single("y", t.clone()))
            .collect();
        let row_ix = JoinIndex::build(&plan, 0, &composites);
        let cols = ChunkColumns::from_tuples(&rows).expect("flat rows columnarize");
        let (col_ix, scanned) =
            JoinIndex::build_from_columns(&plan, 0, atom, &cols).expect("columnar build applies");
        assert_eq!(scanned, 2);
        assert_eq!(col_ix.unkeyed, row_ix.unkeyed);
        assert_eq!(col_ix.buckets, row_ix.buckets);
        // A plan keying on a different atom refuses the columnar path.
        assert!(JoinIndex::build_from_columns(&plan, 0, Symbol::from("z"), &cols).is_none());
    }
}
