//! The parallel-join executor: real chunk fetching over the tile space.
//!
//! Joins two *chunked streams* (usually two service invocations, but the
//! engine also joins intermediate composite streams) according to an
//! invocation strategy, a completion strategy, and a result target `k`.
//! The executor fetches chunks lazily, processes tiles in strategy
//! order, evaluates the join predicates on every candidate pair of a
//! tile (under the repeating-group mapping semantics), and emits joined
//! composites in tile order — the non-blocking dataflow of §4.1.

use std::sync::Arc;

use seco_model::{BitMask, ChunkColumns, Column, ColumnRef, CompositeTuple, Symbol};
use seco_plan::{Completion, Invocation};
use seco_query::predicate::{satisfies_available, ResolvedPredicate, SchemaMap};
use seco_query::{BatchPlan, CompiledPredicates, EvalScratch};
use seco_services::invocation::{ChunkBody, Request};
use seco_services::Service;

use crate::error::JoinError;
use crate::index::{
    ColumnarOptions, JoinIndex, JoinIndexMode, JoinIndexOptions, JoinStats, KeyPlan, ProbeKeys,
};
use crate::strategy::{CallScheduler, CallTarget, TilePruner};
use crate::tile::Tile;

/// One fetched chunk of composites plus its cached header data.
///
/// The chunk's §4.1 representative score is computed once, when the
/// chunk is built (or forwarded from the service chunk's own header),
/// so tile extraction never rescans tuples to recover it. Cloning a
/// `CompositeChunk` clones composite *handles* (atom symbols and
/// `Arc`-shared components), never tuple payloads.
#[derive(Debug, Clone, PartialEq)]
pub struct CompositeChunk {
    /// The chunk's composites, in stream order.
    pub composites: Vec<CompositeTuple>,
    /// Whether more chunks exist past this one.
    pub has_more: bool,
    /// The chunk's representative score: the head composite's score
    /// product (1.0 for an empty chunk), per the tile-space convention
    /// of taking the first tuple as representative for the whole chunk.
    pub representative: f64,
    /// The service chunk body the composites were built from, when the
    /// chunk came from a single-atom service stream: the atom every
    /// composite carries, plus the shared body whose columns (if
    /// columnar) back the composites row for row. Lets the join kernel
    /// extract hash keys and run batch kernels straight off typed
    /// columns, zero-copy. `None` for derived or in-memory chunks.
    pub body: Option<(Symbol, Arc<ChunkBody>)>,
}

impl CompositeChunk {
    /// Builds a chunk, deriving the representative from the head
    /// composite.
    pub fn new(composites: Vec<CompositeTuple>, has_more: bool) -> Self {
        let representative = composites
            .first()
            .map_or(1.0, CompositeTuple::score_product);
        CompositeChunk {
            composites,
            has_more,
            representative,
            body: None,
        }
    }

    /// Builds a chunk with an externally supplied representative (e.g.
    /// forwarded from a service chunk's cached header).
    pub fn with_representative(
        composites: Vec<CompositeTuple>,
        has_more: bool,
        representative: f64,
    ) -> Self {
        CompositeChunk {
            composites,
            has_more,
            representative,
            body: None,
        }
    }

    /// Attaches the backing service chunk body. The caller asserts that
    /// every composite is `CompositeTuple::single(atom, row_i)` over the
    /// body's rows, in order — the columnar kernels rely on it.
    pub fn with_chunk_body(mut self, atom: Symbol, body: Arc<ChunkBody>) -> Self {
        self.body = Some((atom, body));
        self
    }

    /// Number of composites in the chunk.
    pub fn len(&self) -> usize {
        self.composites.len()
    }

    /// True when the chunk carries no composites.
    pub fn is_empty(&self) -> bool {
        self.composites.is_empty()
    }
}

/// A lazily fetched, chunked stream of composite tuples.
pub trait ChunkStream {
    /// Fetches chunk `idx` (0-based).
    fn fetch_chunk(&mut self, idx: usize) -> Result<CompositeChunk, JoinError>;
}

/// Adapter: one service invocation (fixed bindings) as a stream of
/// single-atom composites.
pub struct ServiceStream<'a> {
    atom: Symbol,
    service: &'a dyn Service,
    request: Request,
}

impl<'a> ServiceStream<'a> {
    /// Creates a stream for `atom` answered by `service` under
    /// `request`'s bindings.
    pub fn new(atom: impl Into<Symbol>, service: &'a dyn Service, request: Request) -> Self {
        ServiceStream {
            atom: atom.into(),
            service,
            request,
        }
    }
}

impl ChunkStream for ServiceStream<'_> {
    fn fetch_chunk(&mut self, idx: usize) -> Result<CompositeChunk, JoinError> {
        let resp = self.service.fetch(&self.request.at_chunk(idx))?;
        let body = resp.body().clone();
        let composites = resp
            .tuples()
            .iter()
            .map(|t| CompositeTuple::single(self.atom, t.clone()))
            .collect();
        // The representative rides along on the service chunk's shared
        // header — no rescan of tuple scores here.
        Ok(
            CompositeChunk::with_representative(composites, resp.has_more(), resp.head_score())
                .with_chunk_body(self.atom, body),
        )
    }
}

/// In-memory stream over pre-chunked composites (tests and re-joining
/// buffered intermediate results).
pub struct MemoryStream {
    chunks: Vec<CompositeChunk>,
}

impl MemoryStream {
    /// Chunks an already-materialized list; per-chunk representatives
    /// are computed once, here.
    pub fn new(tuples: Vec<CompositeTuple>, chunk_size: usize) -> Self {
        let chunk_size = chunk_size.max(1);
        let n_chunks = tuples.chunks(chunk_size).count();
        let chunks = tuples
            .chunks(chunk_size)
            .enumerate()
            .map(|(i, c)| CompositeChunk::new(c.to_vec(), i + 1 < n_chunks))
            .collect();
        MemoryStream { chunks }
    }
}

impl ChunkStream for MemoryStream {
    fn fetch_chunk(&mut self, idx: usize) -> Result<CompositeChunk, JoinError> {
        Ok(self
            .chunks
            .get(idx)
            .cloned()
            .unwrap_or_else(|| CompositeChunk::new(Vec::new(), false)))
    }
}

/// Outcome of a parallel join run.
#[derive(Debug, Clone, PartialEq)]
pub struct JoinOutcome {
    /// Joined composites, in emission (tile) order.
    pub results: Vec<CompositeTuple>,
    /// Request-responses issued to the first stream.
    pub calls_x: usize,
    /// Request-responses issued to the second stream.
    pub calls_y: usize,
    /// Tiles processed, in order.
    pub tiles: Vec<Tile>,
    /// Observed representative score of each processed tile (the
    /// product of the two chunks' cached head scores), aligned with
    /// `tiles`. Computed from chunk headers, never by rescanning
    /// tuples.
    pub tile_representatives: Vec<f64>,
    /// True when the whole tile space was explored (no more results
    /// exist); false when the run stopped at the `k` target.
    pub exhausted: bool,
    /// True when a branch failure degraded the outcome: `results` is
    /// then a partial answer (possibly the surviving branch passed
    /// through unjoined).
    pub degraded: bool,
    /// Join-kernel work counters (index builds, probes, skipped pairs,
    /// pruned tiles, predicate evaluations).
    pub stats: JoinStats,
}

/// The parallel-join executor (§4.2.2).
pub struct ParallelJoinExecutor<'p> {
    /// Join predicates between the two streams' atoms (already
    /// resolved).
    pub predicates: &'p [ResolvedPredicate],
    /// Schemas of all atoms appearing in the streams.
    pub schemas: &'p SchemaMap<'p>,
    /// Invocation strategy.
    pub invocation: Invocation,
    /// Completion strategy.
    pub completion: Completion,
    /// Step parameter `h` (chunks) of the first stream, for nested-loop.
    pub h: usize,
    /// Stop after emitting this many results (0 = explore everything).
    pub k: usize,
    /// Join-kernel options: candidate enumeration mode and tile
    /// pruning. The default (hash mode, no score pruning) is
    /// byte-identical to the nested-loop baseline.
    pub options: JoinIndexOptions,
    /// Columnar data-plane options: column-backed key extraction and
    /// vectorized batch predicate evaluation. Both default on; both are
    /// byte-identical to the row-at-a-time plane.
    pub columnar: ColumnarOptions,
    /// Shared executor pool for intra-tile morsel parallelism. `None`
    /// (or a one-worker pool) takes the exact serial code path; with
    /// more workers, each tile's X rows are split into segments that
    /// run as pool morsels and are reduced in segment order, keeping
    /// output and counters byte-identical to the serial kernel.
    pub pool: Option<Arc<seco_exec::ExecPool>>,
}

/// Per-run mutable state of the index-accelerated kernel: the reusable
/// evaluation scratch, the deduplicated key plans, the lazily built
/// per-chunk indexes and probe-key caches, the batch-kernel scratch
/// buffers, and the work counters.
#[derive(Default)]
pub(crate) struct RunState {
    ws: RowScratch,
    plans: Vec<KeyPlan>,
    /// Per Y chunk: `None` = not examined yet; `Some(None)` = no usable
    /// key plan (nested loop); `Some(Some(ix))` = built index.
    indexes_y: Vec<Option<Option<JoinIndex>>>,
    /// Per X chunk: cached probe keys, one entry per plan encountered.
    probes_x: Vec<Vec<ProbeKeys>>,
    pub(crate) stats: JoinStats,
}

/// Per-worker evaluation scratch: everything a row-range morsel needs
/// that is written during evaluation. The serial path uses the one
/// inside [`RunState`]; each parallel morsel allocates its own.
#[derive(Default)]
struct RowScratch {
    scratch: EvalScratch,
    /// Selection mask reused by whole-chunk batch kernels.
    mask: BitMask,
    /// Candidate index list reused by the probe path.
    cand: Vec<usize>,
    /// Copy of `cand` consumed destructively by batch residual kernels.
    cand_scratch: Vec<usize>,
}

/// Everything a tile's row loop reads but never writes, gathered after
/// the serial ensure phase (index build, probe-key extraction, batch
/// preparation) so row-range morsels can share it by reference.
struct TileCtx<'a> {
    compiled: Option<&'a CompiledPredicates>,
    cx: &'a [CompositeTuple],
    cy: &'a [CompositeTuple],
    batch: Option<(&'a BatchPlan, &'a [ColumnRef<'a>])>,
    probe: Option<(&'a JoinIndex, &'a ProbeKeys)>,
}

/// Minimum X rows per morsel: below this, per-task overhead dominates.
pub(crate) const PAR_MIN_SEG: usize = 16;
/// Minimum candidate pairs in a tile before the kernel bothers to fan
/// out; small tiles stay on the exact serial path.
pub(crate) const PAR_MIN_PAIRS: usize = 4096;

impl ParallelJoinExecutor<'_> {
    /// Runs the join to completion or to the `k` target, pacing calls
    /// with the configured invocation strategy.
    pub fn run(
        &self,
        x: &mut dyn ChunkStream,
        y: &mut dyn ChunkStream,
    ) -> Result<JoinOutcome, JoinError> {
        let mut scheduler = CallScheduler::new(self.invocation, self.h.max(1))?;
        self.run_paced(x, y, &mut scheduler)
    }

    /// Runs the join with an external pacer deciding which stream each
    /// request-response goes to (e.g. a clock unit regulating calls by
    /// the inter-service ratio, §4.3.2). The completion strategy and
    /// `k` target behave exactly as in [`ParallelJoinExecutor::run`].
    pub fn run_paced(
        &self,
        x: &mut dyn ChunkStream,
        y: &mut dyn ChunkStream,
        pacer: &mut dyn crate::strategy::Pacing,
    ) -> Result<JoinOutcome, JoinError> {
        let (r1, r2) = match self.invocation {
            Invocation::MergeScan { r1, r2 } => (r1 as usize, r2 as usize),
            Invocation::NestedLoop => (1, 1),
        };
        let target_k = if self.k == 0 { usize::MAX } else { self.k };

        let mut chunks_x: Vec<CompositeChunk> = Vec::new();
        let mut chunks_y: Vec<CompositeChunk> = Vec::new();
        let (mut more_x, mut more_y) = (true, true);
        let (mut calls_x, mut calls_y) = (0usize, 0usize);
        let mut processed: Vec<Tile> = Vec::new();
        let mut tile_reps: Vec<f64> = Vec::new();
        let mut done = std::collections::BTreeSet::new();
        let mut results: Vec<CompositeTuple> = Vec::new();
        let mut c = r1 * r2;

        // Compile the predicate set once per run; `None` (off mode or an
        // unresolvable set) falls back to the interpreted nested loop.
        let compiled = match self.options.mode {
            JoinIndexMode::Off => None,
            JoinIndexMode::Hash => CompiledPredicates::compile(self.predicates, self.schemas),
        };
        let mut st = RunState::default();
        let mut pruner = TilePruner::new(self.k);

        'outer: loop {
            if results.len() >= target_k {
                break;
            }
            // Choose and perform the next call.
            let mut target = pacer.next_target(calls_x, calls_y);
            if target == CallTarget::X && !more_x {
                target = CallTarget::Y;
            }
            if target == CallTarget::Y && !more_y {
                target = CallTarget::X;
            }
            match target {
                CallTarget::X if more_x => {
                    let chunk = x.fetch_chunk(calls_x)?;
                    calls_x += 1;
                    more_x = chunk.has_more;
                    st.stats.rows_materialized += chunk_rows_materialized(&chunk);
                    chunks_x.push(chunk);
                }
                CallTarget::Y if more_y => {
                    let chunk = y.fetch_chunk(calls_y)?;
                    calls_y += 1;
                    more_y = chunk.has_more;
                    st.stats.rows_materialized += chunk_rows_materialized(&chunk);
                    chunks_y.push(chunk);
                }
                _ => {} // both axes exhausted; fall through to the wave
            }

            // Process admissible tiles in waves.
            loop {
                let mut wave: Vec<Tile> = Vec::new();
                for xi in 0..chunks_x.len() {
                    for yi in 0..chunks_y.len() {
                        let t = Tile::new(xi, yi);
                        if done.contains(&t) {
                            continue;
                        }
                        let admitted = match self.completion {
                            Completion::Rectangular => true,
                            Completion::Triangular => xi * r2 + yi * r1 < c,
                        };
                        if admitted {
                            wave.push(t);
                        }
                    }
                }
                if wave.is_empty() {
                    let waiting = (0..chunks_x.len())
                        .any(|xi| (0..chunks_y.len()).any(|yi| !done.contains(&Tile::new(xi, yi))));
                    if self.completion == Completion::Triangular && waiting {
                        c += 1;
                        continue;
                    }
                    break;
                }
                wave.sort_by_key(|t| (t.index_sum(), t.x));
                for t in wave {
                    done.insert(t);
                    processed.push(t);
                    let rep = chunks_x[t.x].representative * chunks_y[t.y].representative;
                    tile_reps.push(rep);
                    if self.options.tile_prune && pruner.can_skip(rep) {
                        st.stats.tiles_pruned += 1;
                        st.stats.pairs_skipped +=
                            (chunks_x[t.x].len() * chunks_y[t.y].len()) as u64;
                        continue;
                    }
                    let before = results.len();
                    self.join_tile(
                        compiled.as_ref(),
                        &chunks_x[t.x],
                        &chunks_y[t.y],
                        t.x,
                        t.y,
                        &mut st,
                        &mut results,
                    )?;
                    if self.options.tile_prune {
                        for r in &results[before..] {
                            pruner.observe(r.score_product());
                        }
                    }
                    if results.len() >= target_k {
                        break 'outer;
                    }
                }
                if self.completion == Completion::Rectangular {
                    break;
                }
            }

            if !more_x && !more_y {
                // Everything fetched; any remaining tiles were processed
                // by the final wave above.
                break;
            }
        }

        let exhausted = !more_x
            && !more_y
            && done.len() == chunks_x.len() * chunks_y.len()
            && results.len() < target_k;
        st.stats.chunks_fetched = (calls_x + calls_y) as u64;
        Ok(JoinOutcome {
            results,
            calls_x,
            calls_y,
            tiles: processed,
            tile_representatives: tile_reps,
            exhausted,
            degraded: false,
            stats: st.stats,
        })
    }

    /// Runs the join with graceful degradation over branches that
    /// (partially) failed upstream.
    ///
    /// `x_failed` / `y_failed` declare that a branch lost tuples to a
    /// service failure. The join itself runs normally over whatever
    /// survived — partial pairs are still correct pairs. But when the
    /// failed branch contributed *nothing* and the join is therefore
    /// empty, the executor passes the surviving branch's composites
    /// through unjoined, in their own rank order, truncated at the `k`
    /// target — a partial answer beats no answer, and the caller sees
    /// `degraded = true` on the outcome (and the missing atoms on each
    /// composite) to tell the two cases apart.
    pub fn run_with_degradation(
        &self,
        x: &mut dyn ChunkStream,
        y: &mut dyn ChunkStream,
        x_failed: bool,
        y_failed: bool,
    ) -> Result<JoinOutcome, JoinError> {
        let mut outcome = self.run(x, y)?;
        outcome.degraded = x_failed || y_failed;
        if outcome.results.is_empty() && (x_failed != y_failed) {
            let survivor: &mut dyn ChunkStream = if x_failed { y } else { x };
            let target_k = if self.k == 0 { usize::MAX } else { self.k };
            let mut passed = Vec::new();
            let mut idx = 0usize;
            loop {
                let chunk = survivor.fetch_chunk(idx)?;
                idx += 1;
                let more = chunk.has_more;
                for composite in chunk.composites {
                    passed.push(composite);
                    if passed.len() >= target_k {
                        break;
                    }
                }
                if passed.len() >= target_k || !more {
                    break;
                }
            }
            outcome.results = passed;
            outcome.exhausted = false;
        }
        Ok(outcome)
    }

    /// Typed columns backing one tile's batch kernels, when the Y
    /// chunk's columns can be read zero-copy (single-atom body matching
    /// the plan) or gathered from the composites otherwise.
    ///
    /// Returns `None` whenever any batching precondition fails; the
    /// caller then evaluates every candidate scalar, exactly as before.
    /// Preconditions: uniform atom signatures on both sides (one plan
    /// covers the tile), disjoint sides (every merge succeeds, so batch
    /// per-candidate counting matches the scalar loop), and a plan
    /// covering every active predicate with total, ungrouped operands.
    fn tile_batch<'y>(
        &self,
        compiled: &CompiledPredicates,
        chunk_x: &CompositeChunk,
        chunk_y: &'y CompositeChunk,
        stats: &mut JoinStats,
    ) -> Option<(BatchPlan, TileCols<'y>)> {
        let cx = &chunk_x.composites;
        let cy = &chunk_y.composites;
        let first_x = cx.first()?;
        let first_y = cy.first()?;
        if !cx.iter().all(|c| c.atoms == first_x.atoms)
            || !cy.iter().all(|c| c.atoms == first_y.atoms)
        {
            return None;
        }
        if first_x.atoms.iter().any(|a| first_y.atoms.contains(a)) {
            return None;
        }
        let plan = compiled.batch_plan(&first_x.atoms, &first_y.atoms)?;
        // Zero-copy when the Y chunk's body columns back the plan.
        if self.columnar.columnar {
            if let Some((atom, body)) = &chunk_y.body {
                if let Some(cc) = body.columns() {
                    if first_y.atoms.len() == 1
                        && first_y.atoms[0] == *atom
                        && plan
                            .columns()
                            .iter()
                            .all(|(a, f)| a == atom && cc.column(*f).is_some())
                    {
                        stats.columns_scanned += plan.columns().len() as u64;
                        return Some((plan, TileCols::Body(cc)));
                    }
                }
            }
        }
        let owned = plan.gather_columns(cy)?;
        stats.columns_scanned += owned.len() as u64;
        Some((plan, TileCols::Owned(owned)))
    }

    /// Joins one tile, emitting results in the exact (i, j) order of
    /// the nested-loop baseline.
    ///
    /// Pairs are *merged*, not concatenated: branches with common
    /// ancestry (the Fig. 2 diamond) share atoms, and a pair whose
    /// shared components differ is not a candidate at all.
    ///
    /// Three enumeration strategies, in decreasing preference:
    /// 1. hash probe — the Y chunk is bucketed by equi-join key (built
    ///    lazily once per chunk, straight from typed columns when the
    ///    body is columnar) and each X composite visits only its bucket
    ///    plus the unkeyed entries, in ascending index order;
    /// 2. compiled nested loop — no usable equi key, but the predicate
    ///    set compiled (zero per-candidate path resolution);
    /// 3. interpreted nested loop — off mode or an uncompilable set.
    ///
    /// On top of 1 and 2, when [`ColumnarOptions::batch_eval`] is on and
    /// a [`BatchPlan`] applies, candidates are evaluated by vectorized
    /// kernels over the Y chunk's columns — a selection mask for whole
    /// chunks, residual refinement for index-selected lists — with the
    /// scalar loop kept as the fallback that also reproduces evaluation
    /// errors.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn join_tile(
        &self,
        compiled: Option<&CompiledPredicates>,
        chunk_x: &CompositeChunk,
        chunk_y: &CompositeChunk,
        xi: usize,
        yi: usize,
        st: &mut RunState,
        out: &mut Vec<CompositeTuple>,
    ) -> Result<(), JoinError> {
        let cx = &chunk_x.composites;
        let cy = &chunk_y.composites;
        let Some(compiled) = compiled else {
            let ctx = TileCtx {
                compiled: None,
                cx,
                cy,
                batch: None,
                probe: None,
            };
            let RunState { ws, stats, .. } = st;
            return self.run_tile_rows(&ctx, ws, stats, out);
        };

        // Build (or reuse) the Y chunk's index.
        if st.indexes_y.len() <= yi {
            st.indexes_y.resize_with(yi + 1, || None);
        }
        if st.probes_x.len() <= xi {
            st.probes_x.resize_with(xi + 1, Vec::new);
        }
        if st.indexes_y[yi].is_none() {
            let columnar = self.columnar.columnar;
            let built = cy
                .first()
                .and_then(|sample| KeyPlan::build(compiled.equi_candidates(), sample))
                .map(|plan| {
                    let plan_id = match st.plans.iter().position(|p| *p == plan) {
                        Some(i) => i,
                        None => {
                            st.plans.push(plan);
                            st.plans.len() - 1
                        }
                    };
                    st.stats.index_builds += 1;
                    let plan = &st.plans[plan_id];
                    if columnar {
                        // Key straight off the body's typed columns when
                        // they back the plan; byte-identical buckets.
                        if let Some((atom, body)) = &chunk_y.body {
                            if let Some(cols) = body.columns() {
                                if let Some((ix, scanned)) =
                                    JoinIndex::build_from_columns(plan, plan_id, *atom, cols)
                                {
                                    st.stats.columns_scanned += scanned as u64;
                                    return ix;
                                }
                            }
                        }
                    }
                    JoinIndex::build(plan, plan_id, cy)
                });
            st.indexes_y[yi] = Some(built);
        }

        // Prepare the tile's batch kernel, when every precondition holds.
        let prepared = if self.columnar.batch_eval {
            self.tile_batch(compiled, chunk_x, chunk_y, &mut st.stats)
        } else {
            None
        };
        let batch: Option<(&BatchPlan, Vec<ColumnRef<'_>>)> =
            prepared.as_ref().map(|(plan, tc)| {
                let refs = match tc {
                    TileCols::Body(cc) => plan
                        .columns()
                        .iter()
                        .map(|(_, f)| cc.column(*f).expect("validated in tile_batch"))
                        .collect(),
                    TileCols::Owned(cols) => cols.iter().map(Column::as_ref).collect(),
                };
                (plan, refs)
            });

        // Extract (or reuse) the X chunk's probe keys when the Y chunk
        // has an index, and apply index-emptiness pruning: when every
        // composite on both sides is keyed and no probe key has a
        // bucket, every pair mismatches on an equi conjunct — the tile
        // cannot contribute a result.
        let has_index = st.indexes_y[yi].as_ref().is_some_and(Option::is_some);
        if has_index {
            let plan_id = st.indexes_y[yi].as_ref().unwrap().as_ref().unwrap().plan_id;
            if !st.probes_x[xi].iter().any(|p| p.plan_id == plan_id) {
                let pk = ProbeKeys::build(&st.plans[plan_id], plan_id, cx);
                st.probes_x[xi].push(pk);
            }
            let index = st.indexes_y[yi].as_ref().unwrap().as_ref().unwrap();
            let probe = st.probes_x[xi]
                .iter()
                .find(|p| p.plan_id == plan_id)
                .expect("probe keys cached above");
            if probe.all_keyed
                && index.unkeyed.is_empty()
                && probe
                    .distinct
                    .iter()
                    .all(|k| !index.buckets.contains_key(k))
            {
                st.stats.tiles_pruned += 1;
                st.stats.pairs_skipped += (cx.len() * cy.len()) as u64;
                return Ok(());
            }
        }

        // The ensure phase is done; split the run state so the morsel
        // loop can share the caches immutably while writing scratch,
        // stats, and results.
        let RunState {
            ws,
            indexes_y,
            probes_x,
            stats,
            ..
        } = st;
        let probe = if has_index {
            let index = indexes_y[yi].as_ref().unwrap().as_ref().unwrap();
            let probe = probes_x[xi]
                .iter()
                .find(|p| p.plan_id == index.plan_id)
                .expect("probe keys cached above");
            Some((index, probe))
        } else {
            // Compiled nested loop: no equi key applies to this chunk.
            None
        };
        let ctx = TileCtx {
            compiled: Some(compiled),
            cx,
            cy,
            batch: batch.as_ref().map(|(plan, refs)| (*plan, refs.as_slice())),
            probe,
        };
        self.run_tile_rows(&ctx, ws, stats, out)
    }

    /// Runs one tile's row loop, either serially (no pool, one worker,
    /// or a tile too small to pay fan-out overhead) or as row-range
    /// morsels on the pool with a deterministic segment-order reduce.
    /// Both paths execute [`ParallelJoinExecutor::join_rows`] over the
    /// same ranges, so results and counters are byte-identical.
    fn run_tile_rows(
        &self,
        ctx: &TileCtx<'_>,
        ws: &mut RowScratch,
        stats: &mut JoinStats,
        out: &mut Vec<CompositeTuple>,
    ) -> Result<(), JoinError> {
        let rows = ctx.cx.len();
        if let Some(pool) = self.pool.as_deref().filter(|p| p.parallelism() > 1) {
            if rows >= 2 * PAR_MIN_SEG && rows.saturating_mul(ctx.cy.len()) >= PAR_MIN_PAIRS {
                let seg = (rows / (4 * pool.parallelism())).max(PAR_MIN_SEG);
                let mut tasks = Vec::new();
                let mut s = 0;
                while s < rows {
                    let e = (s + seg).min(rows);
                    tasks.push(move || {
                        let mut ws = RowScratch::default();
                        let mut seg_stats = JoinStats::default();
                        let mut seg_out = Vec::new();
                        let res = self.join_rows(ctx, s..e, &mut ws, &mut seg_stats, &mut seg_out);
                        (res, seg_stats, seg_out)
                    });
                    s = e;
                }
                // Reduce in segment order: concatenation reproduces the
                // serial emission order, and the counters are sums of
                // per-row contributions, so the merged totals match the
                // serial pass exactly. The first error (in row order)
                // propagates, as it would serially.
                for (res, seg_stats, seg_out) in pool.scope_run(tasks) {
                    stats.merge(&seg_stats);
                    out.extend(seg_out);
                    res?;
                }
                return Ok(());
            }
        }
        self.join_rows(ctx, 0..rows, ws, stats, out)
    }

    /// Evaluates one contiguous range of X rows against the Y chunk —
    /// the morsel body. Straight-line extraction of the serial kernel:
    /// probe path when the tile has an index, batch-masked scan when a
    /// kernel applies, scalar fallback that also reproduces evaluation
    /// errors.
    fn join_rows(
        &self,
        ctx: &TileCtx<'_>,
        range: std::ops::Range<usize>,
        ws: &mut RowScratch,
        stats: &mut JoinStats,
        out: &mut Vec<CompositeTuple>,
    ) -> Result<(), JoinError> {
        let cy = ctx.cy;
        let Some(compiled) = ctx.compiled else {
            for a in &ctx.cx[range] {
                for b in cy {
                    let Some(candidate) = a.merge(b) else {
                        continue;
                    };
                    stats.predicate_evals += 1;
                    if satisfies_available(self.predicates, &candidate, self.schemas)? {
                        out.push(candidate);
                    }
                }
            }
            return Ok(());
        };
        let Some((index, probe)) = ctx.probe else {
            for a in &ctx.cx[range] {
                if let Some((plan, cols)) = ctx.batch {
                    if batch_scan_chunk(plan, cols, a, cy, &mut ws.mask, stats, out) {
                        continue;
                    }
                }
                for b in cy {
                    let Some(candidate) = a.merge(b) else {
                        continue;
                    };
                    stats.predicate_evals += 1;
                    if compiled.eval(&candidate, &mut ws.scratch)? {
                        out.push(candidate);
                    }
                }
            }
            return Ok(());
        };

        let ny = cy.len();
        for i in range {
            let a = &ctx.cx[i];
            let Some(key) = probe.keys[i] else {
                // This composite cannot supply every key: scan the chunk.
                if let Some((plan, cols)) = ctx.batch {
                    if batch_scan_chunk(plan, cols, a, cy, &mut ws.mask, stats, out) {
                        continue;
                    }
                }
                for b in cy {
                    let Some(candidate) = a.merge(b) else {
                        continue;
                    };
                    stats.predicate_evals += 1;
                    if compiled.eval(&candidate, &mut ws.scratch)? {
                        out.push(candidate);
                    }
                }
                continue;
            };
            stats.probes += 1;
            let bucket: &[u32] = index.buckets.get(&key).map_or(&[], |v| v.as_slice());
            let unkeyed: &[u32] = &index.unkeyed;
            stats.pairs_skipped += (ny - bucket.len() - unkeyed.len()) as u64;
            // Ascending-index merge of the bucket with the unkeyed list
            // reproduces the nested loop's j order exactly.
            ws.cand.clear();
            let (mut bi, mut ui) = (0usize, 0usize);
            while bi < bucket.len() || ui < unkeyed.len() {
                let j = if bi < bucket.len() && (ui >= unkeyed.len() || bucket[bi] < unkeyed[ui]) {
                    bi += 1;
                    bucket[bi - 1]
                } else {
                    ui += 1;
                    unkeyed[ui - 1]
                } as usize;
                ws.cand.push(j);
            }
            if let Some((plan, cols)) = ctx.batch {
                if batch_probe_list(
                    plan,
                    cols,
                    a,
                    cy,
                    &ws.cand,
                    &mut ws.cand_scratch,
                    stats,
                    out,
                ) {
                    continue;
                }
            }
            for &j in &ws.cand {
                let Some(candidate) = a.merge(&cy[j]) else {
                    continue;
                };
                stats.predicate_evals += 1;
                if compiled.eval(&candidate, &mut ws.scratch)? {
                    out.push(candidate);
                }
            }
        }
        Ok(())
    }
}

/// Typed columns backing one tile's batch kernels.
enum TileCols<'y> {
    /// Zero-copy: the Y chunk's columnar body backs the plan directly.
    Body(&'y ChunkColumns),
    /// Gathered once per tile from the composites (multi-atom Y sides
    /// and row-structured bodies).
    Owned(Vec<Column>),
}

/// Rows the columnar plane had to materialize for this chunk (zero for
/// row-structured bodies, which never had columns to keep).
pub(crate) fn chunk_rows_materialized(chunk: &CompositeChunk) -> u64 {
    match &chunk.body {
        Some((_, b)) if b.is_columnar() && b.rows_ready() => b.len() as u64,
        _ => 0,
    }
}

/// Evaluates composite `a` against the whole Y chunk with one masked
/// batch kernel. Returns `false` (leaving no results emitted) when the
/// kernel hit a case only the scalar path can decide — the caller then
/// re-runs the candidates scalar, reproducing results *and* errors.
fn batch_scan_chunk(
    plan: &BatchPlan,
    cols: &[ColumnRef<'_>],
    a: &CompositeTuple,
    cy: &[CompositeTuple],
    mask: &mut BitMask,
    stats: &mut JoinStats,
    out: &mut Vec<CompositeTuple>,
) -> bool {
    mask.reset_ones(cy.len());
    if !plan.eval_mask(Some(a), cols, mask) {
        return false;
    }
    // Disjoint sides guarantee every merge succeeds, so the batch
    // covered exactly one evaluation per candidate — same as scalar.
    stats.predicate_evals += cy.len() as u64;
    stats.batch_evals += 1;
    for j in mask.iter_ones() {
        if let Some(candidate) = a.merge(&cy[j]) {
            out.push(candidate);
        }
    }
    true
}

/// Evaluates composite `a` against an index-selected candidate list
/// with one residual batch kernel. Same fallback contract as
/// [`batch_scan_chunk`].
#[allow(clippy::too_many_arguments)]
fn batch_probe_list(
    plan: &BatchPlan,
    cols: &[ColumnRef<'_>],
    a: &CompositeTuple,
    cy: &[CompositeTuple],
    cand: &[usize],
    scratch: &mut Vec<usize>,
    stats: &mut JoinStats,
    out: &mut Vec<CompositeTuple>,
) -> bool {
    scratch.clear();
    scratch.extend_from_slice(cand);
    if !plan.eval_indices(Some(a), cols, scratch) {
        return false;
    }
    stats.predicate_evals += cand.len() as u64;
    stats.batch_evals += 1;
    for &j in scratch.iter() {
        if let Some(candidate) = a.merge(&cy[j]) {
            out.push(candidate);
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use seco_model::{
        Adornment, AttributeDef, AttributePath, Comparator, DataType, ScoreDecay, ServiceSchema,
        Tuple, Value,
    };
    use seco_query::{JoinPredicate, QualifiedPath};

    fn schema(name: &str) -> ServiceSchema {
        ServiceSchema::new(
            name,
            vec![
                AttributeDef::atomic("City", DataType::Text, Adornment::Output),
                AttributeDef::atomic("Score", DataType::Float, Adornment::Ranked),
            ],
        )
        .unwrap()
    }

    /// Builds a ranked composite list over a small city domain.
    fn stream_data(
        atom: &str,
        schema: &ServiceSchema,
        n: usize,
        decay: ScoreDecay,
    ) -> Vec<CompositeTuple> {
        let f = seco_model::ScoringFunction::new(decay, n, 2).unwrap();
        (0..n)
            .map(|i| {
                let t = Tuple::builder(schema)
                    .set("City", Value::Text(format!("city-{}", i % 3)))
                    .set("Score", Value::float(f.score_at(i)))
                    .score(f.score_at(i))
                    .source_rank(i)
                    .build()
                    .unwrap();
                CompositeTuple::single(atom, t)
            })
            .collect()
    }

    fn setup<'a>(
        sa: &'a ServiceSchema,
        sb: &'a ServiceSchema,
    ) -> (Vec<ResolvedPredicate>, SchemaMap<'a>) {
        let preds = vec![ResolvedPredicate::Join(JoinPredicate {
            left: QualifiedPath::new("A", AttributePath::atomic("City")),
            op: Comparator::Eq,
            right: QualifiedPath::new("B", AttributePath::atomic("City")),
        })];
        let mut schemas = SchemaMap::new();
        schemas.insert("A".into(), sa);
        schemas.insert("B".into(), sb);
        (preds, schemas)
    }

    #[test]
    fn join_finds_all_matches_when_exhaustive() {
        let sa = schema("A1");
        let sb = schema("B1");
        let (preds, schemas) = setup(&sa, &sb);
        let a = stream_data("A", &sa, 6, ScoreDecay::Linear);
        let b = stream_data("B", &sb, 6, ScoreDecay::Linear);
        let expected = a
            .iter()
            .flat_map(|x| b.iter().map(move |y| (x, y)))
            .filter(|(x, y)| x.components[0].atomic_at(0) == y.components[0].atomic_at(0))
            .count();
        let exec = ParallelJoinExecutor {
            predicates: &preds,
            schemas: &schemas,
            invocation: Invocation::merge_scan_even(),
            completion: Completion::Rectangular,
            h: 1,
            k: 0,
            options: JoinIndexOptions::default(),
            columnar: ColumnarOptions::default(),
            pool: None,
        };
        let mut ms_a = MemoryStream::new(a, 2);
        let mut ms_b = MemoryStream::new(b, 2);
        let out = exec.run(&mut ms_a, &mut ms_b).unwrap();
        assert_eq!(out.results.len(), expected);
        assert!(out.exhausted);
        assert_eq!((out.calls_x, out.calls_y), (3, 3));
        assert_eq!(out.tiles.len(), 9);
        // Every result satisfies the predicate and has both atoms.
        for r in &out.results {
            assert_eq!(r.arity(), 2);
        }
    }

    #[test]
    fn join_stops_at_k() {
        let sa = schema("A1");
        let sb = schema("B1");
        let (preds, schemas) = setup(&sa, &sb);
        let a = stream_data("A", &sa, 20, ScoreDecay::Linear);
        let b = stream_data("B", &sb, 20, ScoreDecay::Linear);
        let exec = ParallelJoinExecutor {
            predicates: &preds,
            schemas: &schemas,
            invocation: Invocation::merge_scan_even(),
            completion: Completion::Triangular,
            h: 1,
            k: 3,
            options: JoinIndexOptions::default(),
            columnar: ColumnarOptions::default(),
            pool: None,
        };
        let mut ms_a = MemoryStream::new(a, 2);
        let mut ms_b = MemoryStream::new(b, 2);
        let out = exec.run(&mut ms_a, &mut ms_b).unwrap();
        assert_eq!(out.results.len(), 3);
        assert!(!out.exhausted);
        // Early termination saves calls: far fewer than the full 10+10.
        assert!(
            out.calls_x + out.calls_y < 20,
            "stopped early with {} + {} calls",
            out.calls_x,
            out.calls_y
        );
    }

    #[test]
    fn nested_loop_prefers_the_first_stream() {
        let sa = schema("A1");
        let sb = schema("B1");
        let (preds, schemas) = setup(&sa, &sb);
        let a = stream_data(
            "A",
            &sa,
            8,
            ScoreDecay::Step {
                h: 2,
                high: 0.95,
                low: 0.05,
            },
        );
        let b = stream_data("B", &sb, 8, ScoreDecay::Linear);
        let exec = ParallelJoinExecutor {
            predicates: &preds,
            schemas: &schemas,
            invocation: Invocation::NestedLoop,
            completion: Completion::Rectangular,
            h: 2,
            k: 0,
            options: JoinIndexOptions::default(),
            columnar: ColumnarOptions::default(),
            pool: None,
        };
        let mut ms_a = MemoryStream::new(a, 2);
        let mut ms_b = MemoryStream::new(b, 2);
        let out = exec.run(&mut ms_a, &mut ms_b).unwrap();
        // NL drains h=2 chunks of A right after the opening pair.
        assert_eq!(out.tiles[0], Tile::new(0, 0));
        assert!(out.exhausted);
        assert_eq!((out.calls_x, out.calls_y), (4, 4));
    }

    #[test]
    fn empty_stream_joins_to_nothing() {
        let sa = schema("A1");
        let sb = schema("B1");
        let (preds, schemas) = setup(&sa, &sb);
        let exec = ParallelJoinExecutor {
            predicates: &preds,
            schemas: &schemas,
            invocation: Invocation::merge_scan_even(),
            completion: Completion::Rectangular,
            h: 1,
            k: 0,
            options: JoinIndexOptions::default(),
            columnar: ColumnarOptions::default(),
            pool: None,
        };
        let mut ms_a = MemoryStream::new(Vec::new(), 2);
        let mut ms_b = MemoryStream::new(stream_data("B", &sb, 4, ScoreDecay::Linear), 2);
        let out = exec.run(&mut ms_a, &mut ms_b).unwrap();
        assert!(out.results.is_empty());
        assert!(out.exhausted);
    }

    #[test]
    fn degraded_join_passes_the_surviving_branch_through_in_rank_order() {
        let sa = schema("A1");
        let sb = schema("B1");
        let (preds, schemas) = setup(&sa, &sb);
        let survivors = stream_data("A", &sa, 8, ScoreDecay::Linear);
        let exec = ParallelJoinExecutor {
            predicates: &preds,
            schemas: &schemas,
            invocation: Invocation::merge_scan_even(),
            completion: Completion::Rectangular,
            h: 1,
            k: 3,
            options: JoinIndexOptions::default(),
            columnar: ColumnarOptions::default(),
            pool: None,
        };
        // B's branch lost everything to an outage upstream.
        let mut ms_a = MemoryStream::new(survivors.clone(), 2);
        let mut ms_b = MemoryStream::new(Vec::new(), 2);
        let out = exec
            .run_with_degradation(&mut ms_a, &mut ms_b, false, true)
            .unwrap();
        assert!(out.degraded);
        assert_eq!(out.results.len(), 3, "k-answer termination still applies");
        // Pass-through preserves the survivor's rank order.
        for (i, r) in out.results.iter().enumerate() {
            assert_eq!(r, &survivors[i]);
            assert_eq!(
                r.arity(),
                1,
                "the failed atom is missing from the composite"
            );
        }
        // A branch that degraded but still joined keeps real pairs.
        let mut ms_a = MemoryStream::new(survivors.clone(), 2);
        let mut ms_b = MemoryStream::new(stream_data("B", &sb, 4, ScoreDecay::Linear), 2);
        let joined = exec
            .run_with_degradation(&mut ms_a, &mut ms_b, false, true)
            .unwrap();
        assert!(joined.degraded);
        assert!(joined.results.iter().all(|r| r.arity() == 2));
        // Both branches down: nothing to pass through.
        let mut ms_a = MemoryStream::new(Vec::new(), 2);
        let mut ms_b = MemoryStream::new(Vec::new(), 2);
        let none = exec
            .run_with_degradation(&mut ms_a, &mut ms_b, true, true)
            .unwrap();
        assert!(none.degraded && none.results.is_empty());
        // No failures: identical to a plain run.
        let mut ms_a = MemoryStream::new(survivors, 2);
        let mut ms_b = MemoryStream::new(stream_data("B", &sb, 4, ScoreDecay::Linear), 2);
        let clean = exec
            .run_with_degradation(&mut ms_a, &mut ms_b, false, false)
            .unwrap();
        assert!(!clean.degraded);
    }

    #[test]
    fn service_stream_adapts_requests() {
        use seco_model::{ServiceInterface, ServiceKind, ServiceStats};
        use seco_services::synthetic::{DomainMap, SyntheticService};
        let iface = ServiceInterface::new(
            "S1",
            "S",
            ServiceSchema::new(
                "S1",
                vec![
                    AttributeDef::atomic("K", DataType::Text, Adornment::Input),
                    AttributeDef::atomic("V", DataType::Text, Adornment::Output),
                    AttributeDef::atomic("Score", DataType::Float, Adornment::Ranked),
                ],
            )
            .unwrap(),
            ServiceKind::Search,
            ServiceStats::new(5.0, 2, 1.0, 1.0).unwrap(),
            ScoreDecay::Linear,
        )
        .unwrap();
        let svc = SyntheticService::new(iface, DomainMap::new(), 3);
        let req = Request::unbound().bind(AttributePath::atomic("K"), Value::text("x"));
        let mut stream = ServiceStream::new("A", &svc, req);
        let chunk = stream.fetch_chunk(0).unwrap();
        assert_eq!(chunk.len(), 2);
        assert!(chunk.has_more);
        assert_eq!(chunk.composites[0].atom_names(), vec!["A"]);
        // The representative rides on the chunk header and matches the
        // head composite's score product.
        assert!((chunk.representative - chunk.composites[0].score_product()).abs() < 1e-12);
        let last = stream.fetch_chunk(2).unwrap();
        assert_eq!(last.len(), 1);
        assert!(!last.has_more);
    }

    #[test]
    fn tile_representatives_ride_on_chunk_headers() {
        let sa = schema("A1");
        let sb = schema("B1");
        let (preds, schemas) = setup(&sa, &sb);
        let a = stream_data("A", &sa, 6, ScoreDecay::Linear);
        let b = stream_data("B", &sb, 6, ScoreDecay::Linear);
        let exec = ParallelJoinExecutor {
            predicates: &preds,
            schemas: &schemas,
            invocation: Invocation::merge_scan_even(),
            completion: Completion::Rectangular,
            h: 1,
            k: 0,
            options: JoinIndexOptions::default(),
            columnar: ColumnarOptions::default(),
            pool: None,
        };
        let mut ms_a = MemoryStream::new(a.clone(), 2);
        let mut ms_b = MemoryStream::new(b.clone(), 2);
        let out = exec.run(&mut ms_a, &mut ms_b).unwrap();
        assert_eq!(out.tile_representatives.len(), out.tiles.len());
        for (t, rep) in out.tiles.iter().zip(&out.tile_representatives) {
            // Each observed representative is the product of the two
            // head composites' scores for that tile.
            let expected = a[t.x * 2].score_product() * b[t.y * 2].score_product();
            assert!((rep - expected).abs() < 1e-12);
        }
        // Representatives never increase along either axis (ranked
        // streams decay), so tile (0,0) dominates.
        let first = out.tile_representatives[out
            .tiles
            .iter()
            .position(|t| *t == Tile::new(0, 0))
            .unwrap()];
        for rep in &out.tile_representatives {
            assert!(*rep <= first + 1e-12);
        }
    }

    /// The morsel path must be invisible: same results, same tile
    /// bookkeeping, same counters, at any worker count — including a
    /// k-cut run and the interpreted (index-off) kernel.
    #[test]
    fn pooled_morsels_are_byte_identical_to_serial() {
        let sa = schema("A");
        let sb = schema("B");
        let (preds, schemas) = setup(&sa, &sb);
        let a = stream_data("A", &sa, 200, ScoreDecay::Linear);
        let b = stream_data("B", &sb, 200, ScoreDecay::Quadratic);
        let run = |pool: Option<Arc<seco_exec::ExecPool>>,
                   k: usize,
                   mode: crate::index::JoinIndexMode| {
            let exec = ParallelJoinExecutor {
                predicates: &preds,
                schemas: &schemas,
                invocation: Invocation::merge_scan_even(),
                completion: Completion::Triangular,
                h: 1,
                k,
                options: JoinIndexOptions {
                    mode,
                    ..JoinIndexOptions::default()
                },
                columnar: ColumnarOptions::default(),
                pool,
            };
            let mut sx = MemoryStream::new(a.clone(), 100);
            let mut sy = MemoryStream::new(b.clone(), 100);
            exec.run(&mut sx, &mut sy).unwrap()
        };
        for (k, mode) in [
            (0, crate::index::JoinIndexMode::Hash),
            (37, crate::index::JoinIndexMode::Hash),
            (0, crate::index::JoinIndexMode::Off),
        ] {
            let serial = run(None, k, mode);
            for workers in [2, 8] {
                let pool = Arc::new(seco_exec::ExecPool::new(workers));
                let parallel = run(Some(Arc::clone(&pool)), k, mode);
                assert_eq!(serial, parallel, "k={k} mode={mode:?} workers={workers}");
                assert!(
                    pool.stats().morsels > 0,
                    "parallel path must actually engage (k={k} mode={mode:?})"
                );
                pool.shutdown();
            }
        }
    }
}
