//! The n-ary join kernel: 3+ services in one pass, no intermediate
//! composites.
//!
//! A binary cascade `(g0 ⋈ g1) ⋈ g2 ⋈ …` materializes a
//! [`CompositeTuple`] for every row surviving every internal stage,
//! only to tear most of them apart again one stage later. This kernel
//! replays the *exact same* staged exploration — every stage replicates
//! the paced tile loop of
//! [`crate::executor::ParallelJoinExecutor::run_paced`] over virtual
//! chunk axes, so chunking, invocation pacing, completion admission,
//! wave order, and per-stage `k` targets all match the cascade
//! tile-for-tile — but represents every intermediate row as a flat
//! vector of per-group row indices. Only the final survivors are
//! materialized (by the same left-to-right merge chain the cascade
//! performs), which is counted in `JoinStats::intermediates_elided`.
//!
//! Candidate enumeration is a leapfrog-style sorted intersection: each
//! right chunk's join keys (the [`crate::index`] encoding, interned to
//! [`Symbol`]s whose `Ord` is content-based) are sorted once, and each
//! prefix row seeks its key range via binary search, merging the hits
//! with the chunk's unkeyed rows in ascending row order — the exact
//! nested-loop (i, j) emission order of the binary kernel. The
//! encoding is equality-faithful per value, so a joint key can only
//! collide when a `Text` value embeds [`KEY_SEP`]; hits whose keys are
//! provably injective (single conjunct, or no embedded separator on
//! either side) are emitted directly, and only the remaining hits are
//! re-verified with the full predicate list in predicate order —
//! results *and* evaluation errors stay byte-identical to the cascade.
//!
//! [`NaryJoin::run`] returns `Ok(None)` — "use the binary cascade" —
//! whenever any precondition for that identity fails:
//!
//! * a group with non-uniform atom signatures, or groups sharing an
//!   atom (diamond plans with common ancestry);
//! * a stage whose predicates don't compile, or compile with residual
//!   (non-equi) conjuncts;
//! * an equi conjunct that is active at its stage but does not span the
//!   prefix and the stage's new group.

use std::collections::BTreeSet;

use seco_model::{Comparator, CompositeTuple, Symbol, Value};
use seco_plan::{Completion, Invocation};
use seco_query::predicate::{ResolvedPredicate, SchemaMap};
use seco_query::{CompiledPredicates, QueryError};

use crate::error::JoinError;
use crate::index::{encode_value, JoinStats, KEY_SEP};
use crate::strategy::{CallScheduler, CallTarget, TilePruner};
use crate::tile::Tile;

/// One internal stage of the cascade being replayed: the parameters the
/// equivalent binary [`crate::executor::ParallelJoinExecutor`] would
/// run with when joining the prefix of earlier groups against the
/// stage's new group.
pub struct NaryStage<'p> {
    /// The stage's join predicates (resolved), in query order.
    pub predicates: &'p [ResolvedPredicate],
    /// Invocation strategy of the equivalent binary stage.
    pub invocation: Invocation,
    /// Completion strategy of the equivalent binary stage.
    pub completion: Completion,
    /// Nested-loop step parameter `h` of the stage's left stream.
    pub h: usize,
    /// Per-stage result target (0 = explore everything) — the cascade
    /// passes the engine's `join_k` to every internal stage, and so
    /// must the replay.
    pub k: usize,
    /// Chunk size of the stage's left (prefix) stream.
    pub left_chunk: usize,
    /// Chunk size of the stage's right (new group) stream.
    pub right_chunk: usize,
}

/// Outcome of an n-ary run: final combinations in the cascade's exact
/// emission order, plus kernel counters.
#[derive(Debug, Clone, PartialEq)]
pub struct NaryOutcome {
    /// Joined composites, byte-identical to the binary cascade's.
    pub results: Vec<CompositeTuple>,
    /// Kernel work counters (`intermediates_elided` counts the rows a
    /// cascade would have materialized at internal stages).
    pub stats: JoinStats,
}

/// The n-ary join kernel.
pub struct NaryJoin<'p> {
    /// Schemas of every atom appearing in the groups.
    pub schemas: &'p SchemaMap<'p>,
    /// Replays the score-frontier tile bound of
    /// [`crate::index::JoinIndexOptions::tile_prune`] at every stage.
    pub tile_prune: bool,
    /// Shared executor pool for intra-tile morsels: after a tile's
    /// sorted key array and probe keys are built (serially), its prefix
    /// rows are split into key-range segments intersected on the pool
    /// and reduced in segment order — byte-identical to the serial
    /// leapfrog pass. `None` or one worker takes the exact serial path.
    pub pool: Option<std::sync::Arc<seco_exec::ExecPool>>,
}

/// One oriented equi conjunct of a stage: the prefix (x) side names a
/// group already joined, the y side the stage's new group.
struct KeyedEq {
    x_group: usize,
    /// Component index of `x_atom` inside its group's (uniform)
    /// signature — resolved once so the hot loops skip name lookups.
    x_comp: usize,
    x_field: usize,
    /// Component index of the y atom inside the new group's signature.
    y_comp: usize,
    y_field: usize,
}

/// A stage's compiled key layout: the active equi conjuncts, oriented.
/// Inactive conjuncts (an atom outside every group joined so far) are
/// vacuously true at this stage — exactly the compiled evaluator's
/// active-predicate filter — and are dropped.
struct StagePlan {
    keyed: Vec<KeyedEq>,
}

/// Sorted key array of one right chunk: `(key, row, trusted)` triples
/// ordered by content (leapfrog seeks binary-search this), plus the
/// rows with no encodable key, which every probe must scan. `trusted`
/// marks keys that are provably injective (no `Text` value embedding
/// [`KEY_SEP`]), whose hits need no re-verification.
struct RightIndex {
    keys: Vec<(Symbol, u32, bool)>,
    unkeyed: Vec<u32>,
}

/// Cached probe keys of one prefix chunk: one `(key, trusted)` entry
/// per row, `None` for rows whose key can't encode (they scan).
type ProbeKeys = Vec<Option<(Symbol, bool)>>;

impl NaryJoin<'_> {
    /// Joins `groups[0] ⋈ groups[1] ⋈ …` under `stages` (one per
    /// internal join). Returns `Ok(None)` when the inputs fall outside
    /// the kernel's byte-identity preconditions — the caller then runs
    /// the binary cascade.
    pub fn run(
        &self,
        groups: &[Vec<CompositeTuple>],
        stages: &[NaryStage<'_>],
    ) -> Result<Option<NaryOutcome>, JoinError> {
        if groups.len() < 2 || stages.len() != groups.len() - 1 {
            return Ok(None);
        }
        let mut stats = JoinStats::default();
        // An inner join over an empty group is provably empty; skip the
        // exploration entirely.
        if groups.iter().any(|g| g.is_empty()) {
            return Ok(Some(NaryOutcome {
                results: Vec::new(),
                stats,
            }));
        }
        let Some(plans) = self.plan(groups, stages) else {
            return Ok(None);
        };

        // The running prefix: one flat row of `stride` per-group row
        // indices per surviving combination.
        let mut prefix: Vec<u32> = (0..groups[0].len() as u32).collect();
        let mut stride = 1usize;
        for (s, stage) in stages.iter().enumerate() {
            prefix = self.run_stage(groups, &prefix, stride, stage, &plans[s], &mut stats)?;
            stride += 1;
            if s + 1 < stages.len() {
                stats.intermediates_elided += (prefix.len() / stride) as u64;
            }
            if prefix.is_empty() {
                // Later stages of the cascade would re-explore empty
                // left streams to the same empty end.
                return Ok(Some(NaryOutcome {
                    results: Vec::new(),
                    stats,
                }));
            }
        }

        // Materialize the survivors. The cascade's left-to-right merge
        // chain over pairwise-disjoint groups (a plan() precondition)
        // is pure concatenation in group order — no shared-atom checks
        // can fire — so each composite is assembled directly.
        let n_atoms: usize = groups.iter().map(|g| g[0].atoms.len()).sum();
        let mut results = Vec::with_capacity(prefix.len() / stride);
        for row in prefix.chunks(stride) {
            let mut atoms = Vec::with_capacity(n_atoms);
            let mut components = Vec::with_capacity(n_atoms);
            for (g, &r) in row.iter().enumerate() {
                let c = &groups[g][r as usize];
                atoms.extend_from_slice(&c.atoms);
                components.extend_from_slice(&c.components);
            }
            results.push(CompositeTuple { atoms, components });
        }
        Ok(Some(NaryOutcome { results, stats }))
    }

    /// Checks every byte-identity precondition and compiles the
    /// per-stage key layouts. `None` = run the binary cascade instead.
    fn plan(
        &self,
        groups: &[Vec<CompositeTuple>],
        stages: &[NaryStage<'_>],
    ) -> Option<Vec<StagePlan>> {
        // Uniform signatures per group, pairwise-disjoint across groups.
        let mut atom_group: Vec<(Symbol, usize)> = Vec::new();
        for (gi, g) in groups.iter().enumerate() {
            let sig = &g[0].atoms;
            if !g.iter().all(|c| &c.atoms == sig) {
                return None;
            }
            for a in sig {
                if atom_group.iter().any(|(s, _)| s == a) {
                    return None; // shared ancestry: merges can fail
                }
                atom_group.push((*a, gi));
            }
        }
        let group_of = |a: Symbol| atom_group.iter().find(|(s, _)| *s == a).map(|(_, g)| *g);

        let mut plans = Vec::with_capacity(stages.len());
        for (s, stage) in stages.iter().enumerate() {
            let new_group = s + 1;
            let compiled = CompiledPredicates::compile(stage.predicates, self.schemas)?;
            if compiled.equi_candidates().len() != compiled.len() {
                return None; // residual conjuncts: keep the cascade
            }
            // Signatures are uniform per group (checked above), so an
            // atom's component position is a per-stage constant.
            let comp_of = |g: usize, a: Symbol| groups[g][0].atoms.iter().position(|s| *s == a);
            let mut keyed = Vec::new();
            for c in compiled.equi_candidates() {
                let gl = group_of(c.left_atom).filter(|g| *g <= new_group);
                let gr = group_of(c.right_atom).filter(|g| *g <= new_group);
                match (gl, gr) {
                    // An absent atom makes the conjunct inactive at this
                    // stage — vacuously true, forever, in the cascade too.
                    (None, _) | (_, None) => continue,
                    (Some(gl), Some(gr)) if gl == new_group && gr < new_group => {
                        keyed.push(KeyedEq {
                            x_group: gr,
                            x_comp: comp_of(gr, c.right_atom)?,
                            x_field: c.right_field,
                            y_comp: comp_of(new_group, c.left_atom)?,
                            y_field: c.left_field,
                        });
                    }
                    (Some(gl), Some(gr)) if gr == new_group && gl < new_group => {
                        keyed.push(KeyedEq {
                            x_group: gl,
                            x_comp: comp_of(gl, c.left_atom)?,
                            x_field: c.left_field,
                            y_comp: comp_of(new_group, c.right_atom)?,
                            y_field: c.right_field,
                        });
                    }
                    // Active but not spanning prefix ↔ new group.
                    _ => return None,
                }
            }
            plans.push(StagePlan { keyed });
        }
        Some(plans)
    }

    /// Replays one stage's `run_paced` loop over virtual chunk axes.
    /// Returns the surviving prefix rows (stride `stride + 1`), in the
    /// cascade's exact emission order.
    #[allow(clippy::too_many_arguments)]
    fn run_stage(
        &self,
        groups: &[Vec<CompositeTuple>],
        prefix: &[u32],
        stride: usize,
        stage: &NaryStage<'_>,
        plan: &StagePlan,
        stats: &mut JoinStats,
    ) -> Result<Vec<u32>, JoinError> {
        let right_group = stride; // groups joined so far == index of the new one
        let right = &groups[right_group];
        let (r1, r2) = match stage.invocation {
            Invocation::MergeScan { r1, r2 } => (r1 as usize, r2 as usize),
            Invocation::NestedLoop => (1, 1),
        };
        let target_k = if stage.k == 0 { usize::MAX } else { stage.k };
        let scheduler = CallScheduler::new(stage.invocation, stage.h.max(1))?;
        let lc = stage.left_chunk.max(1);
        let rc = stage.right_chunk.max(1);
        let n_left = prefix.len() / stride;
        let nx_chunks = n_left.div_ceil(lc);
        let ny_chunks = right.len().div_ceil(rc);
        let (mut more_x, mut more_y) = (true, true);
        let (mut calls_x, mut calls_y) = (0usize, 0usize);
        let mut done: BTreeSet<Tile> = BTreeSet::new();
        let out_stride = stride + 1;
        let mut out: Vec<u32> = Vec::new();
        let mut c = r1 * r2;
        let mut pruner = TilePruner::new(stage.k);
        let mut rindex: Vec<Option<RightIndex>> = Vec::new();
        let mut probes: Vec<Option<ProbeKeys>> = Vec::new();

        let row_range = |ci: usize, chunk: usize, total: usize| {
            let s = (ci * chunk).min(total);
            (s, ((ci + 1) * chunk).min(total))
        };

        'outer: loop {
            if out.len() / out_stride >= target_k {
                break;
            }
            let mut target = scheduler.next_target(calls_x, calls_y);
            if target == CallTarget::X && !more_x {
                target = CallTarget::Y;
            }
            if target == CallTarget::Y && !more_y {
                target = CallTarget::X;
            }
            match target {
                CallTarget::X if more_x => {
                    more_x = calls_x + 1 < nx_chunks;
                    calls_x += 1;
                }
                CallTarget::Y if more_y => {
                    more_y = calls_y + 1 < ny_chunks;
                    calls_y += 1;
                }
                _ => {}
            }

            loop {
                let mut wave: Vec<Tile> = Vec::new();
                for xi in 0..calls_x {
                    for yi in 0..calls_y {
                        let t = Tile::new(xi, yi);
                        if done.contains(&t) {
                            continue;
                        }
                        let admitted = match stage.completion {
                            Completion::Rectangular => true,
                            Completion::Triangular => xi * r2 + yi * r1 < c,
                        };
                        if admitted {
                            wave.push(t);
                        }
                    }
                }
                if wave.is_empty() {
                    let waiting = (0..calls_x)
                        .any(|xi| (0..calls_y).any(|yi| !done.contains(&Tile::new(xi, yi))));
                    if stage.completion == Completion::Triangular && waiting {
                        c += 1;
                        continue;
                    }
                    break;
                }
                wave.sort_by_key(|t| (t.index_sum(), t.x));
                for t in wave {
                    done.insert(t);
                    let (xs, xe) = row_range(t.x, lc, n_left);
                    let (ys, ye) = row_range(t.y, rc, right.len());
                    if self.tile_prune {
                        // Chunk representatives, 1.0 for empty chunks —
                        // the `CompositeChunk::new` convention.
                        let rep_x = if xs < xe {
                            row_score(groups, &prefix[xs * stride..(xs + 1) * stride])
                        } else {
                            1.0
                        };
                        let rep_y = if ys < ye {
                            right[ys].score_product()
                        } else {
                            1.0
                        };
                        if pruner.can_skip(rep_x * rep_y) {
                            stats.tiles_pruned += 1;
                            stats.pairs_skipped += ((xe - xs) * (ye - ys)) as u64;
                            continue;
                        }
                    }
                    let before = out.len();
                    self.join_stage_tile(
                        groups,
                        prefix,
                        stride,
                        right,
                        plan,
                        (xs, xe),
                        (ys, ye),
                        t,
                        &mut rindex,
                        &mut probes,
                        stats,
                        &mut out,
                    )?;
                    if self.tile_prune {
                        for row in out[before..].chunks(out_stride) {
                            pruner.observe(row_score(groups, row));
                        }
                    }
                    if out.len() / out_stride >= target_k {
                        break 'outer;
                    }
                }
                if stage.completion == Completion::Rectangular {
                    break;
                }
            }

            if !more_x && !more_y {
                break;
            }
        }
        Ok(out)
    }

    /// Joins one virtual tile in the binary kernel's exact (i, j)
    /// order: per prefix row, seek its key range in the right chunk's
    /// sorted keys, merge the hits with the unkeyed rows ascending, and
    /// re-verify every candidate with the full predicate list.
    #[allow(clippy::too_many_arguments)]
    fn join_stage_tile(
        &self,
        groups: &[Vec<CompositeTuple>],
        prefix: &[u32],
        stride: usize,
        right: &[CompositeTuple],
        plan: &StagePlan,
        (xs, xe): (usize, usize),
        (ys, ye): (usize, usize),
        t: Tile,
        rindex: &mut Vec<Option<RightIndex>>,
        probes: &mut Vec<Option<ProbeKeys>>,
        stats: &mut JoinStats,
        out: &mut Vec<u32>,
    ) -> Result<(), JoinError> {
        if xs >= xe || ys >= ye {
            return Ok(());
        }
        let ny = ye - ys;

        if plan.keyed.is_empty() {
            // No active conjunct: every pair passes vacuously (the
            // compiled evaluator's empty-active case), one counted
            // evaluation per candidate, exactly like the cascade.
            for li in xs..xe {
                let row = &prefix[li * stride..(li + 1) * stride];
                for j in ys..ye {
                    stats.predicate_evals += 1;
                    out.extend_from_slice(row);
                    out.push(j as u32);
                }
            }
            return Ok(());
        }

        // Sort the right chunk's keys once (leapfrog trie level).
        if rindex.len() <= t.y {
            rindex.resize_with(t.y + 1, || None);
        }
        // A joint key can only lie about equality when a `Text` value
        // embeds the separator; single-conjunct keys never can.
        let sep_safe = plan.keyed.len() == 1;
        let tainted = |v: &Value| matches!(v, Value::Text(s) if !sep_safe && s.contains(KEY_SEP));

        if rindex[t.y].is_none() {
            stats.index_builds += 1;
            let mut keys: Vec<(Symbol, u32, bool)> = Vec::new();
            let mut unkeyed: Vec<u32> = Vec::new();
            let mut buf = String::new();
            'rows: for (off, comp) in right[ys..ye].iter().enumerate() {
                buf.clear();
                let mut trusted = true;
                for (i, e) in plan.keyed.iter().enumerate() {
                    if i > 0 {
                        buf.push(KEY_SEP);
                    }
                    let v = comp.components[e.y_comp].atomic_at(e.y_field);
                    trusted &= !tainted(v);
                    if !encode_value(v, &mut buf) {
                        unkeyed.push(off as u32);
                        continue 'rows;
                    }
                }
                keys.push((Symbol::intern(&buf), off as u32, trusted));
            }
            keys.sort();
            rindex[t.y] = Some(RightIndex { keys, unkeyed });
        }
        let ri = rindex[t.y].as_ref().expect("built above");

        // Extract (or reuse) the prefix chunk's probe keys.
        if probes.len() <= t.x {
            probes.resize_with(t.x + 1, || None);
        }
        if probes[t.x].is_none() {
            let mut pk = Vec::with_capacity(xe - xs);
            let mut buf = String::new();
            'rows: for li in xs..xe {
                let row = &prefix[li * stride..(li + 1) * stride];
                buf.clear();
                let mut trusted = true;
                for (i, e) in plan.keyed.iter().enumerate() {
                    if i > 0 {
                        buf.push(KEY_SEP);
                    }
                    let comp = &groups[e.x_group][row[e.x_group] as usize];
                    let v = comp.components[e.x_comp].atomic_at(e.x_field);
                    trusted &= !tainted(v);
                    if !encode_value(v, &mut buf) {
                        pk.push(None);
                        continue 'rows;
                    }
                }
                pk.push(Some((Symbol::intern(&buf), trusted)));
            }
            probes[t.x] = Some(pk);
        }
        let pk = probes[t.x].as_ref().expect("built above");

        // Fan the tile's prefix rows out as sorted key-range segments
        // when a pool is attached and the tile is big enough to pay the
        // overhead; segments are reduced in order, so the flat output
        // rows concatenate exactly as the serial pass emits them.
        let nx = xe - xs;
        if let Some(pool) = self.pool.as_deref().filter(|p| p.parallelism() > 1) {
            if nx >= 2 * crate::executor::PAR_MIN_SEG
                && nx.saturating_mul(ny) >= crate::executor::PAR_MIN_PAIRS
            {
                let seg = (nx / (4 * pool.parallelism())).max(crate::executor::PAR_MIN_SEG);
                let mut tasks = Vec::new();
                let mut s = xs;
                while s < xe {
                    let e = (s + seg).min(xe);
                    tasks.push(move || {
                        let mut seg_stats = JoinStats::default();
                        let mut seg_out = Vec::new();
                        let res = stage_tile_rows(
                            groups,
                            prefix,
                            stride,
                            right,
                            plan,
                            (s, e),
                            (ys, ye),
                            xs,
                            ri,
                            pk,
                            &mut seg_stats,
                            &mut seg_out,
                        );
                        (res, seg_stats, seg_out)
                    });
                    s = e;
                }
                for (res, seg_stats, seg_out) in pool.scope_run(tasks) {
                    stats.merge(&seg_stats);
                    out.extend(seg_out);
                    res?;
                }
                return Ok(());
            }
        }
        stage_tile_rows(
            groups,
            prefix,
            stride,
            right,
            plan,
            (xs, xe),
            (ys, ye),
            xs,
            ri,
            pk,
            stats,
            out,
        )
    }
}

/// Intersects one contiguous range of prefix rows against a right
/// chunk's sorted key array — the n-ary morsel body, extracted verbatim
/// from the serial leapfrog pass. `tile_xs` is the tile's first prefix
/// row (probe keys are cached per tile, offset from it).
#[allow(clippy::too_many_arguments)]
fn stage_tile_rows(
    groups: &[Vec<CompositeTuple>],
    prefix: &[u32],
    stride: usize,
    right: &[CompositeTuple],
    plan: &StagePlan,
    (xs, xe): (usize, usize),
    (ys, ye): (usize, usize),
    tile_xs: usize,
    ri: &RightIndex,
    pk: &ProbeKeys,
    stats: &mut JoinStats,
    out: &mut Vec<u32>,
) -> Result<(), JoinError> {
    let ny = ye - ys;
    let mut cand: Vec<(u32, bool)> = Vec::new();
    for li in xs..xe {
        let row = &prefix[li * stride..(li + 1) * stride];
        match pk[li - tile_xs] {
            None => {
                // Unencodable probe: scan the chunk so the
                // interpreter's behavior — including errors — is
                // reproduced.
                for j in ys..ye {
                    verify_and_emit(groups, row, right, j, plan, stats, out)?;
                }
            }
            Some((key, x_trusted)) => {
                stats.probes += 1;
                let lo = ri.keys.partition_point(|(k, _, _)| *k < key);
                let hi = ri.keys.partition_point(|(k, _, _)| *k <= key);
                let hits = &ri.keys[lo..hi];
                // Ascending merge of keyed hits with unkeyed rows
                // reproduces the nested loop's j order exactly.
                cand.clear();
                let (mut bi, mut ui) = (0usize, 0usize);
                while bi < hits.len() || ui < ri.unkeyed.len() {
                    if bi < hits.len() && (ui >= ri.unkeyed.len() || hits[bi].1 < ri.unkeyed[ui]) {
                        bi += 1;
                        cand.push((hits[bi - 1].1, hits[bi - 1].2));
                    } else {
                        ui += 1;
                        cand.push((ri.unkeyed[ui - 1], false));
                    }
                }
                stats.pairs_skipped += (ny - cand.len()) as u64;
                for &(off, y_trusted) in &cand {
                    let j = ys + off as usize;
                    if x_trusted && y_trusted {
                        // Proven match: the key comparison was the
                        // equality evaluation (counted like a batch
                        // kernel covering its candidates).
                        stats.predicate_evals += 1;
                        out.extend_from_slice(row);
                        out.push(j as u32);
                    } else {
                        verify_and_emit(groups, row, right, j, plan, stats, out)?;
                    }
                }
            }
        }
    }
    Ok(())
}

/// Score product of a prefix row — what the merged composite's
/// `score_product` would be, without building it.
fn row_score(groups: &[Vec<CompositeTuple>], row: &[u32]) -> f64 {
    row.iter()
        .enumerate()
        .map(|(g, &r)| groups[g][r as usize].score_product())
        .product()
}

/// Verifies one candidate pair with the full predicate list, in
/// predicate order with short-circuit on false — the compiled
/// evaluator's semantics, errors included — and emits the extended
/// prefix row on success.
fn verify_and_emit(
    groups: &[Vec<CompositeTuple>],
    row: &[u32],
    right: &[CompositeTuple],
    j: usize,
    plan: &StagePlan,
    stats: &mut JoinStats,
    out: &mut Vec<u32>,
) -> Result<(), JoinError> {
    stats.predicate_evals += 1;
    let b = &right[j];
    for e in &plan.keyed {
        let comp = &groups[e.x_group][row[e.x_group] as usize];
        let lt = &comp.components[e.x_comp];
        let rt = &b.components[e.y_comp];
        let ok = Comparator::Eq
            .eval(lt.atomic_at(e.x_field), rt.atomic_at(e.y_field))
            .map_err(QueryError::Model)?;
        if !ok {
            return Ok(());
        }
    }
    out.extend_from_slice(row);
    out.push(j as u32);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::{MemoryStream, ParallelJoinExecutor};
    use crate::index::{ColumnarOptions, JoinIndexOptions};
    use seco_model::{
        Adornment, AttributeDef, AttributePath, DataType, ScoreDecay, ServiceSchema, Tuple, Value,
    };
    use seco_query::{JoinPredicate, QualifiedPath};

    fn schema(name: &str) -> ServiceSchema {
        ServiceSchema::new(
            name,
            vec![
                AttributeDef::atomic("City", DataType::Text, Adornment::Output),
                AttributeDef::atomic("Score", DataType::Float, Adornment::Ranked),
            ],
        )
        .unwrap()
    }

    fn stream_data(
        atom: &str,
        schema: &ServiceSchema,
        n: usize,
        decay: ScoreDecay,
        modulus: usize,
    ) -> Vec<CompositeTuple> {
        let f = seco_model::ScoringFunction::new(decay, n, 2).unwrap();
        (0..n)
            .map(|i| {
                let t = Tuple::builder(schema)
                    .set("City", Value::Text(format!("city-{}", i % modulus)))
                    .set("Score", Value::float(f.score_at(i)))
                    .score(f.score_at(i))
                    .source_rank(i)
                    .build()
                    .unwrap();
                CompositeTuple::single(atom, t)
            })
            .collect()
    }

    fn eq_pred(la: &str, ra: &str) -> ResolvedPredicate {
        ResolvedPredicate::Join(JoinPredicate {
            left: QualifiedPath::new(la, AttributePath::atomic("City")),
            op: seco_model::Comparator::Eq,
            right: QualifiedPath::new(ra, AttributePath::atomic("City")),
        })
    }

    /// The reference: two chained binary executor runs.
    #[allow(clippy::too_many_arguments)]
    fn cascade(
        schemas: &SchemaMap<'_>,
        a: &[CompositeTuple],
        b: &[CompositeTuple],
        cc: &[CompositeTuple],
        p1: &[ResolvedPredicate],
        p2: &[ResolvedPredicate],
        k: usize,
        chunks: (usize, usize, usize, usize),
    ) -> Vec<CompositeTuple> {
        let (c0, c1, lc2, c2) = chunks;
        let e1 = ParallelJoinExecutor {
            predicates: p1,
            schemas,
            invocation: seco_plan::Invocation::merge_scan_even(),
            completion: Completion::Triangular,
            h: 1,
            k,
            options: JoinIndexOptions::default(),
            columnar: ColumnarOptions::default(),
            pool: None,
        };
        let mut sa = MemoryStream::new(a.to_vec(), c0);
        let mut sb = MemoryStream::new(b.to_vec(), c1);
        let mid = e1.run(&mut sa, &mut sb).unwrap().results;
        let e2 = ParallelJoinExecutor {
            predicates: p2,
            ..e1
        };
        let mut sm = MemoryStream::new(mid, lc2);
        let mut sc = MemoryStream::new(cc.to_vec(), c2);
        e2.run(&mut sm, &mut sc).unwrap().results
    }

    #[test]
    fn three_way_join_matches_the_binary_cascade() {
        let sa = schema("A1");
        let sb = schema("B1");
        let sc = schema("C1");
        let mut schemas = SchemaMap::new();
        schemas.insert("A".into(), &sa);
        schemas.insert("B".into(), &sb);
        schemas.insert("C".into(), &sc);
        let p1 = vec![eq_pred("A", "B")];
        let p2 = vec![eq_pred("B", "C")];
        let a = stream_data("A", &sa, 12, ScoreDecay::Linear, 3);
        let b = stream_data("B", &sb, 10, ScoreDecay::Quadratic, 3);
        let cc = stream_data("C", &sc, 14, ScoreDecay::Linear, 4);
        for k in [0usize, 7] {
            let want = cascade(&schemas, &a, &b, &cc, &p1, &p2, k, (3, 4, 5, 3));
            let nj = NaryJoin {
                schemas: &schemas,
                tile_prune: false,
                pool: None,
            };
            let stages = [
                NaryStage {
                    predicates: &p1,
                    invocation: seco_plan::Invocation::merge_scan_even(),
                    completion: Completion::Triangular,
                    h: 1,
                    k,
                    left_chunk: 3,
                    right_chunk: 4,
                },
                NaryStage {
                    predicates: &p2,
                    invocation: seco_plan::Invocation::merge_scan_even(),
                    completion: Completion::Triangular,
                    h: 1,
                    k,
                    left_chunk: 5,
                    right_chunk: 3,
                },
            ];
            let out = nj
                .run(&[a.clone(), b.clone(), cc.clone()], &stages)
                .unwrap()
                .expect("eligible plan");
            assert_eq!(out.results, want, "k={k}");
            if k == 0 {
                assert!(out.stats.intermediates_elided > 0);
            }
        }
    }

    #[test]
    fn shared_ancestry_falls_back() {
        let sa = schema("A1");
        let sb = schema("B1");
        let mut schemas = SchemaMap::new();
        schemas.insert("A".into(), &sa);
        schemas.insert("B".into(), &sb);
        let p = vec![eq_pred("A", "B")];
        let a = stream_data("A", &sa, 4, ScoreDecay::Linear, 2);
        let b = stream_data("B", &sb, 4, ScoreDecay::Linear, 2);
        // Group 2 shares atom A with group 0: merges could fail, so the
        // kernel must defer to the cascade.
        let stages = [
            NaryStage {
                predicates: &p,
                invocation: seco_plan::Invocation::merge_scan_even(),
                completion: Completion::Rectangular,
                h: 1,
                k: 0,
                left_chunk: 2,
                right_chunk: 2,
            },
            NaryStage {
                predicates: &p,
                invocation: seco_plan::Invocation::merge_scan_even(),
                completion: Completion::Rectangular,
                h: 1,
                k: 0,
                left_chunk: 2,
                right_chunk: 2,
            },
        ];
        let nj = NaryJoin {
            schemas: &schemas,
            tile_prune: false,
            pool: None,
        };
        let out = nj.run(&[a.clone(), b.clone(), a.clone()], &stages).unwrap();
        assert!(out.is_none());
    }

    #[test]
    fn empty_group_short_circuits() {
        let sa = schema("A1");
        let sb = schema("B1");
        let sc = schema("C1");
        let mut schemas = SchemaMap::new();
        schemas.insert("A".into(), &sa);
        schemas.insert("B".into(), &sb);
        schemas.insert("C".into(), &sc);
        let p1 = vec![eq_pred("A", "B")];
        let p2 = vec![eq_pred("B", "C")];
        let a = stream_data("A", &sa, 4, ScoreDecay::Linear, 2);
        let cc = stream_data("C", &sc, 4, ScoreDecay::Linear, 2);
        let stages = [
            NaryStage {
                predicates: &p1,
                invocation: seco_plan::Invocation::merge_scan_even(),
                completion: Completion::Rectangular,
                h: 1,
                k: 0,
                left_chunk: 2,
                right_chunk: 2,
            },
            NaryStage {
                predicates: &p2,
                invocation: seco_plan::Invocation::merge_scan_even(),
                completion: Completion::Rectangular,
                h: 1,
                k: 0,
                left_chunk: 2,
                right_chunk: 2,
            },
        ];
        let nj = NaryJoin {
            schemas: &schemas,
            tile_prune: false,
            pool: None,
        };
        let out = nj
            .run(&[a, Vec::new(), cc], &stages)
            .unwrap()
            .expect("provably empty is still an answer");
        assert!(out.results.is_empty());
    }

    /// The n-ary morsel path must be invisible: identical flat output
    /// and counters at any worker count, k-cut included.
    #[test]
    fn pooled_segments_are_byte_identical_to_serial() {
        let sa = schema("A1");
        let sb = schema("B1");
        let sc = schema("C1");
        let mut schemas = SchemaMap::new();
        schemas.insert("A".into(), &sa);
        schemas.insert("B".into(), &sb);
        schemas.insert("C".into(), &sc);
        let p1 = vec![eq_pred("A", "B")];
        let p2 = vec![eq_pred("B", "C")];
        let a = stream_data("A", &sa, 180, ScoreDecay::Linear, 3);
        let b = stream_data("B", &sb, 120, ScoreDecay::Quadratic, 3);
        let cc = stream_data("C", &sc, 90, ScoreDecay::Linear, 4);
        let run = |pool: Option<std::sync::Arc<seco_exec::ExecPool>>, k: usize| {
            let nj = NaryJoin {
                schemas: &schemas,
                tile_prune: false,
                pool,
            };
            let stages = [
                NaryStage {
                    predicates: &p1,
                    invocation: seco_plan::Invocation::merge_scan_even(),
                    completion: Completion::Triangular,
                    h: 1,
                    k,
                    left_chunk: 90,
                    right_chunk: 60,
                },
                NaryStage {
                    predicates: &p2,
                    invocation: seco_plan::Invocation::merge_scan_even(),
                    completion: Completion::Triangular,
                    h: 1,
                    k,
                    left_chunk: 120,
                    right_chunk: 45,
                },
            ];
            nj.run(&[a.clone(), b.clone(), cc.clone()], &stages)
                .unwrap()
                .expect("eligible plan")
        };
        for k in [0usize, 25] {
            let serial = run(None, k);
            for workers in [2, 8] {
                let pool = std::sync::Arc::new(seco_exec::ExecPool::new(workers));
                let parallel = run(Some(std::sync::Arc::clone(&pool)), k);
                assert_eq!(serial, parallel, "k={k} workers={workers}");
                assert!(pool.stats().morsels > 0, "segments must engage (k={k})");
                pool.shutdown();
            }
        }
    }
}
