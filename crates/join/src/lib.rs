//! # seco-join — join methods for Search Computing (§4)
//!
//! The join of two search services is modelled as the exploration of a
//! Cartesian *tile space* (Fig. 4): service `X` contributes chunks
//! `cX1, cX2, …` on one axis, service `Y` chunks `cY1, cY2, …` on the
//! other, and tile `t(i,j)` holds the `nX × nY` candidate pairs of chunk
//! `i` of `X` with chunk `j` of `Y`. A join method is a combination of
//! three orthogonal characteristics:
//!
//! * **topology** (§4.2) — *pipe* (sequential, output of one service
//!   feeds the other) or *parallel* (both invoked independently);
//! * **invocation strategy** (§4.3) — *nested-loop* (drain the `h`
//!   high-score chunks of the step-scored service first) or
//!   *merge-scan* (alternate calls diagonally with an inter-service
//!   ratio `r`);
//! * **completion strategy** (§4.4) — *rectangular* (process every tile
//!   as soon as available) or *triangular* (process tiles diagonally
//!   under `x·r2 + y·r1 < c` with growing `c`).
//!
//! [`optimality`] implements the chapter's quality notion: a strategy is
//! **extraction-optimal** when it emits results in decreasing order of
//! the score product `ρX · ρY` — *globally* (relative to all tiles) or
//! *locally* (relative to the tiles already loaded).

pub mod completion;
pub mod error;
pub mod executor;
pub mod index;
pub mod method;
pub mod nary;
pub mod optimality;
pub mod pipe;
pub mod rank;
pub mod strategy;
pub mod tile;

pub use error::JoinError;
pub use executor::{JoinOutcome, ParallelJoinExecutor};
pub use index::{ColumnarOptions, JoinIndexMode, JoinIndexOptions, JoinStats};
pub use method::{JoinMethod, Topology};
pub use nary::{NaryJoin, NaryOutcome, NaryStage};
pub use pipe::{pipe_join, PipeJoin, PipeOutcome};
pub use rank::{score_order, RankJoin};
pub use strategy::{cost_based_ratio, CallScheduler, CallTarget, Pacing, TilePruner};
pub use tile::{Tile, TileSpace};

/// Result alias for join-layer operations.
pub type Result<T> = std::result::Result<T, JoinError>;
