//! # seco-plan — query plans as dataflow DAGs
//!
//! Implements §3.2 of the chapter. A query plan is a directed acyclic
//! graph whose nodes are service invocations, parallel joins, selections,
//! and the designated input/output nodes; arcs denote dataflow and
//! parameter passing. Pipe joins have no dedicated node — they are "just
//! a sequence of service invocations that are chained by passing the
//! output of one invocation as input to the next" (§4.2.1). Parallel
//! joins are explicit nodes annotated with a join strategy.
//!
//! The [`annotate`](crate::annotate) module computes, for every node, the expected number
//! of input and output tuples (`tin`/`tout`) and service calls from the
//! service statistics, the query's selectivities, and the chosen fetch
//! factors — producing the *fully instantiated query plan* of Fig. 3 and
//! Fig. 10, the object cost metrics are evaluated on.

pub mod annotate;
pub mod dag;
pub mod delta;
pub mod display;
pub mod error;
pub mod node;

pub use annotate::{annotate, back_propagate, AnnotatedPlan, Annotation, AnnotationConfig};
pub use dag::{NodeId, QueryPlan};
pub use delta::DeltaAnnotator;
pub use error::PlanError;
pub use node::{Completion, Invocation, JoinSpec, PlanNode, SelectionNode, ServiceNode};

/// Result alias for plan-layer operations.
pub type Result<T> = std::result::Result<T, PlanError>;
