//! Cardinality annotation: from a plan to a *fully instantiated query
//! plan* (§3.2, Figs. 3 and 10).
//!
//! For each node the annotation records the expected number of input
//! tuples `tin`, output tuples `tout`, and request-responses `calls`,
//! derived from the service statistics under the chapter's independence
//! and uniform-distribution assumptions:
//!
//! * exact services: `tout = tin × avg_cardinality`;
//! * search services: `tout = tin × chunk_size × F` (capped by the
//!   expected total result size), where `F` is the node's fetch factor;
//! * pipe-joined services additionally multiply by the pipe join's
//!   selectivity, and a `keep_first` node keeps one tuple per
//!   *successful* invocation (the §5.6 `Restaurant` choice);
//! * selection nodes: `tout = tin × selectivity`;
//! * parallel joins: `candidates = tout_left × tout_right ×
//!   coverage(completion)` and `tout = candidates × selectivity` — the
//!   triangular strategy's ½ factor is §5.6's "only the half of the most
//!   promising combinations are considered".

use std::collections::BTreeMap;

use seco_query::feasibility::{analyze, FeasibilityReport};
use seco_services::ServiceRegistry;

use crate::dag::{NodeId, QueryPlan};
use crate::error::PlanError;
use crate::node::PlanNode;

/// Per-node annotation of a fully instantiated plan.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Annotation {
    /// Expected tuples flowing into the node. For parallel joins this is
    /// the number of *candidate combinations* examined
    /// (`tout_left × tout_right × coverage`).
    pub tin: f64,
    /// Expected tuples flowing out of the node.
    pub tout: f64,
    /// Expected request-responses issued by the node (0 for non-service
    /// nodes).
    pub calls: f64,
}

/// Knobs of the annotation arithmetic.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnnotationConfig {
    /// Cap each search service's per-input-tuple output at its expected
    /// total result size (`avg_cardinality`). On by default: fetching 50
    /// chunks of a 100-tuple list still yields 100 tuples.
    pub cap_by_total: bool,
}

impl Default for AnnotationConfig {
    fn default() -> Self {
        AnnotationConfig { cap_by_total: true }
    }
}

/// A plan together with its per-node annotations.
#[derive(Debug, Clone, PartialEq)]
pub struct AnnotatedPlan {
    annotations: Vec<Annotation>,
    /// Per-service expected calls, keyed by interface name (summed over
    /// nodes; inputs to the cost metrics).
    pub calls_by_service: BTreeMap<String, f64>,
    /// Expected tuples delivered to the output node.
    pub output_tuples: f64,
}

impl AnnotatedPlan {
    /// The annotation of a node.
    pub fn annotation(&self, id: NodeId) -> Annotation {
        self.annotations.get(id.0).copied().unwrap_or_default()
    }

    /// Total expected request-responses of the plan.
    pub fn total_calls(&self) -> f64 {
        self.calls_by_service.values().sum()
    }

    /// Assembles an annotated plan from precomputed parts (the
    /// incremental annotator maintains one in place).
    pub(crate) fn from_parts(
        annotations: Vec<Annotation>,
        calls_by_service: BTreeMap<String, f64>,
        output_tuples: f64,
    ) -> Self {
        AnnotatedPlan {
            annotations,
            calls_by_service,
            output_tuples,
        }
    }

    /// In-place update of one node's annotation (incremental annotator
    /// only; keeps `calls_by_service`/`output_tuples` the caller's job).
    pub(crate) fn set_annotation(&mut self, idx: usize, ann: Annotation) {
        if idx < self.annotations.len() {
            self.annotations[idx] = ann;
        }
    }

    /// Replaces the per-service call sums (incremental annotator only).
    pub(crate) fn set_calls_by_service(&mut self, calls: BTreeMap<String, f64>) {
        self.calls_by_service = calls;
    }

    /// Replaces the cached output-tuple estimate (incremental annotator
    /// only).
    pub(crate) fn set_output_tuples(&mut self, tuples: f64) {
        self.output_tuples = tuples;
    }
}

/// Computes the pipe-join selectivity applying to a service node: the
/// product of the join selectivities between this atom and each distinct
/// atom that pipes values into it.
pub(crate) fn pipe_selectivity(
    plan: &QueryPlan,
    registry: &ServiceRegistry,
    report: &FeasibilityReport,
    atom: &str,
) -> Result<f64, PlanError> {
    let mut sel = 1.0;
    let mut seen: Vec<&str> = Vec::new();
    for dep in report.bindings_of(atom) {
        if let seco_query::feasibility::BindingSource::Piped { from_atom, .. } = &dep.source {
            if !seen.contains(&from_atom.as_str()) {
                seen.push(from_atom);
                sel *= plan.query.join_selectivity(registry, from_atom, atom)?;
            }
        }
    }
    Ok(sel)
}

/// Annotates a validated plan. See the module docs for the arithmetic.
pub fn annotate(
    plan: &QueryPlan,
    registry: &ServiceRegistry,
    config: &AnnotationConfig,
) -> Result<AnnotatedPlan, PlanError> {
    plan.validate()?;
    let report = analyze(&plan.query, registry)?;
    let order = plan.topo_order()?;
    let mut annotations = vec![Annotation::default(); plan.len()];
    let mut calls_by_service: BTreeMap<String, f64> = BTreeMap::new();

    for id in order {
        let preds = plan.predecessors(id);
        let ann = match plan.node(id)? {
            PlanNode::Input => Annotation {
                tin: 1.0,
                tout: 1.0,
                calls: 0.0,
            },
            PlanNode::Output => {
                let tin = annotations[preds[0].0].tout;
                Annotation {
                    tin,
                    tout: tin,
                    calls: 0.0,
                }
            }
            PlanNode::Selection(sel) => {
                let tin = annotations[preds[0].0].tout;
                Annotation {
                    tin,
                    tout: tin * sel.selectivity,
                    calls: 0.0,
                }
            }
            PlanNode::ParallelJoin(spec) => {
                let tl = annotations[preds[0].0].tout;
                let tr = annotations[preds[1].0].tout;
                let candidates = tl * tr * spec.completion.coverage_factor();
                Annotation {
                    tin: candidates,
                    tout: candidates * spec.selectivity,
                    calls: 0.0,
                }
            }
            PlanNode::Service(node) => {
                let iface = registry
                    .interface(&node.service)
                    .map_err(|e| PlanError::Query(e.into()))?;
                let tin = annotations[preds[0].0].tout;
                let calls = tin * node.fetches as f64;
                *calls_by_service.entry(node.service.clone()).or_insert(0.0) += calls;
                let psel = pipe_selectivity(plan, registry, &report, &node.atom)?;
                let per_input = if node.keep_first {
                    1.0
                } else if iface.kind.is_chunked() {
                    let fetched = (iface.stats.chunk_size as f64) * node.fetches as f64;
                    if config.cap_by_total {
                        fetched.min(iface.stats.avg_cardinality.max(1.0))
                    } else {
                        fetched
                    }
                } else {
                    iface.stats.avg_cardinality
                };
                Annotation {
                    tin,
                    tout: tin * psel * per_input,
                    calls,
                }
            }
        };
        annotations[id.0] = ann;
    }

    let output_tuples = annotations[plan.output().0].tout;
    Ok(AnnotatedPlan {
        annotations,
        calls_by_service,
        output_tuples,
    })
}

/// Back-propagates the output target `K` through the plan (§5.6: "The
/// value of K can be 'back-propagated' through the nodes of the plan"),
/// returning for each node the number of output tuples it must produce
/// so that the plan yields `k` answers.
///
/// Inverse arithmetic of [`annotate`]:
///
/// * output / input: pass through;
/// * selection: `required_in = required_out / selectivity`;
/// * pipe-joined service: `required_in = required_out / (pipe_sel ×
///   per_input)` — e.g. the §5.6 step "tRestaurant_out = 10 implies
///   tRestaurant_in = 25, by virtue of the selectivity of the pipe
///   join";
/// * parallel join: `candidates = required_out / selectivity`, split
///   evenly (in the geometric-mean sense) between the branches — the
///   *square-is-better* reading of the chapter's "the space of possible
///   solutions opens up quite widely" remark.
pub fn back_propagate(
    plan: &QueryPlan,
    registry: &ServiceRegistry,
    k: f64,
) -> Result<std::collections::BTreeMap<NodeId, f64>, PlanError> {
    plan.validate()?;
    let report = analyze(&plan.query, registry)?;
    let mut required: std::collections::BTreeMap<NodeId, f64> = std::collections::BTreeMap::new();
    let order = {
        let mut o = plan.topo_order()?;
        o.reverse();
        o
    };
    required.insert(plan.output(), k);
    for id in order {
        let Some(&req_out) = required.get(&id) else {
            continue;
        };
        let preds = plan.predecessors(id);
        match plan.node(id)? {
            PlanNode::Input => {}
            PlanNode::Output => {
                required.insert(preds[0], req_out);
            }
            PlanNode::Selection(sel) => {
                required.insert(preds[0], req_out / sel.selectivity.max(1e-9));
            }
            PlanNode::Service(node) => {
                let iface = registry
                    .interface(&node.service)
                    .map_err(|e| PlanError::Query(e.into()))?;
                let psel = pipe_selectivity(plan, registry, &report, &node.atom)?;
                let per_input = if node.keep_first {
                    1.0
                } else if iface.kind.is_chunked() {
                    (iface.stats.chunk_size as f64 * node.fetches as f64)
                        .min(iface.stats.avg_cardinality.max(1.0))
                } else {
                    iface.stats.avg_cardinality
                };
                required.insert(preds[0], req_out / (psel * per_input).max(1e-9));
            }
            PlanNode::ParallelJoin(spec) => {
                let candidates = req_out / spec.selectivity.max(1e-9);
                let per_side = (candidates / spec.completion.coverage_factor().max(1e-9)).sqrt();
                required.insert(preds[0], per_side);
                required.insert(preds[1], per_side);
            }
        }
    }
    Ok(required)
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use crate::dag::QueryPlan;
    use crate::node::{Completion, Invocation, JoinSpec, PlanNode, SelectionNode, ServiceNode};
    use seco_model::{Comparator, Value};
    use seco_query::builder::running_example;
    use seco_query::{QueryBuilder, SelectionPredicate};
    use seco_services::domains::{entertainment, travel};

    /// Builds the Fig. 10 plan: Input → {Movie(F=5), Theatre(F=5)} →
    /// MS-join (triangular) → Restaurant (keep-first) → Output.
    pub fn fig10_plan() -> QueryPlan {
        let query = running_example();
        let mut p = QueryPlan::new(query.clone());
        let m = p.add(PlanNode::Service(
            ServiceNode::new("M", "Movie1").with_fetches(5),
        ));
        let t = p.add(PlanNode::Service(
            ServiceNode::new("T", "Theatre1").with_fetches(5),
        ));
        let reg = entertainment::build_registry(1).unwrap();
        let joins = query.expanded_joins(&reg).unwrap();
        let shows: Vec<_> = joins
            .iter()
            .filter(|j| j.connects("M", "T"))
            .cloned()
            .collect();
        let j = p.add(PlanNode::ParallelJoin(JoinSpec {
            invocation: Invocation::merge_scan_even(),
            completion: Completion::Triangular,
            predicates: shows,
            selectivity: entertainment::SHOWS_SELECTIVITY,
        }));
        let r = p.add(PlanNode::Service(
            ServiceNode::new("R", "Restaurant1").with_keep_first(),
        ));
        p.connect(p.input(), m).unwrap();
        p.connect(p.input(), t).unwrap();
        p.connect(m, j).unwrap();
        p.connect(t, j).unwrap();
        p.connect(j, r).unwrap();
        p.connect(r, p.output()).unwrap();
        p
    }

    #[test]
    fn fig10_arithmetic_is_reproduced_exactly() {
        // §5.6: 5 fetches of 20 movies = 100; 5 fetches of 5 theatres
        // = 25; triangular halves 2500 → 1250 candidates; 2% Shows
        // selectivity → tMS_out = 25; DinnerPlace 40% with keep-first →
        // tRestaurant_out = 10 = K.
        let reg = entertainment::build_registry(1).unwrap();
        let plan = fig10_plan();
        let ann = annotate(&plan, &reg, &AnnotationConfig::default()).unwrap();

        let m = plan.service_node_of("M").unwrap();
        let t = plan.service_node_of("T").unwrap();
        let r = plan.service_node_of("R").unwrap();
        let j = plan
            .node_ids()
            .find(|id| matches!(plan.node(*id).unwrap(), PlanNode::ParallelJoin(_)))
            .unwrap();

        assert_eq!(ann.annotation(m).tout, 100.0, "tMovie_out");
        assert_eq!(ann.annotation(m).calls, 5.0, "5 Movie fetches");
        assert_eq!(ann.annotation(t).tout, 25.0, "tTheatre_out");
        assert_eq!(ann.annotation(t).calls, 5.0, "5 Theatre fetches");
        assert_eq!(ann.annotation(j).tin, 1250.0, "1250 candidate combinations");
        assert_eq!(ann.annotation(j).tout, 25.0, "tMS_out");
        assert_eq!(ann.annotation(r).tin, 25.0, "tRestaurant_in");
        assert_eq!(ann.annotation(r).tout, 10.0, "tRestaurant_out = K = 10");
        assert_eq!(ann.output_tuples, 10.0);
        assert_eq!(
            ann.annotation(r).calls,
            25.0,
            "one call per piped theatre location"
        );
        assert_eq!(ann.total_calls(), 35.0);
    }

    /// Builds the Fig. 2/3 plan: Input → Conference → Weather →
    /// σ(AvgTemp>26) → {Flight, Hotel} → MS-join → Output.
    fn fig3_plan() -> (QueryPlan, seco_services::ServiceRegistry) {
        let reg = travel::build_registry(5).unwrap();
        let query = QueryBuilder::new()
            .atom("C", "Conference1")
            .atom("W", "Weather1")
            .atom("F", "Flight1")
            .atom("H", "Hotel1")
            .pattern("Forecast", "C", "W")
            .pattern("ReachedBy", "C", "F")
            .pattern("StayAt", "C", "H")
            .pattern("SameTrip", "F", "H")
            .select_const("C", "Topic", Comparator::Eq, Value::text("databases"))
            .select_const("W", "AvgTemp", Comparator::Gt, Value::Int(26))
            .build()
            .unwrap();
        let mut p = QueryPlan::new(query.clone());
        let c = p.add(PlanNode::Service(ServiceNode::new("C", "Conference1")));
        let w = p.add(PlanNode::Service(ServiceNode::new("W", "Weather1")));
        let sel = p.add(PlanNode::Selection(
            SelectionNode::new(vec![SelectionPredicate {
                left: seco_query::QualifiedPath::new(
                    "W",
                    seco_model::AttributePath::atomic("AvgTemp"),
                ),
                op: Comparator::Gt,
                right: seco_query::Operand::Const(Value::Int(26)),
            }])
            .with_selectivity(0.25),
        ));
        let f = p.add(PlanNode::Service(
            ServiceNode::new("F", "Flight1").with_fetches(2),
        ));
        let h = p.add(PlanNode::Service(
            ServiceNode::new("H", "Hotel1").with_fetches(2),
        ));
        let joins = query.expanded_joins(&reg).unwrap();
        let same_trip: Vec<_> = joins
            .iter()
            .filter(|j| j.connects("F", "H"))
            .cloned()
            .collect();
        let j = p.add(PlanNode::ParallelJoin(JoinSpec {
            invocation: Invocation::merge_scan_even(),
            completion: Completion::Rectangular,
            predicates: same_trip,
            selectivity: 1.0,
        }));
        p.connect(p.input(), c).unwrap();
        p.connect(c, w).unwrap();
        p.connect(w, sel).unwrap();
        p.connect(sel, f).unwrap();
        p.connect(sel, h).unwrap();
        p.connect(f, j).unwrap();
        p.connect(h, j).unwrap();
        p.connect(j, p.output()).unwrap();
        (p, reg)
    }

    #[test]
    fn fig3_annotation_shape() {
        let (plan, reg) = fig3_plan();
        let ann = annotate(&plan, &reg, &AnnotationConfig::default()).unwrap();
        let c = plan.service_node_of("C").unwrap();
        let w = plan.service_node_of("W").unwrap();
        let f = plan.service_node_of("F").unwrap();
        // Conference: 1 call, 20 conferences (proliferative).
        assert_eq!(ann.annotation(c).calls, 1.0);
        assert_eq!(ann.annotation(c).tout, 20.0);
        // Weather: 20 calls, one forecast each.
        assert_eq!(ann.annotation(w).calls, 20.0);
        assert_eq!(ann.annotation(w).tout, 20.0);
        // Selection keeps a quarter: 5 warm conferences.
        let sel_id = plan
            .node_ids()
            .find(|id| matches!(plan.node(*id).unwrap(), PlanNode::Selection(_)))
            .unwrap();
        assert_eq!(ann.annotation(sel_id).tout, 5.0);
        // Flight: 5 input tuples × 2 fetches = 10 calls, 5×2×10=100 tuples.
        assert_eq!(ann.annotation(f).calls, 10.0);
        assert_eq!(ann.annotation(f).tout, 100.0);
        assert!(ann.output_tuples > 0.0);
        assert_eq!(ann.calls_by_service["Weather1"], 20.0);
    }

    #[test]
    fn search_output_is_capped_by_total_results() {
        // Theatre has 25 expected results; asking for 10 chunks of 5
        // cannot produce more than 25 tuples.
        let reg = entertainment::build_registry(1).unwrap();
        let mut plan = fig10_plan();
        let t = plan.service_node_of("T").unwrap();
        if let PlanNode::Service(s) = plan.node_mut(t).unwrap() {
            s.fetches = 10;
        }
        let ann = annotate(&plan, &reg, &AnnotationConfig::default()).unwrap();
        assert_eq!(ann.annotation(t).tout, 25.0);
        // Without the cap the naive arithmetic would say 50.
        let ann = annotate(
            &plan,
            &reg,
            &AnnotationConfig {
                cap_by_total: false,
            },
        )
        .unwrap();
        assert_eq!(ann.annotation(t).tout, 50.0);
    }

    #[test]
    fn back_propagation_reproduces_the_section_5_6_steps() {
        // "K = 10 implies tRestaurant_out = 10 […] tRestaurant_in = 25
        // […] this in turn implies tMS_out = 25".
        let reg = entertainment::build_registry(1).unwrap();
        let plan = fig10_plan();
        let required = back_propagate(&plan, &reg, 10.0).unwrap();
        let r = plan.service_node_of("R").unwrap();
        let j = plan
            .node_ids()
            .find(|id| matches!(plan.node(*id).unwrap(), PlanNode::ParallelJoin(_)))
            .unwrap();
        assert_eq!(required[&plan.output()], 10.0);
        assert_eq!(
            required[&r], 10.0,
            "the restaurant node must output K tuples"
        );
        assert_eq!(required[&j], 25.0, "tMS_out = tRestaurant_in = 25");
        // The join's branches split the 1250 required candidates
        // geometrically: sqrt(2500) = 50 per side.
        let m = plan.service_node_of("M").unwrap();
        let t = plan.service_node_of("T").unwrap();
        assert_eq!(required[&m], 50.0);
        assert_eq!(required[&t], 50.0);
    }

    #[test]
    fn back_propagation_inverts_selection_nodes() {
        let (plan, reg) = fig3_plan();
        let required = back_propagate(&plan, &reg, 8.0).unwrap();
        let sel = plan
            .node_ids()
            .find(|id| matches!(plan.node(*id).unwrap(), PlanNode::Selection(_)))
            .unwrap();
        let w = plan.service_node_of("W").unwrap();
        // The 0.25 selection quadruples the requirement upstream.
        let sel_req = required[&sel];
        assert!((required[&w] - sel_req / 0.25).abs() < 1e-9);
    }

    #[test]
    fn annotation_rejects_invalid_plans() {
        let reg = entertainment::build_registry(1).unwrap();
        let q = running_example();
        let p = QueryPlan::new(q); // no service nodes at all
        assert!(annotate(&p, &reg, &AnnotationConfig::default()).is_err());
    }
}
