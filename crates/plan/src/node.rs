//! Plan node kinds and join strategy specifications (Fig. 1).
//!
//! The graphical syntax of Fig. 1 distinguishes: the query input and
//! output nodes; exact services (selective or proliferative, possibly
//! chunked); search services (always proliferative and chunked);
//! parallel-join nodes "marked with an indication of the join strategy
//! to be employed"; and selection nodes for predicates that no service
//! call or connection pattern can absorb.

use std::fmt;

use seco_query::{JoinPredicate, SelectionPredicate};

/// Invocation strategy of a join (§4.3): the order and frequency in
/// which the two services are called.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Invocation {
    /// Drain the `h` high-score chunks of the step-scored service first,
    /// then walk the other service (§4.3.1).
    NestedLoop,
    /// Alternate calls "diagonally", with an inter-service ratio
    /// `r = r1/r2` between calls to the first and second service
    /// (§4.3.2). `MergeScan { r1: 1, r2: 1 }` alternates evenly.
    MergeScan {
        /// Calls to the first service per round.
        r1: u32,
        /// Calls to the second service per round.
        r2: u32,
    },
}

impl Invocation {
    /// Even merge-scan (ratio 1:1).
    pub fn merge_scan_even() -> Self {
        Invocation::MergeScan { r1: 1, r2: 1 }
    }

    /// The inter-service ratio as a float (`r1/r2`), 1.0 for
    /// nested-loop (which has no meaningful ratio).
    pub fn ratio(&self) -> f64 {
        match self {
            Invocation::NestedLoop => 1.0,
            Invocation::MergeScan { r1, r2 } => *r1 as f64 / (*r2).max(1) as f64,
        }
    }
}

impl fmt::Display for Invocation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Invocation::NestedLoop => write!(f, "NL"),
            Invocation::MergeScan { r1, r2 } => write!(f, "MS(r={r1}/{r2})"),
        }
    }
}

/// Completion strategy of a join (§4.4): the order in which tiles of
/// the search space are processed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Completion {
    /// Process every tile as soon as its tuples are available (§4.4.1).
    Rectangular,
    /// Process tiles diagonally under `x·r2 + y·r1 < c` with growing `c`
    /// (§4.4.2); considers only the "most promising" half of the
    /// rectangle.
    Triangular,
}

impl Completion {
    /// The fraction of the loaded rectangle's tiles the strategy
    /// actually processes — 1 for rectangular, ½ for triangular ("only
    /// the half of the most promising combinations are considered",
    /// §5.6). Used by the annotation arithmetic.
    pub fn coverage_factor(&self) -> f64 {
        match self {
            Completion::Rectangular => 1.0,
            Completion::Triangular => 0.5,
        }
    }
}

impl fmt::Display for Completion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Completion::Rectangular => write!(f, "rect"),
            Completion::Triangular => write!(f, "tri"),
        }
    }
}

/// Strategy annotation of a parallel-join node.
#[derive(Debug, Clone, PartialEq)]
pub struct JoinSpec {
    /// Invocation strategy.
    pub invocation: Invocation,
    /// Completion strategy.
    pub completion: Completion,
    /// The join predicates this node evaluates (already oriented; the
    /// atoms on each side must be available in the joined branches).
    pub predicates: Vec<JoinPredicate>,
    /// Estimated selectivity of the predicates over a random candidate
    /// pair (e.g. 0.02 for `Shows`).
    pub selectivity: f64,
}

/// A service-invocation node.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceNode {
    /// The query atom this node answers (alias).
    pub atom: String,
    /// The service interface invoked.
    pub service: String,
    /// Fetch factor `F`: chunks fetched per input tuple (≥ 1). For
    /// unchunked exact services this must be 1 (§5.5 initialises all
    /// fetching factors to 1, "the lowest admissible value").
    pub fetches: u32,
    /// When this node is the target of a pipe join: keep only the first
    /// (best) result per invocation, as the §5.6 instantiation does for
    /// `Restaurant` ("we choose to only keep and include in the result
    /// the first (and presumably best!) restaurant found for each
    /// location").
    pub keep_first: bool,
}

impl ServiceNode {
    /// A service node with fetch factor 1.
    pub fn new(atom: impl Into<String>, service: impl Into<String>) -> Self {
        ServiceNode {
            atom: atom.into(),
            service: service.into(),
            fetches: 1,
            keep_first: false,
        }
    }

    /// Sets the fetch factor, builder-style.
    pub fn with_fetches(mut self, fetches: u32) -> Self {
        self.fetches = fetches.max(1);
        self
    }

    /// Keeps only the best result per invocation, builder-style.
    pub fn with_keep_first(mut self) -> Self {
        self.keep_first = true;
        self
    }
}

/// A selection node: predicates evaluated on the flowing tuples
/// "immediately after the service call that makes \[them\] evaluable"
/// (§3.2). Per the chapter's footnote, both `Si.atti op const` and
/// `Si.atti op Sj.attj` forms are allowed — the join form is how chain
/// topologies filter on connection predicates that no pipe absorbed
/// (e.g. `Shows` in the all-sequential Fig. 9(a) topology).
#[derive(Debug, Clone, PartialEq)]
pub struct SelectionNode {
    /// The constant-comparison predicates applied by this node.
    pub predicates: Vec<SelectionPredicate>,
    /// The join predicates applied by this node (all referenced atoms
    /// must be available in the incoming dataflow).
    pub join_predicates: Vec<JoinPredicate>,
    /// Estimated fraction of tuples passing (overrides the default
    /// per-comparator estimates when the workload knows better, e.g.
    /// 0.25 for the Fig. 2 weather condition).
    pub selectivity: f64,
}

impl SelectionNode {
    /// A selection node with the default selectivity estimate derived
    /// from the comparators.
    pub fn new(predicates: Vec<SelectionPredicate>) -> Self {
        let selectivity = seco_query::predicate::estimate_selection_selectivity(
            &predicates.iter().collect::<Vec<_>>(),
        );
        SelectionNode {
            predicates,
            join_predicates: Vec::new(),
            selectivity,
        }
    }

    /// A selection node applying join predicates as filters, with an
    /// explicit selectivity (typically the connection pattern's).
    pub fn join_filter(join_predicates: Vec<JoinPredicate>, selectivity: f64) -> Self {
        SelectionNode {
            predicates: Vec::new(),
            join_predicates,
            selectivity: selectivity.clamp(0.0, 1.0),
        }
    }

    /// Overrides the selectivity estimate.
    pub fn with_selectivity(mut self, selectivity: f64) -> Self {
        self.selectivity = selectivity.clamp(0.0, 1.0);
        self
    }
}

/// A node of the plan DAG (Fig. 1's element set).
#[derive(Debug, Clone, PartialEq)]
pub enum PlanNode {
    /// The query input: reads `INPUT` variables and starts execution
    /// with one tuple.
    Input,
    /// The query output: returns combinations to the query interface.
    Output,
    /// A service invocation (exact or search; pipe joins are chains of
    /// these).
    Service(ServiceNode),
    /// An explicit parallel-join node.
    ParallelJoin(JoinSpec),
    /// A selection node.
    Selection(SelectionNode),
}

impl PlanNode {
    /// Short label for rendering.
    pub fn label(&self) -> String {
        match self {
            PlanNode::Input => "INPUT".to_owned(),
            PlanNode::Output => "OUTPUT".to_owned(),
            PlanNode::Service(s) => {
                let mut l = format!("{}:{}", s.atom, s.service);
                if s.fetches > 1 {
                    l.push_str(&format!(" F={}", s.fetches));
                }
                if s.keep_first {
                    l.push_str(" keep-first");
                }
                l
            }
            PlanNode::ParallelJoin(j) => format!("⋈ {}/{}", j.invocation, j.completion),
            PlanNode::Selection(s) => {
                format!(
                    "σ[{} predicates]",
                    s.predicates.len() + s.join_predicates.len()
                )
            }
        }
    }

    /// The atom this node produces, if it is a service node.
    pub fn atom(&self) -> Option<&str> {
        match self {
            PlanNode::Service(s) => Some(&s.atom),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seco_model::{AttributePath, Comparator, Value};
    use seco_query::{Operand, QualifiedPath};

    #[test]
    fn invocation_ratio_and_display() {
        assert_eq!(Invocation::merge_scan_even().ratio(), 1.0);
        assert_eq!(Invocation::MergeScan { r1: 3, r2: 5 }.ratio(), 0.6);
        assert_eq!(Invocation::NestedLoop.ratio(), 1.0);
        assert_eq!(Invocation::NestedLoop.to_string(), "NL");
        assert_eq!(
            Invocation::MergeScan { r1: 3, r2: 5 }.to_string(),
            "MS(r=3/5)"
        );
        // Zero denominator is tolerated.
        assert_eq!(Invocation::MergeScan { r1: 2, r2: 0 }.ratio(), 2.0);
    }

    #[test]
    fn completion_coverage_factors() {
        assert_eq!(Completion::Rectangular.coverage_factor(), 1.0);
        assert_eq!(Completion::Triangular.coverage_factor(), 0.5);
        assert_eq!(Completion::Triangular.to_string(), "tri");
    }

    #[test]
    fn service_node_builders() {
        let n = ServiceNode::new("M", "Movie1").with_fetches(5);
        assert_eq!(n.fetches, 5);
        assert!(!n.keep_first);
        let n = ServiceNode::new("R", "Restaurant1")
            .with_fetches(0)
            .with_keep_first();
        assert_eq!(n.fetches, 1, "fetch factor is clamped to >= 1");
        assert!(n.keep_first);
    }

    #[test]
    fn selection_node_selectivity_defaults_and_overrides() {
        let p = SelectionPredicate {
            left: QualifiedPath::new("W", AttributePath::atomic("AvgTemp")),
            op: Comparator::Gt,
            right: Operand::Const(Value::Int(26)),
        };
        let n = SelectionNode::new(vec![p.clone()]);
        assert_eq!(n.selectivity, 0.5, "Gt defaults to 0.5");
        let n = SelectionNode::new(vec![p]).with_selectivity(0.25);
        assert_eq!(n.selectivity, 0.25);
    }

    #[test]
    fn labels_are_descriptive() {
        assert_eq!(PlanNode::Input.label(), "INPUT");
        let svc = PlanNode::Service(ServiceNode::new("M", "Movie1").with_fetches(5));
        assert_eq!(svc.label(), "M:Movie1 F=5");
        assert_eq!(svc.atom(), Some("M"));
        assert_eq!(PlanNode::Output.atom(), None);
    }
}
