//! Plan rendering: indented ASCII (for terminals and EXPERIMENTS.md)
//! and Graphviz DOT (for figures).

use std::fmt::Write as _;

use crate::annotate::AnnotatedPlan;
use crate::dag::{NodeId, QueryPlan};
use crate::error::PlanError;

/// Renders the plan as an indented text tree rooted at the input node,
/// one line per node, with annotations when provided. Nodes with
/// multiple successors (fan-out) repeat the successor subtree reference
/// by id instead of duplicating it.
pub fn ascii(plan: &QueryPlan, annotations: Option<&AnnotatedPlan>) -> Result<String, PlanError> {
    let order = plan.topo_order()?;
    let mut out = String::new();
    writeln!(out, "plan for: {}", plan.query).expect("writing to String cannot fail");
    for id in order {
        let node = plan.node(id)?;
        let preds = plan.predecessors(id);
        let pred_list = preds
            .iter()
            .map(|p| p.to_string())
            .collect::<Vec<_>>()
            .join(",");
        let arrow = if preds.is_empty() {
            String::new()
        } else {
            format!(" <- [{pred_list}]")
        };
        let ann = annotations
            .map(|a| {
                let an = a.annotation(id);
                format!(
                    "  (tin={:.1}, tout={:.1}, calls={:.1})",
                    an.tin, an.tout, an.calls
                )
            })
            .unwrap_or_default();
        writeln!(out, "  {id}: {}{arrow}{ann}", node.label())
            .expect("writing to String cannot fail");
    }
    Ok(out)
}

/// Renders the plan in Graphviz DOT syntax.
pub fn to_dot(plan: &QueryPlan) -> Result<String, PlanError> {
    plan.topo_order()?; // reject cyclic graphs early
    let mut out = String::from("digraph plan {\n  rankdir=LR;\n");
    for id in plan.node_ids() {
        let node = plan.node(id)?;
        let shape = match node {
            crate::node::PlanNode::Input | crate::node::PlanNode::Output => "circle",
            crate::node::PlanNode::Service(_) => "box",
            crate::node::PlanNode::ParallelJoin(_) => "diamond",
            crate::node::PlanNode::Selection(_) => "trapezium",
        };
        writeln!(
            out,
            "  {id} [label=\"{}\", shape={shape}];",
            node.label().replace('"', "'")
        )
        .expect("writing to String cannot fail");
    }
    for (f, t) in plan.edges() {
        writeln!(out, "  {f} -> {t};").expect("writing to String cannot fail");
    }
    out.push_str("}\n");
    Ok(out)
}

/// Renders one line per service node: `atom(service) F=n`, in
/// topological order — the compact form used by experiment tables.
pub fn summary_line(plan: &QueryPlan) -> Result<String, PlanError> {
    let order = plan.topo_order()?;
    let mut parts = Vec::new();
    for id in order {
        match plan.node(id)? {
            crate::node::PlanNode::Service(s) => {
                parts.push(format!("{}(F={})", s.atom, s.fetches));
            }
            crate::node::PlanNode::ParallelJoin(j) => {
                parts.push(format!("⋈{}/{}", j.invocation, j.completion));
            }
            _ => {}
        }
    }
    Ok(parts.join(" → "))
}

/// Ids of the service nodes in topological order (used by experiments
/// to print per-service columns deterministically).
pub fn service_order(plan: &QueryPlan) -> Result<Vec<NodeId>, PlanError> {
    Ok(plan
        .topo_order()?
        .into_iter()
        .filter(|id| matches!(plan.node(*id), Ok(crate::node::PlanNode::Service(_))))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::annotate::{annotate, AnnotationConfig};
    use crate::node::{PlanNode, ServiceNode};
    use seco_query::QueryBuilder;
    use seco_services::domains::entertainment;

    fn simple_plan() -> QueryPlan {
        let q = QueryBuilder::new()
            .atom("M", "Movie1")
            .select_input("M", "Genres.Genre", seco_model::Comparator::Eq, "I1")
            .select_input("M", "Language", seco_model::Comparator::Eq, "I2")
            .select_input("M", "Openings.Country", seco_model::Comparator::Eq, "I3")
            .select_input("M", "Openings.Date", seco_model::Comparator::Gt, "I4")
            .input("I1", seco_model::Value::text("comedy"))
            .input("I2", seco_model::Value::text("en"))
            .input("I3", seco_model::Value::text("country-0"))
            .input(
                "I4",
                seco_model::Value::Date(seco_model::Date::new(2009, 1, 1)),
            )
            .build()
            .unwrap();
        let mut p = QueryPlan::new(q);
        let m = p.add(PlanNode::Service(
            ServiceNode::new("M", "Movie1").with_fetches(3),
        ));
        p.connect(p.input(), m).unwrap();
        p.connect(m, p.output()).unwrap();
        p
    }

    #[test]
    fn ascii_renders_every_node() {
        let p = simple_plan();
        let txt = ascii(&p, None).unwrap();
        assert!(txt.contains("INPUT"));
        assert!(txt.contains("OUTPUT"));
        assert!(txt.contains("M:Movie1 F=3"));
    }

    #[test]
    fn ascii_includes_annotations_when_given() {
        let p = simple_plan();
        let reg = entertainment::build_registry(1).unwrap();
        let ann = annotate(&p, &reg, &AnnotationConfig::default()).unwrap();
        let txt = ascii(&p, Some(&ann)).unwrap();
        assert!(txt.contains("tout=60.0"), "3 fetches × 20 = 60: {txt}");
    }

    #[test]
    fn dot_has_nodes_and_edges() {
        let p = simple_plan();
        let dot = to_dot(&p).unwrap();
        assert!(dot.starts_with("digraph plan {"));
        assert!(dot.contains("shape=box"));
        assert!(dot.contains("n0 -> n2;"));
        assert!(dot.trim_end().ends_with('}'));
    }

    #[test]
    fn summary_line_lists_services_in_order() {
        let p = simple_plan();
        assert_eq!(summary_line(&p).unwrap(), "M(F=3)");
        assert_eq!(service_order(&p).unwrap().len(), 1);
    }
}
