//! Incremental (delta) cardinality annotation.
//!
//! Phase 3 of the optimizer perturbs exactly one fetch factor per trial
//! and re-reads the plan's expected output and cost. A full
//! [`annotate`](crate::annotate::annotate) re-validates the plan,
//! re-runs feasibility analysis, and re-derives every node — all of
//! which is invariant across trials. The [`DeltaAnnotator`] does that
//! work once, then propagates a fetch-factor change only through the
//! *downstream cone* of the changed node (the nodes reachable from it),
//! reusing every other node's annotation unchanged.
//!
//! The arithmetic is byte-for-byte the same as the full annotator: the
//! same operations in the same order on the same `f64`s, so a delta
//! propagation and a full re-annotation agree exactly (property-tested
//! in `tests/optimizer_parallel.rs`), which is what lets the parallel
//! branch-and-bound stay byte-identical to the serial one.

use std::collections::BTreeMap;

use seco_query::feasibility::analyze;
use seco_services::ServiceRegistry;

use crate::annotate::{pipe_selectivity, AnnotatedPlan, Annotation, AnnotationConfig};
use crate::dag::{NodeId, QueryPlan};
use crate::error::PlanError;
use crate::node::PlanNode;

/// Everything the annotation arithmetic needs about one node, resolved
/// once at construction so propagation touches no registry, query, or
/// feasibility state.
#[derive(Debug, Clone)]
enum NodeParams {
    Input,
    Output,
    Selection {
        selectivity: f64,
    },
    Join {
        selectivity: f64,
        coverage: f64,
    },
    Service {
        service: String,
        fetches: u32,
        keep_first: bool,
        chunked: bool,
        chunk_size: f64,
        avg_cardinality: f64,
        pipe_selectivity: f64,
    },
}

/// An annotated plan that can be re-annotated incrementally after a
/// fetch-factor change, recomputing only the changed node's downstream
/// cone.
#[derive(Debug, Clone)]
pub struct DeltaAnnotator {
    params: Vec<NodeParams>,
    preds: Vec<Vec<usize>>,
    succs: Vec<Vec<usize>>,
    /// Topological order of node indices (same order the full annotator
    /// walks).
    topo: Vec<usize>,
    /// Node index → position in `topo` (cone nodes are recomputed in
    /// this order).
    topo_pos: Vec<usize>,
    output: usize,
    cap_by_total: bool,
    ann: AnnotatedPlan,
    /// Node annotations recomputed by delta propagations (observable
    /// work; a full annotation recomputes `len()` nodes).
    nodes_recomputed: usize,
    /// Delta propagations performed.
    propagations: usize,
}

impl DeltaAnnotator {
    /// Builds the annotator: one full annotation pass plus the cached
    /// per-node parameters. Equivalent to
    /// [`annotate`](crate::annotate::annotate) at the plan's current
    /// fetch vector.
    pub fn new(
        plan: &QueryPlan,
        registry: &ServiceRegistry,
        config: &AnnotationConfig,
    ) -> Result<Self, PlanError> {
        plan.validate()?;
        let report = analyze(&plan.query, registry)?;
        let n = plan.len();
        let mut params = Vec::with_capacity(n);
        for id in plan.node_ids() {
            let p = match plan.node(id)? {
                PlanNode::Input => NodeParams::Input,
                PlanNode::Output => NodeParams::Output,
                PlanNode::Selection(sel) => NodeParams::Selection {
                    selectivity: sel.selectivity,
                },
                PlanNode::ParallelJoin(spec) => NodeParams::Join {
                    selectivity: spec.selectivity,
                    coverage: spec.completion.coverage_factor(),
                },
                PlanNode::Service(node) => {
                    let iface = registry
                        .interface(&node.service)
                        .map_err(|e| PlanError::Query(e.into()))?;
                    NodeParams::Service {
                        service: node.service.clone(),
                        fetches: node.fetches,
                        keep_first: node.keep_first,
                        chunked: iface.kind.is_chunked(),
                        chunk_size: iface.stats.chunk_size as f64,
                        avg_cardinality: iface.stats.avg_cardinality,
                        pipe_selectivity: pipe_selectivity(plan, registry, &report, &node.atom)?,
                    }
                }
            };
            params.push(p);
        }
        let preds: Vec<Vec<usize>> = plan
            .node_ids()
            .map(|id| plan.predecessors(id).iter().map(|p| p.0).collect())
            .collect();
        let succs: Vec<Vec<usize>> = plan
            .node_ids()
            .map(|id| plan.successors(id).iter().map(|s| s.0).collect())
            .collect();
        let topo: Vec<usize> = plan.topo_order()?.iter().map(|id| id.0).collect();
        let mut topo_pos = vec![0usize; n];
        for (pos, &node) in topo.iter().enumerate() {
            topo_pos[node] = pos;
        }
        let mut out = DeltaAnnotator {
            params,
            preds,
            succs,
            topo,
            topo_pos,
            output: plan.output().0,
            cap_by_total: config.cap_by_total,
            ann: AnnotatedPlan::from_parts(vec![Annotation::default(); n], BTreeMap::new(), 0.0),
            nodes_recomputed: 0,
            propagations: 0,
        };
        out.recompute_all();
        Ok(out)
    }

    /// The current annotation (kept consistent with every applied
    /// fetch-factor change).
    pub fn annotated(&self) -> &AnnotatedPlan {
        &self.ann
    }

    /// A detached copy of the current annotation.
    pub fn to_annotated(&self) -> AnnotatedPlan {
        self.ann.clone()
    }

    /// Expected tuples delivered to the output node.
    pub fn output_tuples(&self) -> f64 {
        self.ann.output_tuples
    }

    /// The fetch factor of a service node, `None` for other kinds.
    pub fn fetches(&self, id: NodeId) -> Option<u32> {
        match self.params.get(id.0) {
            Some(NodeParams::Service { fetches, .. }) => Some(*fetches),
            _ => None,
        }
    }

    /// The fetch factors of every service node, in node-id order (the
    /// memoization key of a trial state).
    pub fn fetch_vector(&self) -> Vec<u32> {
        self.params
            .iter()
            .filter_map(|p| match p {
                NodeParams::Service { fetches, .. } => Some(*fetches),
                _ => None,
            })
            .collect()
    }

    /// Node annotations recomputed by delta propagations so far.
    pub fn nodes_recomputed(&self) -> usize {
        self.nodes_recomputed
    }

    /// Delta propagations performed so far.
    pub fn propagations(&self) -> usize {
        self.propagations
    }

    /// Sets a service node's fetch factor and re-annotates only its
    /// downstream cone. Errors when `id` is not a service node.
    pub fn set_fetches(&mut self, id: NodeId, fetches: u32) -> Result<(), PlanError> {
        match self.params.get_mut(id.0) {
            Some(NodeParams::Service { fetches: f, .. }) => *f = fetches,
            Some(_) | None => {
                return Err(PlanError::Invalid {
                    detail: format!("{id} is not a service node"),
                })
            }
        }
        self.propagate_from(id.0);
        Ok(())
    }

    /// Recomputes every node (construction and testing).
    fn recompute_all(&mut self) {
        for i in 0..self.topo.len() {
            let node = self.topo[i];
            let ann = self.compute_node(node);
            self.ann.set_annotation(node, ann);
        }
        self.resum();
    }

    /// Re-derives `calls_by_service` and `output_tuples` from the node
    /// annotations, accumulating in topological order — the exact
    /// summation order (and therefore the exact `f64` results) of the
    /// full annotator.
    fn resum(&mut self) {
        let mut calls: BTreeMap<String, f64> = BTreeMap::new();
        for &node in &self.topo {
            if let NodeParams::Service { service, .. } = &self.params[node] {
                *calls.entry(service.clone()).or_insert(0.0) +=
                    self.ann.annotation(NodeId(node)).calls;
            }
        }
        self.ann.set_calls_by_service(calls);
        let out = self.ann.annotation(NodeId(self.output)).tout;
        self.ann.set_output_tuples(out);
    }

    /// Re-annotates the downstream cone of `start` (inclusive), in
    /// topological order, adjusting `calls_by_service` by the per-node
    /// call deltas.
    fn propagate_from(&mut self, start: usize) {
        self.propagations += 1;
        // Collect the cone: every node reachable from `start`.
        let mut in_cone = vec![false; self.params.len()];
        let mut stack = vec![start];
        while let Some(n) = stack.pop() {
            if in_cone[n] {
                continue;
            }
            in_cone[n] = true;
            stack.extend(self.succs[n].iter().copied());
        }
        // Recompute cone members in global topological order so every
        // predecessor (in or out of the cone) is final when read.
        let mut cone: Vec<usize> = (0..self.params.len()).filter(|&n| in_cone[n]).collect();
        cone.sort_by_key(|&n| self.topo_pos[n]);
        for node in cone {
            let new = self.compute_node(node);
            self.nodes_recomputed += 1;
            self.ann.set_annotation(node, new);
        }
        self.resum();
    }

    /// One node's annotation from its predecessors' — the exact
    /// arithmetic of the full annotator, in the same operation order.
    fn compute_node(&self, node: usize) -> Annotation {
        let preds = &self.preds[node];
        match &self.params[node] {
            NodeParams::Input => Annotation {
                tin: 1.0,
                tout: 1.0,
                calls: 0.0,
            },
            NodeParams::Output => {
                let tin = self.ann.annotation(NodeId(preds[0])).tout;
                Annotation {
                    tin,
                    tout: tin,
                    calls: 0.0,
                }
            }
            NodeParams::Selection { selectivity } => {
                let tin = self.ann.annotation(NodeId(preds[0])).tout;
                Annotation {
                    tin,
                    tout: tin * selectivity,
                    calls: 0.0,
                }
            }
            NodeParams::Join {
                selectivity,
                coverage,
            } => {
                let tl = self.ann.annotation(NodeId(preds[0])).tout;
                let tr = self.ann.annotation(NodeId(preds[1])).tout;
                let candidates = tl * tr * coverage;
                Annotation {
                    tin: candidates,
                    tout: candidates * selectivity,
                    calls: 0.0,
                }
            }
            NodeParams::Service {
                fetches,
                keep_first,
                chunked,
                chunk_size,
                avg_cardinality,
                pipe_selectivity,
                ..
            } => {
                let tin = self.ann.annotation(NodeId(preds[0])).tout;
                let calls = tin * *fetches as f64;
                let per_input = if *keep_first {
                    1.0
                } else if *chunked {
                    let fetched = chunk_size * *fetches as f64;
                    if self.cap_by_total {
                        fetched.min(avg_cardinality.max(1.0))
                    } else {
                        fetched
                    }
                } else {
                    *avg_cardinality
                };
                Annotation {
                    tin,
                    tout: tin * pipe_selectivity * per_input,
                    calls,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::annotate::annotate;
    use crate::node::{PlanNode, ServiceNode};
    use seco_query::builder::running_example;
    use seco_services::domains::entertainment;

    /// The Fig. 10 plan from the annotate tests.
    fn fig10() -> (QueryPlan, ServiceRegistry) {
        let reg = entertainment::build_registry(1).unwrap();
        (crate::annotate::tests::fig10_plan(), reg)
    }

    fn assert_same(a: &AnnotatedPlan, b: &AnnotatedPlan, plan: &QueryPlan) {
        for id in plan.node_ids() {
            let (x, y) = (a.annotation(id), b.annotation(id));
            assert_eq!(x.tin.to_bits(), y.tin.to_bits(), "{id} tin");
            assert_eq!(x.tout.to_bits(), y.tout.to_bits(), "{id} tout");
            assert_eq!(x.calls.to_bits(), y.calls.to_bits(), "{id} calls");
        }
        assert_eq!(a.output_tuples.to_bits(), b.output_tuples.to_bits());
        assert_eq!(a.calls_by_service, b.calls_by_service);
    }

    #[test]
    fn construction_matches_full_annotation() {
        let (plan, reg) = fig10();
        let config = AnnotationConfig::default();
        let full = annotate(&plan, &reg, &config).unwrap();
        let delta = DeltaAnnotator::new(&plan, &reg, &config).unwrap();
        assert_same(&full, delta.annotated(), &plan);
    }

    #[test]
    fn single_change_matches_full_reannotation_bit_for_bit() {
        let (mut plan, reg) = fig10();
        let config = AnnotationConfig::default();
        let mut delta = DeltaAnnotator::new(&plan, &reg, &config).unwrap();
        let m = plan.service_node_of("M").unwrap();
        for f in [2u32, 7, 1, 3] {
            delta.set_fetches(m, f).unwrap();
            if let PlanNode::Service(s) = plan.node_mut(m).unwrap() {
                s.fetches = f;
            }
            let full = annotate(&plan, &reg, &config).unwrap();
            assert_same(&full, delta.annotated(), &plan);
        }
    }

    #[test]
    fn propagation_touches_only_the_downstream_cone() {
        let (plan, reg) = fig10();
        let config = AnnotationConfig::default();
        let mut delta = DeltaAnnotator::new(&plan, &reg, &config).unwrap();
        // The Theatre branch is upstream-independent of Movie: changing
        // Movie's factor must not recompute Theatre.
        let m = plan.service_node_of("M").unwrap();
        let before = delta.nodes_recomputed();
        delta.set_fetches(m, 4).unwrap();
        let touched = delta.nodes_recomputed() - before;
        assert!(
            touched < plan.len(),
            "cone ({touched} nodes) must be smaller than the plan ({})",
            plan.len()
        );
        // M, join, R, output — but neither Input nor T.
        assert_eq!(touched, 4, "M → join → R → output");
    }

    #[test]
    fn non_service_nodes_are_rejected() {
        let (plan, reg) = fig10();
        let mut delta = DeltaAnnotator::new(&plan, &reg, &AnnotationConfig::default()).unwrap();
        assert!(delta.set_fetches(plan.input(), 2).is_err());
        assert!(delta.set_fetches(plan.output(), 2).is_err());
    }

    #[test]
    fn fetch_vector_tracks_changes() {
        let reg = entertainment::build_registry(1).unwrap();
        let q = running_example();
        let mut p = QueryPlan::new(q);
        let m = p.add(PlanNode::Service(ServiceNode::new("M", "Movie1")));
        let t = p.add(PlanNode::Service(ServiceNode::new("T", "Theatre1")));
        let r = p.add(PlanNode::Service(
            ServiceNode::new("R", "Restaurant1").with_keep_first(),
        ));
        p.connect(p.input(), m).unwrap();
        p.connect(m, t).unwrap();
        p.connect(t, r).unwrap();
        p.connect(r, p.output()).unwrap();
        let mut delta = DeltaAnnotator::new(&p, &reg, &AnnotationConfig::default()).unwrap();
        assert_eq!(delta.fetch_vector(), vec![1, 1, 1]);
        delta.set_fetches(t, 3).unwrap();
        assert_eq!(delta.fetch_vector(), vec![1, 3, 1]);
        assert_eq!(delta.fetches(t), Some(3));
        assert_eq!(delta.propagations(), 1);
    }
}
