//! Error type of the plan layer.

use std::fmt;

use seco_model::ModelError;
use seco_query::QueryError;

/// Errors raised while building, validating, or annotating plans.
#[derive(Debug, Clone, PartialEq)]
pub enum PlanError {
    /// Underlying model error.
    Model(ModelError),
    /// Underlying query error.
    Query(QueryError),
    /// A node id was out of range.
    UnknownNode(usize),
    /// The plan failed structural validation.
    Invalid {
        /// What is wrong with the structure.
        detail: String,
    },
    /// The plan contains a cycle (and is therefore not a DAG).
    Cyclic,
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::Model(e) => write!(f, "model error: {e}"),
            PlanError::Query(e) => write!(f, "query error: {e}"),
            PlanError::UnknownNode(id) => write!(f, "unknown plan node #{id}"),
            PlanError::Invalid { detail } => write!(f, "invalid plan: {detail}"),
            PlanError::Cyclic => write!(f, "plan graph contains a cycle"),
        }
    }
}

impl std::error::Error for PlanError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PlanError::Model(e) => Some(e),
            PlanError::Query(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ModelError> for PlanError {
    fn from(e: ModelError) -> Self {
        PlanError::Model(e)
    }
}

impl From<QueryError> for PlanError {
    fn from(e: QueryError) -> Self {
        PlanError::Query(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_sources() {
        assert!(PlanError::Cyclic.to_string().contains("cycle"));
        assert!(PlanError::UnknownNode(3).to_string().contains("#3"));
        let e: PlanError = ModelError::UnknownName("x".into()).into();
        assert!(std::error::Error::source(&e).is_some());
        let e: PlanError = QueryError::UnknownAtom("a".into()).into();
        assert!(std::error::Error::source(&e).is_some());
        assert!(std::error::Error::source(&PlanError::Cyclic).is_none());
    }
}
