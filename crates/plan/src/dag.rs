//! The plan DAG: nodes, dataflow arcs, validation, traversal.

use std::collections::BTreeSet;
use std::fmt;

use seco_query::Query;

use crate::error::PlanError;
use crate::node::PlanNode;

/// Index of a node within a [`QueryPlan`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub usize);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A query plan: a DAG over [`PlanNode`]s with the query it implements.
///
/// Invariants (checked by [`QueryPlan::validate`]):
/// * exactly one `Input` and one `Output` node;
/// * the graph is acyclic and every node lies on a path from input to
///   output;
/// * every query atom appears in exactly one service node;
/// * parallel-join nodes have exactly two predecessors, service and
///   selection nodes exactly one, output exactly one, input none.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryPlan {
    /// The query this plan implements.
    pub query: Query,
    nodes: Vec<PlanNode>,
    edges: Vec<(NodeId, NodeId)>,
}

impl QueryPlan {
    /// Starts a plan containing only the input and output nodes.
    pub fn new(query: Query) -> Self {
        QueryPlan {
            query,
            nodes: vec![PlanNode::Input, PlanNode::Output],
            edges: Vec::new(),
        }
    }

    /// The designated input node.
    pub fn input(&self) -> NodeId {
        NodeId(0)
    }

    /// The designated output node.
    pub fn output(&self) -> NodeId {
        NodeId(1)
    }

    /// Adds a node, returning its id.
    pub fn add(&mut self, node: PlanNode) -> NodeId {
        self.nodes.push(node);
        NodeId(self.nodes.len() - 1)
    }

    /// Adds a dataflow arc `from → to`.
    pub fn connect(&mut self, from: NodeId, to: NodeId) -> Result<(), PlanError> {
        if from.0 >= self.nodes.len() {
            return Err(PlanError::UnknownNode(from.0));
        }
        if to.0 >= self.nodes.len() {
            return Err(PlanError::UnknownNode(to.0));
        }
        if !self.edges.contains(&(from, to)) {
            self.edges.push((from, to));
        }
        Ok(())
    }

    /// The node payload.
    pub fn node(&self, id: NodeId) -> Result<&PlanNode, PlanError> {
        self.nodes.get(id.0).ok_or(PlanError::UnknownNode(id.0))
    }

    /// Mutable node payload.
    pub fn node_mut(&mut self, id: NodeId) -> Result<&mut PlanNode, PlanError> {
        self.nodes.get_mut(id.0).ok_or(PlanError::UnknownNode(id.0))
    }

    /// Number of nodes (including input/output).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Always false: a plan has at least its input and output nodes.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// All node ids.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len()).map(NodeId)
    }

    /// All arcs.
    pub fn edges(&self) -> &[(NodeId, NodeId)] {
        &self.edges
    }

    /// Direct predecessors of a node, in insertion order.
    pub fn predecessors(&self, id: NodeId) -> Vec<NodeId> {
        self.edges
            .iter()
            .filter(|(_, t)| *t == id)
            .map(|(f, _)| *f)
            .collect()
    }

    /// Direct successors of a node, in insertion order.
    pub fn successors(&self, id: NodeId) -> Vec<NodeId> {
        self.edges
            .iter()
            .filter(|(f, _)| *f == id)
            .map(|(_, t)| *t)
            .collect()
    }

    /// The service node producing a given atom, if present.
    pub fn service_node_of(&self, atom: &str) -> Option<NodeId> {
        self.node_ids()
            .find(|id| matches!(&self.nodes[id.0], PlanNode::Service(s) if s.atom == atom))
    }

    /// The set of atoms available (already joined into the dataflow) at
    /// a node's output: every service atom on some path from the input
    /// to this node.
    pub fn atoms_at(&self, id: NodeId) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        let mut stack = vec![id];
        let mut seen = BTreeSet::new();
        while let Some(n) = stack.pop() {
            if !seen.insert(n) {
                continue;
            }
            if let PlanNode::Service(s) = &self.nodes[n.0] {
                out.insert(s.atom.clone());
            }
            stack.extend(self.predecessors(n));
        }
        out
    }

    /// A canonical structural key of the fully specified plan: node
    /// kinds, atoms, services, fetch factors, keep-first flags, and
    /// join strategies, rendered from the output node with the branch
    /// subkeys of every parallel join sorted. Two plans that differ
    /// only in node insertion order map to the same key, so the key is
    /// a schedule-independent tie-breaker for equal-cost plans in the
    /// parallel branch-and-bound.
    pub fn canonical_key(&self) -> String {
        fn key_of(plan: &QueryPlan, id: NodeId) -> String {
            match plan.node(id) {
                Ok(PlanNode::Input) => "I".to_owned(),
                Ok(PlanNode::Output) => {
                    let preds = plan.predecessors(id);
                    format!("O({})", key_of(plan, preds[0]))
                }
                Ok(PlanNode::Service(s)) => {
                    let preds = plan.predecessors(id);
                    format!(
                        "S[{}={},F={},kf={}]({})",
                        s.atom,
                        s.service,
                        s.fetches,
                        u8::from(s.keep_first),
                        key_of(plan, preds[0])
                    )
                }
                Ok(PlanNode::Selection(s)) => {
                    let preds = plan.predecessors(id);
                    let mut clauses: Vec<String> = s
                        .predicates
                        .iter()
                        .map(|p| p.to_string())
                        .chain(s.join_predicates.iter().map(|p| p.to_string()))
                        .collect();
                    clauses.sort();
                    format!(
                        "F[{};sel={:x}]({})",
                        clauses.join(","),
                        s.selectivity.to_bits(),
                        key_of(plan, preds[0])
                    )
                }
                Ok(PlanNode::ParallelJoin(spec)) => {
                    let preds = plan.predecessors(id);
                    let mut subs: Vec<String> = preds.iter().map(|p| key_of(plan, *p)).collect();
                    subs.sort();
                    let mut clauses: Vec<String> =
                        spec.predicates.iter().map(|p| p.to_string()).collect();
                    clauses.sort();
                    format!(
                        "J[{},{},{};sel={:x}]({})",
                        spec.invocation,
                        spec.completion,
                        clauses.join(","),
                        spec.selectivity.to_bits(),
                        subs.join("|")
                    )
                }
                Err(_) => "?".to_owned(),
            }
        }
        key_of(self, self.output())
    }

    /// Topological order (input first). Errors on cycles.
    pub fn topo_order(&self) -> Result<Vec<NodeId>, PlanError> {
        let n = self.nodes.len();
        let mut indeg = vec![0usize; n];
        for (_, t) in &self.edges {
            indeg[t.0] += 1;
        }
        let mut queue: Vec<NodeId> = (0..n).filter(|i| indeg[*i] == 0).map(NodeId).collect();
        let mut order = Vec::with_capacity(n);
        while let Some(id) = queue.pop() {
            order.push(id);
            for s in self.successors(id) {
                indeg[s.0] -= 1;
                if indeg[s.0] == 0 {
                    queue.push(s);
                }
            }
        }
        if order.len() != n {
            return Err(PlanError::Cyclic);
        }
        Ok(order)
    }

    /// Structural validation (see the type-level invariants).
    pub fn validate(&self) -> Result<(), PlanError> {
        let invalid = |detail: String| Err(PlanError::Invalid { detail });
        // Arity of each node kind.
        for id in self.node_ids() {
            let preds = self.predecessors(id).len();
            let succs = self.successors(id).len();
            match &self.nodes[id.0] {
                PlanNode::Input => {
                    if preds != 0 {
                        return invalid(format!("input node has {preds} predecessors"));
                    }
                    if succs == 0 {
                        return invalid("input node has no successors".into());
                    }
                }
                PlanNode::Output => {
                    if succs != 0 {
                        return invalid(format!("output node has {succs} successors"));
                    }
                    if preds != 1 {
                        return invalid(format!("output node has {preds} predecessors, wants 1"));
                    }
                }
                PlanNode::Service(s) => {
                    if preds != 1 {
                        return invalid(format!(
                            "service node `{}` has {preds} predecessors, wants 1",
                            s.atom
                        ));
                    }
                    if succs == 0 {
                        return invalid(format!("service node `{}` is a dead end", s.atom));
                    }
                }
                PlanNode::ParallelJoin(_) => {
                    if preds != 2 {
                        return invalid(format!(
                            "parallel join {id} has {preds} predecessors, wants 2"
                        ));
                    }
                    if succs == 0 {
                        return invalid(format!("parallel join {id} is a dead end"));
                    }
                }
                PlanNode::Selection(_) => {
                    if preds != 1 {
                        return invalid(format!(
                            "selection node {id} has {preds} predecessors, wants 1"
                        ));
                    }
                    if succs == 0 {
                        return invalid(format!("selection node {id} is a dead end"));
                    }
                }
            }
        }
        // Acyclicity.
        self.topo_order()?;
        // Each query atom appears exactly once.
        for atom in &self.query.atoms {
            let count = self
                .node_ids()
                .filter(
                    |id| matches!(&self.nodes[id.0], PlanNode::Service(s) if s.atom == atom.alias),
                )
                .count();
            if count != 1 {
                return invalid(format!(
                    "atom `{}` appears in {count} service nodes, wants 1",
                    atom.alias
                ));
            }
        }
        // Parallel-join predicates must span the two input branches.
        for id in self.node_ids() {
            if let PlanNode::ParallelJoin(spec) = &self.nodes[id.0] {
                let preds = self.predecessors(id);
                let left = self.atoms_at(preds[0]);
                let right = self.atoms_at(preds[1]);
                // Branches may share a common ancestry (the Fig. 2 plan
                // forks after Weather and re-joins Flight and Hotel),
                // but each must contribute something of its own.
                if left.is_subset(&right) || right.is_subset(&left) {
                    return invalid(format!(
                        "parallel join {id} has a branch contributing no new atoms"
                    ));
                }
                for p in &spec.predicates {
                    let la = &p.left.atom;
                    let ra = &p.right.atom;
                    let spans = (left.contains(la) && right.contains(ra))
                        || (left.contains(ra) && right.contains(la));
                    if !spans {
                        return invalid(format!(
                            "join predicate `{p}` does not span the branches of {id}"
                        ));
                    }
                }
            }
        }
        Ok(())
    }

    /// The number of search/exact service nodes.
    pub fn service_count(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| matches!(n, PlanNode::Service(_)))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::{Completion, Invocation, JoinSpec, ServiceNode};
    use seco_query::QueryBuilder;

    fn two_atom_query() -> Query {
        QueryBuilder::new()
            .atom("A", "SvcA")
            .atom("B", "SvcB")
            .build()
            .unwrap()
    }

    /// input -> A -> B -> output (pipe chain).
    fn chain_plan() -> QueryPlan {
        let mut p = QueryPlan::new(two_atom_query());
        let a = p.add(PlanNode::Service(ServiceNode::new("A", "SvcA")));
        let b = p.add(PlanNode::Service(ServiceNode::new("B", "SvcB")));
        p.connect(p.input(), a).unwrap();
        p.connect(a, b).unwrap();
        p.connect(b, p.output()).unwrap();
        p
    }

    /// input -> {A, B} -> join -> output.
    fn parallel_plan() -> QueryPlan {
        let mut p = QueryPlan::new(two_atom_query());
        let a = p.add(PlanNode::Service(ServiceNode::new("A", "SvcA")));
        let b = p.add(PlanNode::Service(ServiceNode::new("B", "SvcB")));
        let j = p.add(PlanNode::ParallelJoin(JoinSpec {
            invocation: Invocation::merge_scan_even(),
            completion: Completion::Rectangular,
            predicates: vec![],
            selectivity: 0.1,
        }));
        p.connect(p.input(), a).unwrap();
        p.connect(p.input(), b).unwrap();
        p.connect(a, j).unwrap();
        p.connect(b, j).unwrap();
        p.connect(j, p.output()).unwrap();
        p
    }

    #[test]
    fn chain_plan_validates() {
        let p = chain_plan();
        assert!(p.validate().is_ok());
        assert_eq!(p.service_count(), 2);
        assert_eq!(p.predecessors(p.output()).len(), 1);
    }

    #[test]
    fn parallel_plan_validates() {
        let p = parallel_plan();
        assert!(p.validate().is_ok());
        let j = p
            .node_ids()
            .find(|id| matches!(p.node(*id).unwrap(), PlanNode::ParallelJoin(_)))
            .unwrap();
        assert_eq!(p.predecessors(j).len(), 2);
        let atoms = p.atoms_at(j);
        assert!(atoms.contains("A") && atoms.contains("B"));
    }

    #[test]
    fn topo_order_is_consistent() {
        let p = chain_plan();
        let order = p.topo_order().unwrap();
        let pos = |id: NodeId| order.iter().position(|x| *x == id).unwrap();
        for (f, t) in p.edges() {
            assert!(pos(*f) < pos(*t), "edge {f}->{t} violates topo order");
        }
    }

    #[test]
    fn cycles_are_detected() {
        let mut p = chain_plan();
        // a -> b exists; add b -> a.
        let a = p.service_node_of("A").unwrap();
        let b = p.service_node_of("B").unwrap();
        p.connect(b, a).unwrap();
        assert_eq!(p.topo_order().unwrap_err(), PlanError::Cyclic);
        assert!(p.validate().is_err());
    }

    #[test]
    fn missing_atom_fails_validation() {
        let mut p = QueryPlan::new(two_atom_query());
        let a = p.add(PlanNode::Service(ServiceNode::new("A", "SvcA")));
        p.connect(p.input(), a).unwrap();
        p.connect(a, p.output()).unwrap();
        let err = p.validate().unwrap_err();
        assert!(matches!(err, PlanError::Invalid { detail } if detail.contains("`B`")));
    }

    #[test]
    fn dangling_service_fails_validation() {
        let mut p = chain_plan();
        // Orphan service node with no predecessor.
        let c = p.add(PlanNode::Service(ServiceNode::new("C", "SvcC")));
        p.connect(c, p.output()).unwrap();
        assert!(p.validate().is_err());
    }

    #[test]
    fn join_with_one_input_fails_validation() {
        let mut p = QueryPlan::new(two_atom_query());
        let a = p.add(PlanNode::Service(ServiceNode::new("A", "SvcA")));
        let b = p.add(PlanNode::Service(ServiceNode::new("B", "SvcB")));
        let j = p.add(PlanNode::ParallelJoin(JoinSpec {
            invocation: Invocation::NestedLoop,
            completion: Completion::Rectangular,
            predicates: vec![],
            selectivity: 1.0,
        }));
        p.connect(p.input(), a).unwrap();
        p.connect(a, b).unwrap();
        p.connect(b, j).unwrap();
        p.connect(j, p.output()).unwrap();
        let err = p.validate().unwrap_err();
        assert!(matches!(err, PlanError::Invalid { detail } if detail.contains("wants 2")));
    }

    #[test]
    fn connect_rejects_unknown_nodes() {
        let mut p = chain_plan();
        assert!(p.connect(NodeId(99), p.output()).is_err());
        assert!(p.connect(p.input(), NodeId(99)).is_err());
        assert!(p.node(NodeId(99)).is_err());
    }

    #[test]
    fn duplicate_edges_are_ignored() {
        let mut p = chain_plan();
        let a = p.service_node_of("A").unwrap();
        let n = p.edges().len();
        p.connect(p.input(), a).unwrap();
        assert_eq!(p.edges().len(), n);
    }
}
