//! # seco-services — the simulated Web-service substrate
//!
//! The chapter optimizes and executes queries over remote Web services
//! (exact and search). This crate is the substitute substrate: it
//! provides the *service-side* of the system — invocable services with
//! access patterns, chunked result delivery, ranked output, latency and
//! per-call cost — entirely in-process and deterministic, so that every
//! experiment in EXPERIMENTS.md is reproducible bit-for-bit.
//!
//! Two service implementations are provided:
//!
//! * [`synthetic::SyntheticService`] — generates results on the fly from
//!   a seed, the input bindings, and per-attribute *value domains*
//!   (shared domains between services make equality joins match with a
//!   controlled probability, which is how the chapter's selectivity
//!   estimates, e.g. `Shows` = 2%, are realised);
//! * [`table::TableService`] — serves an explicit in-memory table /
//!   ranked list, used by the semantics oracle and the unit tests that
//!   reproduce the chapter's Q1/Q2 examples exactly.
//!
//! Invocations go through [`invocation::Request`] /
//! [`invocation::ChunkResponse`]; a [`recorder::CallRecorder`] decorator
//! counts request-responses, fetched chunks, transferred bytes, and
//! virtual elapsed time — exactly the observables the §5.1 cost metrics
//! are defined over. The [`registry::ServiceRegistry`] holds marts,
//! interfaces, connection patterns, and the invocable services; the
//! [`domains`] module registers the two ready-made scenarios of the
//! chapter (the Movie/Theatre/Restaurant running example and the
//! Conference/Weather/Flight/Hotel plan of Fig. 2).

//! Resilience lives in [`resilience`]: a [`resilience::ServiceClient`]
//! decorates any service with per-call deadlines, seeded
//! retry-with-backoff, and a circuit breaker, while
//! [`synthetic::FaultProfile`] injects deterministic faults to test
//! against.

pub mod cache;
pub mod domains;
pub mod error;
pub mod invocation;
pub mod latency;
pub mod opaque;
pub mod prefetch;
pub mod recorder;
pub mod registry;
pub mod resilience;
pub mod stats_accumulator;
pub mod synthetic;
pub mod table;
pub mod wire;

pub use cache::{CachingService, RequestKey};
pub use error::ServiceError;
pub use invocation::{ChunkResponse, Request, Service};
pub use latency::{LatencyModel, VirtualClock};
pub use opaque::{OpaqueRanking, PositionScored};
pub use prefetch::Prefetcher;
pub use recorder::{CallRecorder, CallStats};
pub use registry::ServiceRegistry;
pub use resilience::{ClientConfig, ServiceClient, ServiceClientBuilder};
pub use stats_accumulator::{
    drift_ratio, DeviationPolicy, JoinObservation, MisdeclaredService, ObservedCardinality,
    ServiceDrift, StatsAccumulator,
};
pub use synthetic::{DomainMap, FaultProfile, SyntheticService, ValueDomain};
pub use table::TableService;

/// Result alias for service-layer operations.
pub type Result<T> = std::result::Result<T, ServiceError>;
