//! The service registry: marts, interfaces, connection patterns, and
//! invocable service instances.
//!
//! Queries are written against names (`Movie1`, `Shows`, …); the
//! registry resolves them. Every registered service is automatically
//! wrapped in a [`CallRecorder`] so cost observables are available for
//! any execution without further plumbing.

use std::collections::BTreeMap;
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};

use seco_model::{ConnectionPattern, ServiceInterface, ServiceMart};

use crate::error::ServiceError;
use crate::invocation::Service;
use crate::recorder::{CallRecorder, CallStats};
use crate::stats_accumulator::{drift_ratio, DeviationPolicy, JoinObservation, ServiceDrift};

/// Registry of everything invocable and joinable.
#[derive(Default)]
pub struct ServiceRegistry {
    marts: BTreeMap<String, ServiceMart>,
    services: BTreeMap<String, Arc<CallRecorder>>,
    patterns: BTreeMap<String, ConnectionPattern>,
    /// Observed pair/match counts per connection pattern, fed by join
    /// stages during execution.
    join_observations: Mutex<BTreeMap<String, JoinObservation>>,
    /// Promoted patterns carrying observed selectivities (same leak
    /// discipline as `CallRecorder::promote_stats`: promotions are rare
    /// and each rolls the stats epoch).
    promoted_patterns: RwLock<BTreeMap<String, &'static ConnectionPattern>>,
}

impl ServiceRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a service implementation under its interface name,
    /// creating (or extending) its mart entry.
    pub fn register_service(&mut self, service: Arc<dyn Service>) -> Result<(), ServiceError> {
        let iface = service.interface().clone();
        if self.services.contains_key(&iface.name) {
            return Err(ServiceError::Duplicate(iface.name.clone()));
        }
        let mart = self
            .marts
            .entry(iface.mart.clone())
            .or_insert_with(|| ServiceMart::new(iface.mart.clone()));
        mart.interfaces.push(iface.name.clone());
        self.services
            .insert(iface.name.clone(), CallRecorder::new(service));
        Ok(())
    }

    /// Registers a connection pattern.
    pub fn register_pattern(&mut self, pattern: ConnectionPattern) -> Result<(), ServiceError> {
        if self.patterns.contains_key(&pattern.name) {
            return Err(ServiceError::Duplicate(pattern.name.clone()));
        }
        self.patterns.insert(pattern.name.clone(), pattern);
        Ok(())
    }

    /// Looks up an invocable service (wrapped in its recorder).
    pub fn service(&self, name: &str) -> Result<Arc<CallRecorder>, ServiceError> {
        self.services
            .get(name)
            .cloned()
            .ok_or_else(|| ServiceError::UnknownService(name.into()))
    }

    /// Looks up a service interface (the adorned schema and statistics).
    pub fn interface(&self, name: &str) -> Result<&ServiceInterface, ServiceError> {
        self.services
            .get(name)
            .map(|s| s.interface())
            .ok_or_else(|| ServiceError::UnknownService(name.into()))
    }

    /// Looks up a connection pattern (the *effective* one: declared
    /// selectivity until a promotion, observed selectivity after).
    pub fn pattern(&self, name: &str) -> Result<&ConnectionPattern, ServiceError> {
        if let Some(promoted) = self.promoted_patterns.read().get(name) {
            return Ok(promoted);
        }
        self.patterns
            .get(name)
            .ok_or_else(|| ServiceError::UnknownPattern(name.into()))
    }

    /// Looks up the declared (registration-time) connection pattern,
    /// regardless of any promotion.
    pub fn declared_pattern(&self, name: &str) -> Result<&ConnectionPattern, ServiceError> {
        self.patterns
            .get(name)
            .ok_or_else(|| ServiceError::UnknownPattern(name.into()))
    }

    /// Looks up a mart.
    pub fn mart(&self, name: &str) -> Result<&ServiceMart, ServiceError> {
        self.marts
            .get(name)
            .ok_or_else(|| ServiceError::UnknownService(name.into()))
    }

    /// All interfaces implementing a mart (Phase-1 candidates).
    pub fn interfaces_of_mart(&self, mart: &str) -> Vec<&ServiceInterface> {
        self.marts
            .get(mart)
            .map(|m| {
                m.interfaces
                    .iter()
                    .filter_map(|n| self.services.get(n).map(|s| s.interface()))
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Names of all registered services.
    pub fn service_names(&self) -> Vec<&str> {
        self.services.keys().map(String::as_str).collect()
    }

    /// Names of all registered connection patterns.
    pub fn pattern_names(&self) -> Vec<&str> {
        self.patterns.keys().map(String::as_str).collect()
    }

    /// Per-service call statistics, keyed by interface name.
    pub fn all_stats(&self) -> BTreeMap<String, CallStats> {
        self.services
            .iter()
            .map(|(k, v)| (k.clone(), v.stats()))
            .collect()
    }

    /// Sum of all services' statistics.
    pub fn total_stats(&self) -> CallStats {
        let mut total = CallStats::default();
        for s in self.services.values() {
            total.merge(&s.stats());
        }
        total
    }

    /// Resets every recorder (between experiment repetitions).
    pub fn reset_stats(&self) {
        for s in self.services.values() {
            s.reset();
        }
    }

    /// Drops all runtime observations and promotions, reverting every
    /// service and pattern to its declared statistics.
    pub fn reset_observed(&self) {
        for s in self.services.values() {
            s.reset_observed();
        }
        self.join_observations.lock().clear();
        self.promoted_patterns.write().clear();
    }

    /// Feeds an equi-join observation for a connection pattern: how
    /// many candidate pairs a join stage examined and how many matched.
    pub fn note_join_observation(&self, pattern: &str, pairs: u64, matches: u64) {
        let mut obs = self.join_observations.lock();
        let entry = obs.entry(pattern.to_owned()).or_default();
        entry.pairs += pairs;
        entry.matches += matches;
    }

    /// Observed pair/match counts per pattern so far.
    pub fn join_observations(&self) -> BTreeMap<String, JoinObservation> {
        self.join_observations.lock().clone()
    }

    /// Declared-vs-observed drift per service, for `seco stats`.
    pub fn service_drift(&self) -> BTreeMap<String, ServiceDrift> {
        self.services
            .iter()
            .map(|(name, rec)| {
                let declared = rec.declared_interface().stats;
                (
                    name.clone(),
                    ServiceDrift {
                        declared_cardinality: declared.avg_cardinality,
                        observed_cardinality: rec.observed_cardinality(),
                        declared_latency_ms: declared.response_time_ms,
                        observed_latency_ms: rec.observed_latency_ms(),
                        fetches: rec.observed_fetches(),
                        promoted: rec.is_promoted(),
                    },
                )
            })
            .collect()
    }

    /// The adaptive deviation test: compares every service's observed
    /// cardinality/latency and every pattern's observed selectivity
    /// against the *effective* declared values, and promotes the
    /// observations whose drift is at or past `policy.threshold`.
    /// Returns the names of promoted services and patterns; any
    /// promotion rolls [`stats_epoch`](Self::stats_epoch), invalidating
    /// stale plan-cache entries.
    pub fn promote_deviations(&self, policy: &DeviationPolicy) -> Vec<String> {
        let mut promoted = Vec::new();
        for (name, rec) in &self.services {
            let effective = rec.interface().stats;
            let mut next = effective;
            if let Some(card) = rec.observed_cardinality() {
                // A lower bound (no binding ran to exhaustion) is only
                // trusted when it already *exceeds* the declared value.
                let usable = card.samples >= policy.min_samples
                    && (card.exact || card.value > effective.avg_cardinality);
                if usable && drift_ratio(card.value, effective.avg_cardinality) >= policy.threshold
                {
                    next.avg_cardinality = card.value;
                }
            }
            if let Some(latency) = rec.observed_latency_ms() {
                if rec.observed_fetches() >= policy.min_samples
                    && drift_ratio(latency, effective.response_time_ms) >= policy.threshold
                {
                    next.response_time_ms = latency;
                }
            }
            if next != effective && rec.promote_stats(next) {
                promoted.push(name.clone());
            }
        }
        let observations = self.join_observations.lock().clone();
        for (name, obs) in observations {
            let Some(observed_sel) = obs.selectivity() else {
                continue;
            };
            let Ok(effective) = self.pattern(&name) else {
                continue;
            };
            if obs.pairs < policy.min_samples
                || drift_ratio(observed_sel, effective.selectivity) < policy.threshold
            {
                continue;
            }
            let mut pattern = effective.clone();
            pattern.selectivity = observed_sel.clamp(0.0, 1.0);
            self.promoted_patterns
                .write()
                .insert(name.clone(), Box::leak(Box::new(pattern)));
            promoted.push(name);
        }
        promoted
    }

    /// Total observed-stat promotions (service and pattern) so far.
    pub fn epoch_invalidations(&self) -> u64 {
        self.total_stats().epoch_invalidations + self.promoted_patterns.read().len() as u64
    }

    /// Fingerprint of the cost-model-relevant registry state: every
    /// interface's name, mart, behaviour flags, and statistics, in name
    /// order. Cached optimizer plans are keyed on this epoch — a plan
    /// derived under one set of statistics is invalid under another,
    /// because the annotation (and therefore the cost ranking) changes
    /// with the estimates.
    pub fn stats_epoch(&self) -> u64 {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let mut h = DefaultHasher::new();
        for name in self.services.keys() {
            let Ok(iface) = self.interface(name) else {
                continue;
            };
            iface.name.hash(&mut h);
            iface.mart.hash(&mut h);
            iface.kind.is_search().hash(&mut h);
            iface.kind.is_chunked().hash(&mut h);
            iface.stats.avg_cardinality.to_bits().hash(&mut h);
            iface.stats.chunk_size.hash(&mut h);
            iface.stats.response_time_ms.to_bits().hash(&mut h);
            iface.stats.cost_per_call.to_bits().hash(&mut h);
        }
        for name in self.patterns.keys() {
            let Ok(pattern) = self.pattern(name) else {
                continue;
            };
            pattern.name.hash(&mut h);
            pattern.selectivity.to_bits().hash(&mut h);
        }
        h.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::invocation::Request;
    use crate::synthetic::{DomainMap, SyntheticService};
    use seco_model::{
        Adornment, AttributeDef, AttributePath, DataType, JoinPair, ScoreDecay, ServiceKind,
        ServiceSchema, ServiceStats, Value,
    };

    fn iface(name: &str, mart: &str) -> ServiceInterface {
        let schema = ServiceSchema::new(
            name,
            vec![
                AttributeDef::atomic("K", DataType::Text, Adornment::Input),
                AttributeDef::atomic("V", DataType::Text, Adornment::Output),
                AttributeDef::atomic("Score", DataType::Float, Adornment::Ranked),
            ],
        )
        .unwrap();
        ServiceInterface::new(
            name,
            mart,
            schema,
            ServiceKind::Search,
            ServiceStats::default(),
            ScoreDecay::Linear,
        )
        .unwrap()
    }

    fn registry() -> ServiceRegistry {
        let mut reg = ServiceRegistry::new();
        for (n, m) in [
            ("Movie1", "Movie"),
            ("Movie2", "Movie"),
            ("Theatre1", "Theatre"),
        ] {
            reg.register_service(Arc::new(SyntheticService::new(
                iface(n, m),
                DomainMap::new(),
                1,
            )))
            .unwrap();
        }
        reg.register_pattern(
            ConnectionPattern::new(
                "Shows",
                "Movie",
                "Theatre",
                vec![JoinPair::eq(
                    AttributePath::atomic("V"),
                    AttributePath::atomic("V"),
                )],
                0.02,
            )
            .unwrap(),
        )
        .unwrap();
        reg
    }

    #[test]
    fn registration_and_lookup() {
        let reg = registry();
        assert!(reg.service("Movie1").is_ok());
        assert!(reg.service("Nope").is_err());
        assert_eq!(reg.interface("Theatre1").unwrap().mart, "Theatre");
        assert!(reg.pattern("Shows").is_ok());
        assert!(reg.pattern("Nope").is_err());
        assert_eq!(reg.service_names().len(), 3);
        assert_eq!(reg.pattern_names(), vec!["Shows"]);
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut reg = registry();
        let err = reg
            .register_service(Arc::new(SyntheticService::new(
                iface("Movie1", "Movie"),
                DomainMap::new(),
                9,
            )))
            .unwrap_err();
        assert!(matches!(err, ServiceError::Duplicate(_)));
        let err = reg
            .register_pattern(
                ConnectionPattern::new(
                    "Shows",
                    "A",
                    "B",
                    vec![JoinPair::eq(
                        AttributePath::atomic("X"),
                        AttributePath::atomic("Y"),
                    )],
                    0.5,
                )
                .unwrap(),
            )
            .unwrap_err();
        assert!(matches!(err, ServiceError::Duplicate(_)));
    }

    #[test]
    fn marts_collect_their_interfaces() {
        let reg = registry();
        let movies = reg.interfaces_of_mart("Movie");
        assert_eq!(movies.len(), 2);
        assert!(reg.interfaces_of_mart("Nothing").is_empty());
        assert_eq!(reg.mart("Movie").unwrap().interfaces.len(), 2);
        assert!(reg.mart("Nothing").is_err());
    }

    #[test]
    fn deviations_promote_and_roll_the_epoch() {
        use crate::stats_accumulator::MisdeclaredService;
        let mut reg = ServiceRegistry::new();
        // True behaviour: 30 tuples per invocation in one chunk of 30.
        let truth = ServiceInterface::new(
            "Drifty1",
            "Drifty",
            iface("Drifty1", "Drifty").schema.clone(),
            ServiceKind::Search,
            ServiceStats::new(30.0, 30, 10.0, 1.0).unwrap(),
            ScoreDecay::Linear,
        )
        .unwrap();
        let inner = Arc::new(SyntheticService::new(truth, DomainMap::new(), 7));
        // Declared: 10× under.
        let declared = ServiceStats::new(3.0, 30, 10.0, 1.0).unwrap();
        reg.register_service(Arc::new(MisdeclaredService::new(inner, declared)))
            .unwrap();
        let epoch_before = reg.stats_epoch();
        let svc = reg.service("Drifty1").unwrap();
        let req = Request::unbound().bind(AttributePath::atomic("K"), Value::text("k"));
        svc.fetch(&req).unwrap();
        let drift = reg.service_drift()["Drifty1"].clone();
        assert!((drift.declared_cardinality - 3.0).abs() < 1e-9);
        assert!((drift.observed_cardinality.unwrap().value - 30.0).abs() < 1e-9);
        assert!(!drift.promoted);

        // Below threshold: nothing happens.
        let strict = DeviationPolicy {
            threshold: 100.0,
            min_samples: 1,
        };
        assert!(reg.promote_deviations(&strict).is_empty());
        assert_eq!(reg.stats_epoch(), epoch_before);

        let promoted = reg.promote_deviations(&DeviationPolicy::default());
        assert_eq!(promoted, vec!["Drifty1".to_string()]);
        assert_ne!(reg.stats_epoch(), epoch_before, "promotion rolls the epoch");
        let eff = reg.interface("Drifty1").unwrap().stats;
        assert!((eff.avg_cardinality - 30.0).abs() < 1e-9);
        assert_eq!(reg.epoch_invalidations(), 1);

        // Join observation drift promotes the pattern selectivity too.
        reg.register_pattern(
            ConnectionPattern::new(
                "DriftyJoin",
                "Drifty",
                "Drifty",
                vec![JoinPair::eq(
                    AttributePath::atomic("V"),
                    AttributePath::atomic("V"),
                )],
                0.02,
            )
            .unwrap(),
        )
        .unwrap();
        let epoch_mid = reg.stats_epoch();
        reg.note_join_observation("DriftyJoin", 100, 40);
        let promoted = reg.promote_deviations(&DeviationPolicy::default());
        assert_eq!(promoted, vec!["DriftyJoin".to_string()]);
        assert!((reg.pattern("DriftyJoin").unwrap().selectivity - 0.4).abs() < 1e-9);
        assert!((reg.declared_pattern("DriftyJoin").unwrap().selectivity - 0.02).abs() < 1e-9);
        assert_ne!(reg.stats_epoch(), epoch_mid);

        reg.reset_observed();
        assert!((reg.interface("Drifty1").unwrap().stats.avg_cardinality - 3.0).abs() < 1e-9);
        assert!((reg.pattern("DriftyJoin").unwrap().selectivity - 0.02).abs() < 1e-9);
    }

    #[test]
    fn stats_flow_through_recorders() {
        let reg = registry();
        let svc = reg.service("Movie1").unwrap();
        let req = Request::unbound().bind(AttributePath::atomic("K"), Value::text("k"));
        svc.fetch(&req).unwrap();
        assert_eq!(reg.all_stats()["Movie1"].calls, 1);
        assert_eq!(reg.total_stats().calls, 1);
        reg.reset_stats();
        assert_eq!(reg.total_stats().calls, 0);
    }
}
