//! The service registry: marts, interfaces, connection patterns, and
//! invocable service instances.
//!
//! Queries are written against names (`Movie1`, `Shows`, …); the
//! registry resolves them. Every registered service is automatically
//! wrapped in a [`CallRecorder`] so cost observables are available for
//! any execution without further plumbing.

use std::collections::BTreeMap;
use std::sync::Arc;

use seco_model::{ConnectionPattern, ServiceInterface, ServiceMart};

use crate::error::ServiceError;
use crate::invocation::Service;
use crate::recorder::{CallRecorder, CallStats};

/// Registry of everything invocable and joinable.
#[derive(Default)]
pub struct ServiceRegistry {
    marts: BTreeMap<String, ServiceMart>,
    services: BTreeMap<String, Arc<CallRecorder>>,
    patterns: BTreeMap<String, ConnectionPattern>,
}

impl ServiceRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a service implementation under its interface name,
    /// creating (or extending) its mart entry.
    pub fn register_service(&mut self, service: Arc<dyn Service>) -> Result<(), ServiceError> {
        let iface = service.interface().clone();
        if self.services.contains_key(&iface.name) {
            return Err(ServiceError::Duplicate(iface.name.clone()));
        }
        let mart = self
            .marts
            .entry(iface.mart.clone())
            .or_insert_with(|| ServiceMart::new(iface.mart.clone()));
        mart.interfaces.push(iface.name.clone());
        self.services
            .insert(iface.name.clone(), CallRecorder::new(service));
        Ok(())
    }

    /// Registers a connection pattern.
    pub fn register_pattern(&mut self, pattern: ConnectionPattern) -> Result<(), ServiceError> {
        if self.patterns.contains_key(&pattern.name) {
            return Err(ServiceError::Duplicate(pattern.name.clone()));
        }
        self.patterns.insert(pattern.name.clone(), pattern);
        Ok(())
    }

    /// Looks up an invocable service (wrapped in its recorder).
    pub fn service(&self, name: &str) -> Result<Arc<CallRecorder>, ServiceError> {
        self.services
            .get(name)
            .cloned()
            .ok_or_else(|| ServiceError::UnknownService(name.into()))
    }

    /// Looks up a service interface (the adorned schema and statistics).
    pub fn interface(&self, name: &str) -> Result<&ServiceInterface, ServiceError> {
        self.services
            .get(name)
            .map(|s| s.interface())
            .ok_or_else(|| ServiceError::UnknownService(name.into()))
    }

    /// Looks up a connection pattern.
    pub fn pattern(&self, name: &str) -> Result<&ConnectionPattern, ServiceError> {
        self.patterns
            .get(name)
            .ok_or_else(|| ServiceError::UnknownPattern(name.into()))
    }

    /// Looks up a mart.
    pub fn mart(&self, name: &str) -> Result<&ServiceMart, ServiceError> {
        self.marts
            .get(name)
            .ok_or_else(|| ServiceError::UnknownService(name.into()))
    }

    /// All interfaces implementing a mart (Phase-1 candidates).
    pub fn interfaces_of_mart(&self, mart: &str) -> Vec<&ServiceInterface> {
        self.marts
            .get(mart)
            .map(|m| {
                m.interfaces
                    .iter()
                    .filter_map(|n| self.services.get(n).map(|s| s.interface()))
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Names of all registered services.
    pub fn service_names(&self) -> Vec<&str> {
        self.services.keys().map(String::as_str).collect()
    }

    /// Names of all registered connection patterns.
    pub fn pattern_names(&self) -> Vec<&str> {
        self.patterns.keys().map(String::as_str).collect()
    }

    /// Per-service call statistics, keyed by interface name.
    pub fn all_stats(&self) -> BTreeMap<String, CallStats> {
        self.services
            .iter()
            .map(|(k, v)| (k.clone(), v.stats()))
            .collect()
    }

    /// Sum of all services' statistics.
    pub fn total_stats(&self) -> CallStats {
        let mut total = CallStats::default();
        for s in self.services.values() {
            total.merge(&s.stats());
        }
        total
    }

    /// Resets every recorder (between experiment repetitions).
    pub fn reset_stats(&self) {
        for s in self.services.values() {
            s.reset();
        }
    }

    /// Fingerprint of the cost-model-relevant registry state: every
    /// interface's name, mart, behaviour flags, and statistics, in name
    /// order. Cached optimizer plans are keyed on this epoch — a plan
    /// derived under one set of statistics is invalid under another,
    /// because the annotation (and therefore the cost ranking) changes
    /// with the estimates.
    pub fn stats_epoch(&self) -> u64 {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let mut h = DefaultHasher::new();
        for name in self.services.keys() {
            let Ok(iface) = self.interface(name) else {
                continue;
            };
            iface.name.hash(&mut h);
            iface.mart.hash(&mut h);
            iface.kind.is_search().hash(&mut h);
            iface.kind.is_chunked().hash(&mut h);
            iface.stats.avg_cardinality.to_bits().hash(&mut h);
            iface.stats.chunk_size.hash(&mut h);
            iface.stats.response_time_ms.to_bits().hash(&mut h);
            iface.stats.cost_per_call.to_bits().hash(&mut h);
        }
        h.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::invocation::Request;
    use crate::synthetic::{DomainMap, SyntheticService};
    use seco_model::{
        Adornment, AttributeDef, AttributePath, DataType, JoinPair, ScoreDecay, ServiceKind,
        ServiceSchema, ServiceStats, Value,
    };

    fn iface(name: &str, mart: &str) -> ServiceInterface {
        let schema = ServiceSchema::new(
            name,
            vec![
                AttributeDef::atomic("K", DataType::Text, Adornment::Input),
                AttributeDef::atomic("V", DataType::Text, Adornment::Output),
                AttributeDef::atomic("Score", DataType::Float, Adornment::Ranked),
            ],
        )
        .unwrap();
        ServiceInterface::new(
            name,
            mart,
            schema,
            ServiceKind::Search,
            ServiceStats::default(),
            ScoreDecay::Linear,
        )
        .unwrap()
    }

    fn registry() -> ServiceRegistry {
        let mut reg = ServiceRegistry::new();
        for (n, m) in [
            ("Movie1", "Movie"),
            ("Movie2", "Movie"),
            ("Theatre1", "Theatre"),
        ] {
            reg.register_service(Arc::new(SyntheticService::new(
                iface(n, m),
                DomainMap::new(),
                1,
            )))
            .unwrap();
        }
        reg.register_pattern(
            ConnectionPattern::new(
                "Shows",
                "Movie",
                "Theatre",
                vec![JoinPair::eq(
                    AttributePath::atomic("V"),
                    AttributePath::atomic("V"),
                )],
                0.02,
            )
            .unwrap(),
        )
        .unwrap();
        reg
    }

    #[test]
    fn registration_and_lookup() {
        let reg = registry();
        assert!(reg.service("Movie1").is_ok());
        assert!(reg.service("Nope").is_err());
        assert_eq!(reg.interface("Theatre1").unwrap().mart, "Theatre");
        assert!(reg.pattern("Shows").is_ok());
        assert!(reg.pattern("Nope").is_err());
        assert_eq!(reg.service_names().len(), 3);
        assert_eq!(reg.pattern_names(), vec!["Shows"]);
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut reg = registry();
        let err = reg
            .register_service(Arc::new(SyntheticService::new(
                iface("Movie1", "Movie"),
                DomainMap::new(),
                9,
            )))
            .unwrap_err();
        assert!(matches!(err, ServiceError::Duplicate(_)));
        let err = reg
            .register_pattern(
                ConnectionPattern::new(
                    "Shows",
                    "A",
                    "B",
                    vec![JoinPair::eq(
                        AttributePath::atomic("X"),
                        AttributePath::atomic("Y"),
                    )],
                    0.5,
                )
                .unwrap(),
            )
            .unwrap_err();
        assert!(matches!(err, ServiceError::Duplicate(_)));
    }

    #[test]
    fn marts_collect_their_interfaces() {
        let reg = registry();
        let movies = reg.interfaces_of_mart("Movie");
        assert_eq!(movies.len(), 2);
        assert!(reg.interfaces_of_mart("Nothing").is_empty());
        assert_eq!(reg.mart("Movie").unwrap().interfaces.len(), 2);
        assert!(reg.mart("Nothing").is_err());
    }

    #[test]
    fn stats_flow_through_recorders() {
        let reg = registry();
        let svc = reg.service("Movie1").unwrap();
        let req = Request::unbound().bind(AttributePath::atomic("K"), Value::text("k"));
        svc.fetch(&req).unwrap();
        assert_eq!(reg.all_stats()["Movie1"].calls, 1);
        assert_eq!(reg.total_stats().calls, 1);
        reg.reset_stats();
        assert_eq!(reg.total_stats().calls, 0);
    }
}
