//! Deterministic synthetic services.
//!
//! This is the substitute for the live Web services of the chapter. A
//! [`SyntheticService`] produces its result list as a pure function of
//! `(service seed, input bindings, tuple index)`, so that:
//!
//! * repeated fetches of the same chunk return identical tuples
//!   (idempotent request-responses, as the join strategies assume);
//! * experiments are reproducible bit-for-bit from the seed;
//! * equality-join selectivity between two services is *controlled*: two
//!   attributes drawing from the same [`ValueDomain`] of size `d` match a
//!   random pair with probability `1/d`, so the chapter's estimates
//!   (`Shows` ≈ 2% ⇒ title domain of size 50, `DinnerPlace` ≈ 40%) are
//!   realised in the generated data, not merely assumed by the cost
//!   model.
//!
//! Search services draw their scores from the interface's
//! [`ScoreDecay`](seco_model::ScoreDecay), so a service declared `Step{h=2}` really exhibits a
//! deep score step after two chunks — which is what makes the E6/E7
//! experiments (nested-loop vs merge-scan) meaningful.

use std::collections::BTreeMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use seco_model::attribute::AttributeKind;
use seco_model::{
    Adornment, AttributePath, DataType, Date, ScoringFunction, ServiceInterface, Tuple, Value,
};

use crate::error::ServiceError;
use crate::invocation::{Bindings, ChunkResponse, Request, Service};
use crate::latency::LatencyModel;

/// A named value domain of a given size. Attributes that share a domain
/// produce join-compatible values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValueDomain {
    /// Domain label; becomes the prefix of generated text values.
    pub name: String,
    /// Number of distinct values in the domain.
    pub size: u64,
}

impl ValueDomain {
    /// Creates a domain; size must be positive.
    pub fn new(name: impl Into<String>, size: u64) -> Self {
        ValueDomain {
            name: name.into(),
            size: size.max(1),
        }
    }

    /// The `idx`-th value of the domain rendered as the requested type.
    pub fn value(&self, idx: u64, ty: DataType) -> Value {
        let idx = idx % self.size;
        match ty {
            DataType::Text => Value::Text(format!("{}-{idx}", self.name)),
            DataType::Int => Value::Int(idx as i64),
            DataType::Float => Value::float(idx as f64 / self.size as f64),
            DataType::Bool => Value::Bool(idx.is_multiple_of(2)),
            // Anchor synthetic dates mid-2009, the chapter's era.
            DataType::Date => Value::Date(Date::from_ordinal(
                Date::new(2009, 1, 1).ordinal() + idx as i64,
            )),
        }
    }
}

/// Assignment of value domains to attribute paths of one service.
#[derive(Debug, Clone, Default)]
pub struct DomainMap {
    map: BTreeMap<AttributePath, ValueDomain>,
    /// Domain size used for paths without an explicit assignment.
    pub default_size: u64,
}

impl DomainMap {
    /// Empty map with a default domain size of 1000 (effectively
    /// join-incompatible unless shared explicitly).
    pub fn new() -> Self {
        DomainMap {
            map: BTreeMap::new(),
            default_size: 1000,
        }
    }

    /// Assigns a domain to a path, builder-style.
    pub fn with(mut self, path: AttributePath, domain: ValueDomain) -> Self {
        self.map.insert(path, domain);
        self
    }

    /// The domain for a path, or a path-private default.
    pub fn domain_for(&self, path: &AttributePath) -> ValueDomain {
        self.map
            .get(path)
            .cloned()
            .unwrap_or_else(|| ValueDomain::new(format!("v{}", path), self.default_size))
    }
}

fn hash_request_key(request: &Request) -> u64 {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    for (k, v) in &request.bindings {
        k.hash(&mut h);
        v.to_string().hash(&mut h);
    }
    for (k, (op, v)) in &request.ranges {
        k.hash(&mut h);
        op.to_string().hash(&mut h);
        v.to_string().hash(&mut h);
    }
    h.finish()
}

pub(crate) fn mix(a: u64, b: u64) -> u64 {
    // splitmix64-style mixing.
    let mut z = a.wrapping_add(b).wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn hash_path(path: &AttributePath) -> u64 {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    path.hash(&mut h);
    h.finish()
}

/// A deterministic fault-injection profile for [`SyntheticService`].
///
/// Every decision (does call `i` fail? spike? return an empty chunk?)
/// is a pure function of `(profile seed, call index)`, so a faulty run
/// is exactly as reproducible as a healthy one — which is what lets the
/// resilience tests assert byte-identical retry schedules.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultProfile {
    /// Jitter/decision seed of the profile.
    pub seed: u64,
    /// Probability that a call fails with a transient transport error.
    pub transient_rate: f64,
    /// Probability that a call's latency spikes by `spike_ms`.
    pub spike_rate: f64,
    /// Latency added on a spiked call, in milliseconds.
    pub spike_ms: f64,
    /// Probability that a call returns an empty (non-terminal) chunk.
    pub empty_rate: f64,
    /// Hard outage over a half-open call-index window `[start, end)`:
    /// every call in the window fails.
    pub outage: Option<(u64, u64)>,
}

impl FaultProfile {
    /// No injected faults (the identity profile).
    pub fn none() -> Self {
        FaultProfile {
            seed: 0,
            transient_rate: 0.0,
            spike_rate: 0.0,
            spike_ms: 0.0,
            empty_rate: 0.0,
            outage: None,
        }
    }

    /// A flaky provider: frequent transient errors and latency spikes,
    /// occasional empty chunks, no sustained outage.
    pub fn flaky() -> Self {
        FaultProfile {
            seed: 0xFA17,
            transient_rate: 0.25,
            spike_rate: 0.20,
            spike_ms: 250.0,
            empty_rate: 0.10,
            outage: None,
        }
    }

    /// A provider that goes hard-down for calls 3..40 (long enough to
    /// trip any reasonable breaker), healthy otherwise.
    pub fn outage() -> Self {
        FaultProfile {
            seed: 0x0D0D,
            transient_rate: 0.02,
            spike_rate: 0.0,
            spike_ms: 0.0,
            empty_rate: 0.0,
            outage: Some((3, 40)),
        }
    }

    /// Looks a preset up by name (`none`, `flaky`, `outage`).
    pub fn by_name(name: &str) -> Option<Self> {
        match name {
            "none" => Some(FaultProfile::none()),
            "flaky" => Some(FaultProfile::flaky()),
            "outage" => Some(FaultProfile::outage()),
            _ => None,
        }
    }

    /// Replaces the decision seed, builder-style.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// True when the profile can never inject anything.
    pub fn is_inert(&self) -> bool {
        self.transient_rate <= 0.0
            && self.spike_rate <= 0.0
            && self.empty_rate <= 0.0
            && self.outage.is_none()
    }

    /// Deterministic unit-interval coin for decision `salt` on call
    /// `call_idx`.
    fn coin(&self, salt: u64, call_idx: u64) -> f64 {
        mix(self.seed ^ salt, call_idx) as f64 / u64::MAX as f64
    }
}

/// A deterministic, in-process stand-in for a remote service.
pub struct SyntheticService {
    iface: ServiceInterface,
    domains: DomainMap,
    seed: u64,
    latency: LatencyModel,
    /// Rows generated per repeating group per tuple.
    rows_per_group: usize,
    /// Fractional jitter on the per-binding result-list length (0 keeps
    /// the length exactly at `round(avg_cardinality)`, which the
    /// figure-replication experiments rely on).
    cardinality_jitter: f64,
    /// If set, every `n`-th call fails with a transport error
    /// (failure-injection experiments).
    fail_every: Option<u64>,
    /// Fraction of binding sets that yield an *empty* result list. This
    /// realises pipe-join selectivity: §5.6 models `DinnerPlace` as a
    /// 40%-selective pipe join, i.e. 60% of piped theatre addresses find
    /// no restaurant.
    empty_rate: f64,
    /// Output paths whose value mirrors a bound input path: a theatre
    /// search for an address in `country-0` returns theatres in
    /// `country-0`. Entries are `(output, input)`.
    mirrors: Vec<(AttributePath, AttributePath)>,
    /// Seeded fault injection applied per call (resilience experiments).
    faults: Option<FaultProfile>,
    calls: AtomicU64,
}

impl SyntheticService {
    /// Creates a synthetic service for an interface.
    pub fn new(iface: ServiceInterface, domains: DomainMap, seed: u64) -> Self {
        let latency = LatencyModel::Fixed {
            ms: iface.stats.response_time_ms,
        };
        SyntheticService {
            iface,
            domains,
            seed,
            latency,
            rows_per_group: 2,
            cardinality_jitter: 0.0,
            fail_every: None,
            empty_rate: 0.0,
            mirrors: Vec::new(),
            faults: None,
            calls: AtomicU64::new(0),
        }
    }

    /// Applies a fault-injection profile (inert profiles are dropped).
    pub fn with_fault_profile(mut self, profile: FaultProfile) -> Self {
        self.faults = if profile.is_inert() {
            None
        } else {
            Some(profile)
        };
        self
    }

    /// Declares that `output`'s generated value copies the bound value
    /// of `input` (locality of search results).
    pub fn with_mirror(mut self, output: AttributePath, input: AttributePath) -> Self {
        self.mirrors.push((output, input));
        self
    }

    /// Sets the fraction of binding sets that return an empty result.
    pub fn with_empty_rate(mut self, rate: f64) -> Self {
        self.empty_rate = rate.clamp(0.0, 1.0);
        self
    }

    /// Overrides the latency model.
    pub fn with_latency(mut self, latency: LatencyModel) -> Self {
        self.latency = latency;
        self
    }

    /// Sets how many rows each repeating group carries per tuple.
    pub fn with_rows_per_group(mut self, rows: usize) -> Self {
        self.rows_per_group = rows.max(1);
        self
    }

    /// Sets the fractional jitter applied to result-list lengths.
    pub fn with_cardinality_jitter(mut self, jitter: f64) -> Self {
        self.cardinality_jitter = jitter.clamp(0.0, 1.0);
        self
    }

    /// Makes every `n`-th request-response fail (n ≥ 1).
    pub fn with_failure_every(mut self, n: u64) -> Self {
        self.fail_every = Some(n.max(1));
        self
    }

    /// Number of request-responses served so far.
    pub fn calls_served(&self) -> u64 {
        self.calls.load(Ordering::Relaxed)
    }

    /// Length of the full result list under the given bindings.
    fn result_len(&self, bindings_hash: u64) -> usize {
        if self.empty_rate > 0.0 {
            // Deterministic per-binding coin: the same address always
            // has (or always lacks) a restaurant.
            let coin = mix(self.seed ^ 0xE4F3, bindings_hash) as f64 / u64::MAX as f64;
            if coin < self.empty_rate {
                return 0;
            }
        }
        let avg = self.iface.stats.avg_cardinality;
        if self.cardinality_jitter == 0.0 {
            return avg.round() as usize;
        }
        let mut rng = StdRng::seed_from_u64(mix(self.seed, bindings_hash));
        let lo = avg * (1.0 - self.cardinality_jitter);
        let hi = avg * (1.0 + self.cardinality_jitter);
        rng.gen_range(lo..=hi).round().max(0.0) as usize
    }

    fn gen_value(
        &self,
        path: &AttributePath,
        ty: DataType,
        bindings_hash: u64,
        tuple_index: usize,
        row: usize,
    ) -> Value {
        let domain = self.domains.domain_for(path);
        let seed = mix(
            mix(self.seed, bindings_hash),
            mix(hash_path(path), (tuple_index as u64) << 8 | row as u64),
        );
        let mut rng = StdRng::seed_from_u64(seed);
        domain.value(rng.gen_range(0..domain.size), ty)
    }

    /// Generates a value satisfying a range constraint shipped with the
    /// request: a real service answering "openings after date X" only
    /// returns compliant tuples, so the synthetic one does too. `Like`
    /// and other non-order constraints fall back to domain generation
    /// (the downstream selection then filters, making the service
    /// *selective in context*).
    fn gen_range_value(
        &self,
        op: seco_model::Comparator,
        bound: &Value,
        path: &AttributePath,
        bindings_hash: u64,
        tuple_index: usize,
    ) -> Option<Value> {
        use seco_model::Comparator as C;
        let seed = mix(
            mix(self.seed ^ 0x5EED, bindings_hash),
            mix(hash_path(path), tuple_index as u64),
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let delta = rng.gen_range(1..=30i64);
        let shifted = |sign: i64| -> Option<Value> {
            Some(match bound {
                Value::Int(v) => Value::Int(v + sign * delta),
                Value::Float(v) => Value::float(v + sign as f64 * delta as f64 / 30.0),
                Value::Date(d) => Value::Date(Date::from_ordinal(d.ordinal() + sign * delta)),
                _ => return None,
            })
        };
        match op {
            C::Gt | C::Ge => shifted(1),
            C::Lt | C::Le => shifted(-1),
            _ => None,
        }
    }

    /// Generates the `i`-th tuple of the result list for `bindings`.
    ///
    /// Fails only when an echoed input binding violates the schema type
    /// (the caller bound a value of the wrong type), which surfaces as a
    /// [`ServiceError::Model`] from `fetch`.
    fn gen_tuple(
        &self,
        bindings: &Bindings,
        ranges: &crate::invocation::Ranges,
        bindings_hash: u64,
        i: usize,
        scoring: &ScoringFunction,
    ) -> Result<Tuple, ServiceError> {
        let schema = &self.iface.schema;
        let score = if self.iface.kind.is_search() {
            scoring.score_at(i)
        } else if let seco_model::ScoreDecay::Constant(c) = self.iface.decay {
            c
        } else {
            0.0
        };
        let mut builder = Tuple::builder(schema).score(score).source_rank(i);
        for attr in &schema.attributes {
            match &attr.kind {
                AttributeKind::Atomic(ty) => {
                    let path = AttributePath::atomic(attr.name.clone());
                    let v = if attr.adornment == Adornment::Ranked {
                        Value::float(score)
                    } else if let Some(bound) = bindings.get(&path) {
                        // Echo input bindings: the service's answers are
                        // *about* the requested key.
                        bound.clone()
                    } else if let Some(compliant) = ranges
                        .get(&path)
                        .and_then(|(op, b)| self.gen_range_value(*op, b, &path, bindings_hash, i))
                    {
                        compliant
                    } else if let Some(mirrored) = self
                        .mirrors
                        .iter()
                        .find(|(out, _)| *out == path)
                        .and_then(|(_, input)| bindings.get(input).cloned())
                    {
                        mirrored
                    } else {
                        self.gen_value(&path, *ty, bindings_hash, i, 0)
                    };
                    builder = builder.set(&attr.name, v);
                }
                AttributeKind::Group(subs) => {
                    for row in 0..self.rows_per_group {
                        let mut values = Vec::with_capacity(subs.len());
                        for sub in subs {
                            let path = AttributePath::sub(attr.name.clone(), sub.name.clone());
                            let v = if sub.adornment == Adornment::Ranked {
                                Value::float(score)
                            } else if let Some(bound) = bindings.get(&path) {
                                bound.clone()
                            } else if let Some(compliant) = ranges.get(&path).and_then(|(op, b)| {
                                self.gen_range_value(*op, b, &path, bindings_hash, i + row)
                            }) {
                                compliant
                            } else {
                                self.gen_value(&path, sub.ty, bindings_hash, i, row)
                            };
                            values.push(v);
                        }
                        builder = builder.push_group_row(&attr.name, values);
                    }
                }
            }
        }
        builder.build().map_err(ServiceError::Model)
    }
}

impl Service for SyntheticService {
    fn interface(&self) -> &ServiceInterface {
        &self.iface
    }

    fn fetch(&self, request: &Request) -> Result<ChunkResponse, ServiceError> {
        self.check_bindings(request)?;
        let call_idx = self.calls.fetch_add(1, Ordering::Relaxed);
        if let Some(n) = self.fail_every {
            if (call_idx + 1).is_multiple_of(n) {
                return Err(ServiceError::Transport {
                    service: self.iface.name.clone(),
                    detail: format!("injected failure on call {call_idx}"),
                });
            }
        }
        let mut injected_spike_ms = 0.0;
        let mut injected_empty = false;
        if let Some(profile) = &self.faults {
            if let Some((start, end)) = profile.outage {
                if (start..end).contains(&call_idx) {
                    return Err(ServiceError::Transport {
                        service: self.iface.name.clone(),
                        detail: format!(
                            "injected outage (call {call_idx} in window {start}..{end})"
                        ),
                    });
                }
            }
            if profile.coin(0x7A1E, call_idx) < profile.transient_rate {
                return Err(ServiceError::Transport {
                    service: self.iface.name.clone(),
                    detail: format!("injected transient fault on call {call_idx}"),
                });
            }
            if profile.coin(0x591C, call_idx) < profile.spike_rate {
                injected_spike_ms = profile.spike_ms;
            }
            injected_empty = profile.coin(0xE017, call_idx) < profile.empty_rate;
        }
        if !self.iface.kind.is_chunked() && request.chunk > 0 {
            return Err(ServiceError::NotChunked {
                service: self.iface.name.clone(),
            });
        }
        let bindings_hash = hash_request_key(request);
        let total = self.result_len(bindings_hash);
        let chunk_size = if self.iface.kind.is_chunked() {
            self.iface.stats.chunk_size
        } else {
            total.max(1)
        };
        let scoring = ScoringFunction::new(self.iface.decay, total, chunk_size.max(1))
            .map_err(ServiceError::Model)?;
        let start = request.chunk * chunk_size;
        let end = (start + chunk_size).min(total);
        let elapsed_ms = self.latency.latency_ms(call_idx, request.chunk) + injected_spike_ms;
        if injected_empty {
            // An empty non-terminal chunk: the provider answered but the
            // page carried nothing. Re-fetching the same chunk index may
            // succeed (the decision is per call, not per request).
            return Ok(ChunkResponse::new(Vec::new(), end < total, elapsed_ms));
        }
        let tuples: Vec<Tuple> = (start..end.max(start))
            .map(|i| {
                self.gen_tuple(
                    &request.bindings,
                    &request.ranges,
                    bindings_hash,
                    i,
                    &scoring,
                )
            })
            .collect::<Result<_, _>>()?;
        Ok(ChunkResponse::new(tuples, end < total, elapsed_ms))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seco_model::{
        AttributeDef, ScoreDecay, ServiceKind, ServiceSchema, ServiceStats, SubAttributeDef,
    };

    fn search_iface(avg: f64, chunk: usize, decay: ScoreDecay) -> ServiceInterface {
        let schema = ServiceSchema::new(
            "S1",
            vec![
                AttributeDef::atomic("Key", DataType::Text, Adornment::Input),
                AttributeDef::atomic("Name", DataType::Text, Adornment::Output),
                AttributeDef::atomic("City", DataType::Text, Adornment::Output),
                AttributeDef::atomic("Score", DataType::Float, Adornment::Ranked),
                AttributeDef::group(
                    "Tags",
                    vec![SubAttributeDef::new(
                        "Tag",
                        DataType::Text,
                        Adornment::Output,
                    )],
                ),
            ],
        )
        .unwrap();
        ServiceInterface::new(
            "S1",
            "S",
            schema,
            ServiceKind::Search,
            ServiceStats::new(avg, chunk, 50.0, 1.0).unwrap(),
            decay,
        )
        .unwrap()
    }

    fn request() -> Request {
        Request::unbound().bind(AttributePath::atomic("Key"), Value::text("rome"))
    }

    #[test]
    fn fetch_is_deterministic() {
        let s = SyntheticService::new(
            search_iface(25.0, 10, ScoreDecay::Linear),
            DomainMap::new(),
            7,
        );
        let a = s.fetch(&request()).unwrap();
        let b = s.fetch(&request()).unwrap();
        assert_eq!(a.tuples(), b.tuples());
        assert_eq!(a.len(), 10);
        assert!(a.has_more());
    }

    #[test]
    fn chunking_covers_the_whole_list() {
        let s = SyntheticService::new(
            search_iface(25.0, 10, ScoreDecay::Linear),
            DomainMap::new(),
            7,
        );
        let c0 = s.fetch(&request()).unwrap();
        let c1 = s.fetch(&request().at_chunk(1)).unwrap();
        let c2 = s.fetch(&request().at_chunk(2)).unwrap();
        assert_eq!((c0.len(), c1.len(), c2.len()), (10, 10, 5));
        assert!(c0.has_more() && c1.has_more() && !c2.has_more());
        let c3 = s.fetch(&request().at_chunk(3)).unwrap();
        assert!(c3.is_empty() && !c3.has_more());
    }

    #[test]
    fn scores_decrease_in_rank_order() {
        let s = SyntheticService::new(
            search_iface(
                30.0,
                10,
                ScoreDecay::Step {
                    h: 1,
                    high: 0.95,
                    low: 0.1,
                },
            ),
            DomainMap::new(),
            7,
        );
        let mut prev = f64::INFINITY;
        for c in 0..3 {
            for t in s.fetch(&request().at_chunk(c)).unwrap().tuples() {
                assert!(t.score <= prev + 1e-12);
                prev = t.score;
            }
        }
        // Step after one chunk of 10.
        let c0 = s.fetch(&request()).unwrap();
        let c1 = s.fetch(&request().at_chunk(1)).unwrap();
        assert!(c0.tuples()[9].score > 0.8);
        assert!(c1.tuples()[0].score < 0.2);
    }

    #[test]
    fn input_bindings_are_echoed() {
        let s = SyntheticService::new(
            search_iface(5.0, 10, ScoreDecay::Linear),
            DomainMap::new(),
            7,
        );
        let resp = s.fetch(&request()).unwrap();
        for t in resp.tuples() {
            assert_eq!(t.atomic_at(0), &Value::text("rome"));
        }
    }

    #[test]
    fn different_bindings_give_different_results() {
        let s = SyntheticService::new(
            search_iface(5.0, 10, ScoreDecay::Linear),
            DomainMap::new(),
            7,
        );
        let a = s.fetch(&request()).unwrap();
        let b = s
            .fetch(&Request::unbound().bind(AttributePath::atomic("Key"), Value::text("milan")))
            .unwrap();
        assert_ne!(a.tuples(), b.tuples());
    }

    #[test]
    fn shared_domain_controls_join_selectivity() {
        // Two services draw City from the same domain of size 10: a
        // random pair matches with probability ~1/10.
        let dom = ValueDomain::new("city", 10);
        let mk = |seed| {
            SyntheticService::new(
                search_iface(100.0, 100, ScoreDecay::Linear),
                DomainMap::new().with(AttributePath::atomic("City"), dom.clone()),
                seed,
            )
        };
        let (s1, s2) = (mk(1), mk(2));
        let a = s1.fetch(&request()).unwrap().shared_tuples();
        let b = s2.fetch(&request()).unwrap().shared_tuples();
        let matches = a
            .iter()
            .flat_map(|x| b.iter().map(move |y| (x, y)))
            .filter(|(x, y)| x.atomic_at(2) == y.atomic_at(2))
            .count();
        let rate = matches as f64 / (a.len() * b.len()) as f64;
        assert!((0.05..0.2).contains(&rate), "match rate {rate} not ≈ 1/10");
    }

    #[test]
    fn cardinality_jitter_varies_length_around_mean() {
        let s = SyntheticService::new(
            search_iface(20.0, 100, ScoreDecay::Linear),
            DomainMap::new(),
            7,
        )
        .with_cardinality_jitter(0.5);
        let mut lens = Vec::new();
        for i in 0..20 {
            let req =
                Request::unbound().bind(AttributePath::atomic("Key"), Value::Text(format!("k{i}")));
            lens.push(s.fetch(&req).unwrap().len());
        }
        let mean = lens.iter().sum::<usize>() as f64 / lens.len() as f64;
        assert!((10.0..30.0).contains(&mean), "mean {mean}");
        assert!(
            lens.iter().any(|&l| l != lens[0]),
            "jitter must vary lengths"
        );
    }

    #[test]
    fn failure_injection_fails_every_nth_call() {
        let s = SyntheticService::new(
            search_iface(5.0, 10, ScoreDecay::Linear),
            DomainMap::new(),
            7,
        )
        .with_failure_every(3);
        let mut failures = 0;
        for _ in 0..9 {
            if s.fetch(&request()).is_err() {
                failures += 1;
            }
        }
        assert_eq!(failures, 3);
        assert_eq!(s.calls_served(), 9);
    }

    #[test]
    fn group_rows_respect_rows_per_group() {
        let s = SyntheticService::new(
            search_iface(5.0, 10, ScoreDecay::Linear),
            DomainMap::new(),
            7,
        )
        .with_rows_per_group(4);
        let resp = s.fetch(&request()).unwrap();
        assert_eq!(resp.tuples()[0].group_at(4).len(), 4);
    }

    #[test]
    fn unchunked_exact_service_rejects_chunk_requests() {
        let schema = ServiceSchema::new(
            "E1",
            vec![AttributeDef::atomic("V", DataType::Int, Adornment::Output)],
        )
        .unwrap();
        let iface = ServiceInterface::new(
            "E1",
            "E",
            schema,
            ServiceKind::Exact { chunked: false },
            ServiceStats::new(3.0, 10, 10.0, 1.0).unwrap(),
            ScoreDecay::Constant(0.5),
        )
        .unwrap();
        let s = SyntheticService::new(iface, DomainMap::new(), 1);
        let ok = s.fetch(&Request::unbound()).unwrap();
        assert_eq!(ok.len(), 3);
        assert!(!ok.has_more());
        // All tuples carry the constant score.
        assert!(ok.tuples().iter().all(|t| t.score == 0.5));
        let err = s.fetch(&Request::unbound().at_chunk(1)).unwrap_err();
        assert!(matches!(err, ServiceError::NotChunked { .. }));
    }

    #[test]
    fn empty_rate_empties_a_deterministic_fraction_of_bindings() {
        let s = SyntheticService::new(
            search_iface(5.0, 10, ScoreDecay::Linear),
            DomainMap::new(),
            7,
        )
        .with_empty_rate(0.6);
        let mut empties = 0;
        for i in 0..200 {
            let req =
                Request::unbound().bind(AttributePath::atomic("Key"), Value::Text(format!("k{i}")));
            let resp = s.fetch(&req).unwrap();
            if resp.is_empty() {
                empties += 1;
                // Determinism: re-asking gives the same emptiness.
                assert!(s.fetch(&req).unwrap().is_empty());
            }
        }
        let rate = empties as f64 / 200.0;
        assert!((0.45..0.75).contains(&rate), "empty rate {rate} not ≈ 0.6");
    }

    #[test]
    fn fault_profile_injects_deterministically() {
        let profile = FaultProfile::flaky();
        let run = |seed| {
            let s = SyntheticService::new(
                search_iface(25.0, 10, ScoreDecay::Linear),
                DomainMap::new(),
                seed,
            )
            .with_fault_profile(profile);
            let mut outcomes = Vec::new();
            for _ in 0..40 {
                outcomes.push(match s.fetch(&request()) {
                    Ok(resp) => format!("ok:{}:{}", resp.len(), resp.elapsed_ms),
                    Err(e) => format!("err:{e}"),
                });
            }
            outcomes
        };
        let a = run(7);
        assert_eq!(a, run(7), "same seeds must give identical fault sequences");
        assert!(
            a.iter().any(|o| o.starts_with("err:")),
            "flaky profile must inject failures"
        );
        assert!(
            a.iter().any(|o| o.starts_with("ok:")),
            "flaky profile must let calls through"
        );
        assert!(
            a.iter().any(|o| o.starts_with("ok:0:")),
            "flaky profile must inject empty chunks"
        );
        assert!(
            a.iter()
                .any(|o| o.starts_with("ok:") && o.ends_with(":300")),
            "spiked calls must add spike_ms to the 50 ms base latency"
        );
    }

    #[test]
    fn outage_window_fails_hard_then_recovers() {
        let s = SyntheticService::new(
            search_iface(25.0, 10, ScoreDecay::Linear),
            DomainMap::new(),
            7,
        )
        .with_fault_profile(FaultProfile {
            outage: Some((2, 5)),
            ..FaultProfile::none().with_seed(1)
        });
        let results: Vec<bool> = (0..8).map(|_| s.fetch(&request()).is_ok()).collect();
        assert_eq!(
            results,
            vec![true, true, false, false, false, true, true, true]
        );
    }

    #[test]
    fn fault_profile_presets_resolve_by_name() {
        assert_eq!(FaultProfile::by_name("flaky"), Some(FaultProfile::flaky()));
        assert_eq!(
            FaultProfile::by_name("outage"),
            Some(FaultProfile::outage())
        );
        assert_eq!(FaultProfile::by_name("none"), Some(FaultProfile::none()));
        assert!(FaultProfile::by_name("bogus").is_none());
        assert!(FaultProfile::none().is_inert());
        assert!(!FaultProfile::flaky().is_inert());
        assert_eq!(FaultProfile::flaky().with_seed(9).seed, 9);
    }

    #[test]
    fn domain_value_rendering_by_type() {
        let d = ValueDomain::new("x", 5);
        assert_eq!(d.value(2, DataType::Text), Value::text("x-2"));
        assert_eq!(d.value(7, DataType::Int), Value::Int(2)); // 7 % 5
        assert_eq!(d.value(0, DataType::Bool), Value::Bool(true));
        assert!(matches!(d.value(1, DataType::Date), Value::Date(_)));
        assert!(matches!(d.value(3, DataType::Float), Value::Float(_)));
    }
}
