//! Client-side response caching.
//!
//! Service calls are idempotent for a fixed request (the substrate
//! guarantees it), so an execution engine may memoize request-responses
//! instead of re-issuing them. This matters for chain topologies: in
//! `Movie → Theatre`, the theatre's inputs are the same constants for
//! every movie tuple, so all but the first request-response per chunk
//! are cache hits — which is also the quantitative content of the §5.3
//! *bound-is-better* intuition ("the service is faster in producing
//! results, and less memory is required to cache the data": fewer bound
//! inputs ⇒ more distinct binding sets ⇒ a bigger cache).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

use seco_model::ServiceInterface;

use crate::error::ServiceError;
use crate::invocation::{ChunkResponse, Request, Service};

/// Cache key: the canonical rendering of a request.
fn key_of(request: &Request) -> String {
    use std::fmt::Write as _;
    let mut k = String::with_capacity(64);
    let _ = write!(k, "c{}|", request.chunk);
    for (p, v) in &request.bindings {
        let _ = write!(k, "{p}={v};");
    }
    for (p, (op, v)) in &request.ranges {
        let _ = write!(k, "{p}{op}{v};");
    }
    k
}

/// A memoizing decorator over any service.
pub struct CachingService {
    inner: std::sync::Arc<dyn Service>,
    cache: Mutex<HashMap<String, ChunkResponse>>,
    hits: AtomicU64,
    misses: AtomicU64,
    capacity: usize,
}

impl CachingService {
    /// Wraps a service with a cache of at most `capacity` responses
    /// (0 disables caching; insertion stops at capacity — the workloads
    /// here are short-lived, so no eviction policy is needed).
    pub fn new(inner: std::sync::Arc<dyn Service>, capacity: usize) -> Self {
        CachingService {
            inner,
            cache: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            capacity,
        }
    }

    /// Cache hits so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cache misses (actual inner calls) so far.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Entries currently cached.
    pub fn len(&self) -> usize {
        self.cache.lock().len()
    }

    /// True when nothing is cached yet.
    pub fn is_empty(&self) -> bool {
        self.cache.lock().is_empty()
    }
}

impl Service for CachingService {
    fn interface(&self) -> &ServiceInterface {
        self.inner.interface()
    }

    fn fetch(&self, request: &Request) -> Result<ChunkResponse, ServiceError> {
        let key = key_of(request);
        if let Some(cached) = self.cache.lock().get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            // A cache hit costs no service time.
            let mut resp = cached.clone();
            resp.elapsed_ms = 0.0;
            return Ok(resp);
        }
        let resp = self.inner.fetch(request)?;
        self.misses.fetch_add(1, Ordering::Relaxed);
        let mut cache = self.cache.lock();
        if cache.len() < self.capacity {
            cache.insert(key, resp.clone());
        }
        Ok(resp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::{DomainMap, SyntheticService};
    use seco_model::{
        Adornment, AttributeDef, AttributePath, DataType, ScoreDecay, ServiceKind, ServiceSchema,
        ServiceStats, Value,
    };
    use std::sync::Arc;

    fn service() -> Arc<SyntheticService> {
        let schema = ServiceSchema::new(
            "S1",
            vec![
                AttributeDef::atomic("K", DataType::Text, Adornment::Input),
                AttributeDef::atomic("V", DataType::Text, Adornment::Output),
                AttributeDef::atomic("Score", DataType::Float, Adornment::Ranked),
            ],
        )
        .unwrap();
        let iface = ServiceInterface::new(
            "S1",
            "S",
            schema,
            ServiceKind::Search,
            ServiceStats::new(20.0, 10, 40.0, 1.0).unwrap(),
            ScoreDecay::Linear,
        )
        .unwrap();
        Arc::new(SyntheticService::new(iface, DomainMap::new(), 3))
    }

    fn req(k: &str) -> Request {
        Request::unbound().bind(AttributePath::atomic("K"), Value::text(k))
    }

    #[test]
    fn repeated_requests_hit_the_cache() {
        let inner = service();
        let cached = CachingService::new(inner.clone(), 64);
        let a = cached.fetch(&req("x")).unwrap();
        let b = cached.fetch(&req("x")).unwrap();
        assert_eq!(a.tuples, b.tuples);
        assert_eq!((cached.hits(), cached.misses()), (1, 1));
        assert_eq!(inner.calls_served(), 1, "the inner service was called once");
        // Hits are free.
        assert_eq!(b.elapsed_ms, 0.0);
        assert!(a.elapsed_ms > 0.0);
    }

    #[test]
    fn different_bindings_and_chunks_are_distinct_entries() {
        let cached = CachingService::new(service(), 64);
        cached.fetch(&req("x")).unwrap();
        cached.fetch(&req("y")).unwrap();
        cached.fetch(&req("x").at_chunk(1)).unwrap();
        assert_eq!(cached.misses(), 3);
        assert_eq!(cached.len(), 3);
        assert!(!cached.is_empty());
    }

    #[test]
    fn capacity_zero_disables_caching() {
        let inner = service();
        let cached = CachingService::new(inner.clone(), 0);
        cached.fetch(&req("x")).unwrap();
        cached.fetch(&req("x")).unwrap();
        assert_eq!(cached.hits(), 0);
        assert_eq!(inner.calls_served(), 2);
    }

    #[test]
    fn chained_constant_bindings_collapse_to_one_call() {
        // The chain-topology scenario: the same constant-bound request
        // repeated once per upstream tuple.
        let inner = service();
        let cached = CachingService::new(inner.clone(), 16);
        for _ in 0..100 {
            cached.fetch(&req("fixed")).unwrap();
        }
        assert_eq!(inner.calls_served(), 1);
        assert_eq!(cached.hits(), 99);
    }

    #[test]
    fn range_constraints_participate_in_the_key() {
        use seco_model::Comparator;
        let cached = CachingService::new(service(), 16);
        let base = req("x");
        let constrained =
            req("x").constrain(AttributePath::atomic("K"), Comparator::Gt, Value::Int(3));
        cached.fetch(&base).unwrap();
        cached.fetch(&constrained).unwrap();
        assert_eq!(cached.misses(), 2, "different constraints must not collide");
    }
}
