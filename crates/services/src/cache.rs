//! Client-side response caching: sharded, coalescing, hash-keyed.
//!
//! Service calls are idempotent for a fixed request (the substrate
//! guarantees it), so an execution engine may memoize request-responses
//! instead of re-issuing them. This matters for chain topologies: in
//! `Movie → Theatre`, the theatre's inputs are the same constants for
//! every movie tuple, so all but the first request-response per chunk
//! are cache hits — which is also the quantitative content of the §5.3
//! *bound-is-better* intuition ("the service is faster in producing
//! results, and less memory is required to cache the data": fewer bound
//! inputs ⇒ more distinct binding sets ⇒ a bigger cache).
//!
//! Three properties distinguish this cache from a plain memo map:
//!
//! * **Structured keys** — a [`RequestKey`] is a 64-bit fingerprint
//!   computed directly over the request's chunk index, bindings, and
//!   range constraints. No string rendering, no per-lookup heap
//!   allocation; `Bindings`/`Ranges` are `BTreeMap`s, so the hash is
//!   independent of binding insertion order by construction.
//! * **Sharding** — entries are spread over N independently locked
//!   shards selected by the fingerprint, so parallel plan nodes stop
//!   serializing on one global lock.
//! * **Request coalescing** (singleflight) — when two threads miss on
//!   the same key simultaneously, one issues the underlying call and
//!   the others block on its published result, so fault-retry storms
//!   and diamond topologies never duplicate in-flight I/O. Coalesced
//!   waits are counted separately from hits.

use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::sync::{Condvar, Mutex as StdMutex};

use parking_lot::{Mutex, MutexGuard};

use seco_model::{ServiceInterface, Value};

use crate::error::ServiceError;
use crate::invocation::{ChunkResponse, Request, Service};
use crate::recorder::CallRecorder;

/// Default shard count when callers do not choose one.
pub const DEFAULT_SHARDS: usize = 8;

/// A 64-bit fingerprint identifying a request (chunk + bindings +
/// ranges), computed structurally without rendering the request to a
/// string. Two semantically equal requests — same chunk, same binding
/// map, same constraint map — produce the same key regardless of the
/// order bindings were inserted, because `Bindings` and `Ranges` are
/// ordered maps with a canonical iteration order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RequestKey(u64);

impl RequestKey {
    /// Fingerprints a request.
    pub fn of(request: &Request) -> Self {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        request.chunk.hash(&mut h);
        request.bindings.len().hash(&mut h);
        for (path, value) in &request.bindings {
            path.hash(&mut h);
            hash_value(value, &mut h);
        }
        request.ranges.len().hash(&mut h);
        for (path, (op, value)) in &request.ranges {
            path.hash(&mut h);
            op.hash(&mut h);
            hash_value(value, &mut h);
        }
        RequestKey(h.finish())
    }

    /// The raw 64-bit fingerprint.
    pub fn fingerprint(self) -> u64 {
        self.0
    }

    /// The shard this key selects among `shards` (≥ 1).
    pub fn shard(self, shards: usize) -> usize {
        (self.0 % shards.max(1) as u64) as usize
    }
}

/// Hashes a [`Value`] structurally. `Value` cannot derive `Hash`
/// (it contains `f64`); floats are hashed by their bit pattern, which
/// is sound here because `Value::float` already rejects `NaN` and the
/// synthetic substrate never produces `-0.0`.
fn hash_value<H: Hasher>(value: &Value, state: &mut H) {
    match value {
        Value::Null => 0u8.hash(state),
        Value::Bool(b) => {
            1u8.hash(state);
            b.hash(state);
        }
        Value::Int(i) => {
            2u8.hash(state);
            i.hash(state);
        }
        Value::Float(f) => {
            3u8.hash(state);
            f.to_bits().hash(state);
        }
        Value::Text(s) => {
            4u8.hash(state);
            s.hash(state);
        }
        Value::Date(d) => {
            5u8.hash(state);
            d.hash(state);
        }
    }
}

/// An in-flight underlying call other threads can wait on. Uses the
/// standard-library mutex/condvar pair (the `parking_lot` shim carries
/// no condvar): the leader publishes the call's result into `slot` and
/// wakes every waiter.
struct Flight {
    slot: StdMutex<Option<Result<ChunkResponse, ServiceError>>>,
    done: Condvar,
}

impl Flight {
    fn new() -> Arc<Self> {
        Arc::new(Flight {
            slot: StdMutex::new(None),
            done: Condvar::new(),
        })
    }

    fn publish(&self, result: Result<ChunkResponse, ServiceError>) {
        let mut slot = self.slot.lock().unwrap_or_else(|e| e.into_inner());
        *slot = Some(result);
        self.done.notify_all();
    }

    fn wait(&self) -> Result<ChunkResponse, ServiceError> {
        let mut slot = self.slot.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(result) = slot.as_ref() {
                return result.clone();
            }
            slot = self.done.wait(slot).unwrap_or_else(|e| e.into_inner());
        }
    }
}

/// One shard: its cached entries and the calls currently in flight for
/// keys that hash here. A single lock covers both maps so the
/// hit / join-flight / become-leader decision is atomic. A cached
/// [`ChunkResponse`] is an `Arc` handle to its immutable body, so a hit
/// clones a pointer — O(1) in the size of the chunk, with no deep copy
/// inside or outside the critical section.
#[derive(Default)]
struct Shard {
    entries: HashMap<u64, ChunkResponse>,
    inflight: HashMap<u64, Arc<Flight>>,
}

/// A memoizing, coalescing decorator over any service.
pub struct CachingService {
    inner: Arc<dyn Service>,
    shards: Vec<Mutex<Shard>>,
    /// Maximum entries per shard (total capacity ÷ shard count).
    per_shard_capacity: usize,
    /// Total configured capacity (0 disables caching and coalescing).
    capacity: usize,
    recorder: Option<Arc<CallRecorder>>,
    hits: AtomicU64,
    misses: AtomicU64,
    coalesced: AtomicU64,
    /// Shard-lock acquisitions that found the lock held (a `try_lock`
    /// miss before blocking) — a direct, host-independent measure of
    /// lock contention for the sharding benchmarks.
    contended: AtomicU64,
}

impl CachingService {
    /// Wraps a service with a cache of at most `capacity` responses
    /// over [`DEFAULT_SHARDS`] shards (0 disables caching; insertion
    /// stops at capacity — the workloads here are short-lived, so no
    /// eviction policy is needed).
    pub fn new(inner: Arc<dyn Service>, capacity: usize) -> Self {
        Self::sharded(inner, capacity, DEFAULT_SHARDS)
    }

    /// Wraps a service with an explicit shard count (≥ 1).
    pub fn sharded(inner: Arc<dyn Service>, capacity: usize, shards: usize) -> Self {
        let shards = shards.max(1);
        CachingService {
            inner,
            shards: (0..shards).map(|_| Mutex::new(Shard::default())).collect(),
            per_shard_capacity: capacity.div_ceil(shards),
            capacity,
            recorder: None,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
            contended: AtomicU64::new(0),
        }
    }

    /// Mirrors hits and coalesced waits into a [`CallRecorder`], so
    /// registry-level statistics see them next to the underlying calls.
    pub fn with_recorder(mut self, recorder: Arc<CallRecorder>) -> Self {
        self.recorder = Some(recorder);
        self
    }

    /// Cache hits so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cache misses (actual inner calls that succeeded) so far.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Requests that waited on another thread's in-flight call instead
    /// of issuing their own.
    pub fn coalesced(&self) -> u64 {
        self.coalesced.load(Ordering::Relaxed)
    }

    /// True when `request`'s response is already cached or being
    /// fetched by another thread right now. Lets a prefetcher skip
    /// speculation that could only land on an existing entry.
    pub fn contains(&self, request: &Request) -> bool {
        if self.capacity == 0 {
            return false;
        }
        let key = RequestKey::of(request);
        let guard = self.lock_shard(&self.shards[key.shard(self.shards.len())]);
        guard.entries.contains_key(&key.fingerprint())
            || guard.inflight.contains_key(&key.fingerprint())
    }

    /// Shard-lock acquisitions that had to wait for another thread.
    pub fn lock_contentions(&self) -> u64 {
        self.contended.load(Ordering::Relaxed)
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Locks a shard, counting the acquisition as contended when the
    /// lock was already held.
    fn lock_shard<'a>(&'a self, shard: &'a Mutex<Shard>) -> MutexGuard<'a, Shard> {
        shard.try_lock().unwrap_or_else(|| {
            self.contended.fetch_add(1, Ordering::Relaxed);
            shard.lock()
        })
    }

    /// Entries currently cached, over all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().entries.len()).sum()
    }

    /// True when nothing is cached yet.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.lock().entries.is_empty())
    }
}

impl Service for CachingService {
    fn interface(&self) -> &ServiceInterface {
        self.inner.interface()
    }

    fn fetch(&self, request: &Request) -> Result<ChunkResponse, ServiceError> {
        if self.capacity == 0 {
            return self.inner.fetch(request);
        }
        let key = RequestKey::of(request);
        let shard = &self.shards[key.shard(self.shards.len())];

        enum Role {
            Hit(ChunkResponse),
            Waiter(Arc<Flight>),
            Leader(Arc<Flight>),
        }
        let role = {
            let mut guard = self.lock_shard(shard);
            if let Some(cached) = guard.entries.get(&key.fingerprint()) {
                // A cache hit costs no service time and no tuple copies:
                // the response re-shares the stored body.
                Role::Hit(cached.with_elapsed(0.0))
            } else if let Some(flight) = guard.inflight.get(&key.fingerprint()) {
                Role::Waiter(flight.clone())
            } else {
                let flight = Flight::new();
                guard.inflight.insert(key.fingerprint(), flight.clone());
                Role::Leader(flight)
            }
        };

        match role {
            Role::Hit(resp) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                if let Some(rec) = &self.recorder {
                    rec.note_cache_hit();
                }
                Ok(resp)
            }
            Role::Waiter(flight) => {
                self.coalesced.fetch_add(1, Ordering::Relaxed);
                if let Some(rec) = &self.recorder {
                    rec.note_coalesced();
                }
                // The leader pays the call's time; joining its flight
                // is free, like a hit, and shares the leader's body.
                flight.wait().map(|resp| resp.with_elapsed(0.0))
            }
            Role::Leader(flight) => {
                let result = self.inner.fetch(request);
                flight.publish(result.clone());
                let mut guard = self.lock_shard(shard);
                guard.inflight.remove(&key.fingerprint());
                if let Ok(resp) = &result {
                    self.misses.fetch_add(1, Ordering::Relaxed);
                    if guard.entries.len() < self.per_shard_capacity {
                        guard.entries.insert(key.fingerprint(), resp.clone());
                    }
                }
                result
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::{DomainMap, SyntheticService};
    use seco_model::{
        Adornment, AttributeDef, AttributePath, DataType, ScoreDecay, ServiceKind, ServiceSchema,
        ServiceStats, Value,
    };
    use std::sync::Arc;

    fn service() -> Arc<SyntheticService> {
        let schema = ServiceSchema::new(
            "S1",
            vec![
                AttributeDef::atomic("K", DataType::Text, Adornment::Input),
                AttributeDef::atomic("V", DataType::Text, Adornment::Output),
                AttributeDef::atomic("Score", DataType::Float, Adornment::Ranked),
            ],
        )
        .unwrap();
        let iface = ServiceInterface::new(
            "S1",
            "S",
            schema,
            ServiceKind::Search,
            ServiceStats::new(20.0, 10, 40.0, 1.0).unwrap(),
            ScoreDecay::Linear,
        )
        .unwrap();
        Arc::new(SyntheticService::new(iface, DomainMap::new(), 3))
    }

    fn req(k: &str) -> Request {
        Request::unbound().bind(AttributePath::atomic("K"), Value::text(k))
    }

    #[test]
    fn repeated_requests_hit_the_cache() {
        let inner = service();
        let cached = CachingService::new(inner.clone(), 64);
        let a = cached.fetch(&req("x")).unwrap();
        let b = cached.fetch(&req("x")).unwrap();
        assert_eq!(a.tuples(), b.tuples());
        assert_eq!((cached.hits(), cached.misses()), (1, 1));
        assert_eq!(inner.calls_served(), 1, "the inner service was called once");
        // Hits are free.
        assert_eq!(b.elapsed_ms, 0.0);
        assert!(a.elapsed_ms > 0.0);
    }

    #[test]
    fn cache_hits_share_the_stored_body_without_copying() {
        // Regression test for the hit-path deep copy: a hit must be O(1)
        // in the response size, which means every hit hands out the SAME
        // body allocation — not a copy of its tuples.
        let inner = service();
        let recorder = CallRecorder::new(inner.clone());
        let cached = CachingService::new(inner, 64).with_recorder(recorder.clone());
        let miss = cached.fetch(&req("x")).unwrap();
        assert!(!miss.is_empty(), "fixture must produce a non-trivial chunk");
        let h1 = cached.fetch(&req("x")).unwrap();
        let h2 = cached.fetch(&req("x")).unwrap();
        assert!(
            Arc::ptr_eq(miss.body(), h1.body()) && Arc::ptr_eq(h1.body(), h2.body()),
            "hits must re-share the cached body allocation"
        );
        for (t1, t2) in miss.tuples().iter().zip(h1.tuples()) {
            assert!(Arc::ptr_eq(t1, t2), "tuple handles must be shared too");
        }
        // The data plane performed zero deep copies serving those hits.
        let stats = recorder.stats();
        assert_eq!((stats.clone_events, stats.bytes_cloned), (0, 0));
        assert_eq!(stats.cache_hits, 2);
    }

    #[test]
    fn different_bindings_and_chunks_are_distinct_entries() {
        let cached = CachingService::new(service(), 64);
        cached.fetch(&req("x")).unwrap();
        cached.fetch(&req("y")).unwrap();
        cached.fetch(&req("x").at_chunk(1)).unwrap();
        assert_eq!(cached.misses(), 3);
        assert_eq!(cached.len(), 3);
        assert!(!cached.is_empty());
    }

    #[test]
    fn capacity_zero_disables_caching() {
        let inner = service();
        let cached = CachingService::new(inner.clone(), 0);
        cached.fetch(&req("x")).unwrap();
        cached.fetch(&req("x")).unwrap();
        assert_eq!(cached.hits(), 0);
        assert_eq!(inner.calls_served(), 2);
    }

    #[test]
    fn chained_constant_bindings_collapse_to_one_call() {
        // The chain-topology scenario: the same constant-bound request
        // repeated once per upstream tuple.
        let inner = service();
        let cached = CachingService::new(inner.clone(), 16);
        for _ in 0..100 {
            cached.fetch(&req("fixed")).unwrap();
        }
        assert_eq!(inner.calls_served(), 1);
        assert_eq!(cached.hits(), 99);
    }

    #[test]
    fn range_constraints_participate_in_the_key() {
        use seco_model::Comparator;
        let cached = CachingService::new(service(), 16);
        let base = req("x");
        let constrained =
            req("x").constrain(AttributePath::atomic("K"), Comparator::Gt, Value::Int(3));
        cached.fetch(&base).unwrap();
        cached.fetch(&constrained).unwrap();
        assert_eq!(cached.misses(), 2, "different constraints must not collide");
    }

    #[test]
    fn request_keys_ignore_binding_insertion_order() {
        use seco_model::Comparator;
        let a = Request::unbound()
            .bind(AttributePath::atomic("A"), Value::text("1"))
            .bind(AttributePath::atomic("B"), Value::Int(2))
            .constrain(AttributePath::atomic("C"), Comparator::Gt, Value::Int(3))
            .constrain(AttributePath::atomic("D"), Comparator::Lt, Value::Int(4));
        let b = Request::unbound()
            .constrain(AttributePath::atomic("D"), Comparator::Lt, Value::Int(4))
            .constrain(AttributePath::atomic("C"), Comparator::Gt, Value::Int(3))
            .bind(AttributePath::atomic("B"), Value::Int(2))
            .bind(AttributePath::atomic("A"), Value::text("1"));
        assert_eq!(
            RequestKey::of(&a),
            RequestKey::of(&b),
            "semantically equal requests must hash identically"
        );
        assert_ne!(
            RequestKey::of(&a),
            RequestKey::of(&a.at_chunk(1)),
            "the chunk index is part of the key"
        );
        let narrower =
            a.clone()
                .constrain(AttributePath::atomic("C"), Comparator::Gt, Value::Int(9));
        assert_ne!(
            RequestKey::of(&a),
            RequestKey::of(&narrower),
            "constraint values are part of the key"
        );
    }

    #[test]
    fn entries_spread_over_shards() {
        let cached = CachingService::sharded(service(), 256, 4);
        assert_eq!(cached.shard_count(), 4);
        for i in 0..64 {
            cached.fetch(&req(&format!("k{i}"))).unwrap();
        }
        assert_eq!(cached.len(), 64);
        let populated = cached
            .shards
            .iter()
            .filter(|s| !s.lock().entries.is_empty())
            .count();
        assert!(
            populated >= 2,
            "64 distinct keys must land in more than one shard, got {populated}"
        );
    }

    #[test]
    fn racing_threads_coalesce_on_one_underlying_call() {
        use std::sync::Barrier;
        let inner = service();
        let cached = Arc::new(CachingService::new(inner.clone(), 64));
        let k = 8;
        let barrier = Arc::new(Barrier::new(k));
        std::thread::scope(|scope| {
            for _ in 0..k {
                let cached = cached.clone();
                let barrier = barrier.clone();
                scope.spawn(move || {
                    barrier.wait();
                    cached.fetch(&req("same")).unwrap();
                });
            }
        });
        assert_eq!(inner.calls_served(), 1, "exactly one underlying call");
        assert_eq!(
            cached.hits() + cached.coalesced() + cached.misses(),
            k as u64,
            "every request is a miss, a hit, or a coalesced wait"
        );
        assert_eq!(cached.misses(), 1);
    }
}
