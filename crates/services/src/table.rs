//! Static in-memory services, used as oracles and in unit tests.
//!
//! A [`TableService`] serves an explicit list of tuples. For search
//! services the list is interpreted as already being in ranking order;
//! for exact services with input attributes, the table is filtered by
//! equality on the bound inputs (an access-limited relational source, as
//! in §2.3). This is the implementation behind the chapter's literal
//! examples (the Q1/Q2 repeating-group data) and behind the reference
//! query evaluator in `seco-query::semantics`.

use std::sync::atomic::{AtomicU64, Ordering};

use seco_model::{ServiceInterface, SharedTuple, Tuple, Value};

use crate::error::ServiceError;
use crate::invocation::{ChunkResponse, Request, Service};
use crate::latency::LatencyModel;

/// A service backed by an explicit tuple list.
///
/// Rows are stored as [`SharedTuple`] handles so that serving a chunk
/// clones references, never tuple data.
pub struct TableService {
    iface: ServiceInterface,
    rows: Vec<SharedTuple>,
    latency: LatencyModel,
    calls: AtomicU64,
}

impl TableService {
    /// Creates a table service. For search interfaces the rows must be
    /// provided in decreasing score order; this is validated eagerly so
    /// a mis-ordered oracle fails at construction, not mid-experiment.
    pub fn new(iface: ServiceInterface, rows: Vec<Tuple>) -> Result<Self, ServiceError> {
        if iface.kind.is_search() {
            for w in rows.windows(2) {
                if w[0].score < w[1].score - 1e-12 {
                    return Err(ServiceError::Model(
                        seco_model::ModelError::InvalidParameter {
                            name: "rows",
                            detail: format!(
                                "search service `{}` rows must be in decreasing score order",
                                iface.name
                            ),
                        },
                    ));
                }
            }
        }
        let latency = LatencyModel::Fixed {
            ms: iface.stats.response_time_ms,
        };
        Ok(TableService {
            iface,
            rows: rows.into_iter().map(SharedTuple::new).collect(),
            latency,
            calls: AtomicU64::new(0),
        })
    }

    /// Overrides the latency model.
    pub fn with_latency(mut self, latency: LatencyModel) -> Self {
        self.latency = latency;
        self
    }

    /// All rows, unfiltered (oracle access).
    pub fn rows(&self) -> &[SharedTuple] {
        &self.rows
    }

    /// Number of request-responses served so far.
    pub fn calls_served(&self) -> u64 {
        self.calls.load(Ordering::Relaxed)
    }

    /// Rows matching the request's input bindings (equality on every
    /// bound input path; group paths match if *some* row of the group
    /// equals the bound value) and range constraints (applied with
    /// their actual comparator — the table has the real data).
    fn matching_rows(&self, request: &Request) -> Vec<SharedTuple> {
        let schema = &self.iface.schema;
        self.rows
            .iter()
            .filter(|t| {
                let eq_ok = request.bindings.iter().all(|(path, bound)| {
                    match t.values_at(schema, path) {
                        Ok(values) => values.iter().any(|v| v == bound),
                        // A binding for a path the schema doesn't have is
                        // ignored (the planner binds only schema inputs).
                        Err(_) => true,
                    }
                });
                let range_ok = request.ranges.iter().all(|(path, (op, bound))| {
                    match t.values_at(schema, path) {
                        Ok(values) => values.iter().any(|v| op.eval(v, bound).unwrap_or(false)),
                        Err(_) => true,
                    }
                });
                eq_ok && range_ok
            })
            .cloned()
            .collect()
    }
}

impl Service for TableService {
    fn interface(&self) -> &ServiceInterface {
        &self.iface
    }

    fn fetch(&self, request: &Request) -> Result<ChunkResponse, ServiceError> {
        self.check_bindings(request)?;
        let call_idx = self.calls.fetch_add(1, Ordering::Relaxed);
        if !self.iface.kind.is_chunked() && request.chunk > 0 {
            return Err(ServiceError::NotChunked {
                service: self.iface.name.clone(),
            });
        }
        let matching = self.matching_rows(request);
        let chunk_size = if self.iface.kind.is_chunked() {
            self.iface.stats.chunk_size
        } else {
            matching.len().max(1)
        };
        let start = request.chunk * chunk_size;
        let end = (start + chunk_size).min(matching.len());
        let tuples = if start < matching.len() {
            matching[start..end].to_vec()
        } else {
            Vec::new()
        };
        Ok(ChunkResponse::from_shared(
            tuples,
            end < matching.len(),
            self.latency.latency_ms(call_idx, request.chunk),
        ))
    }
}

/// Builds the two-service dataset of the chapter's semantics example
/// (§3.1): `S1` provides `t1=({<1,x>,<2,x>})`, `t2=({<2,x>,<1,y>})` and
/// `S2` provides `t3=({<1,x>,<2,y>})`, `t4=({<2,x>})`, each over a
/// repeating group `R` with sub-attributes `A` (int) and `B` (text).
pub fn chapter_semantics_example() -> (TableService, TableService) {
    use seco_model::{
        Adornment, AttributeDef, DataType, ScoreDecay, ServiceKind, ServiceSchema, ServiceStats,
        SubAttributeDef,
    };

    let schema = |name: &str| {
        ServiceSchema::new(
            name,
            vec![AttributeDef::group(
                "R",
                vec![
                    SubAttributeDef::new("A", DataType::Int, Adornment::Output),
                    SubAttributeDef::new("B", DataType::Text, Adornment::Output),
                ],
            )],
        )
        .expect("static schema is valid")
    };
    let iface = |name: &str| {
        ServiceInterface::new(
            name,
            name.trim_end_matches(|c: char| c.is_ascii_digit()),
            schema(name),
            ServiceKind::Exact { chunked: false },
            ServiceStats::new(2.0, 10, 1.0, 1.0).expect("static stats are valid"),
            ScoreDecay::Constant(1.0),
        )
        .expect("static interface is valid")
    };
    let row = |schema: &ServiceSchema, rows: &[(i64, &str)]| {
        let mut b = Tuple::builder(schema);
        for (a, s) in rows {
            b = b.push_group_row("R", vec![Value::Int(*a), Value::text(*s)]);
        }
        b.build().expect("static tuple is valid")
    };

    let s1 = iface("S1");
    let t1 = row(&s1.schema, &[(1, "x"), (2, "x")]);
    let t2 = row(&s1.schema, &[(2, "x"), (1, "y")]);
    let s2 = iface("S2");
    let t3 = row(&s2.schema, &[(1, "x"), (2, "y")]);
    let t4 = row(&s2.schema, &[(2, "x")]);

    (
        TableService::new(s1, vec![t1, t2]).expect("S1 table is valid"),
        TableService::new(s2, vec![t3, t4]).expect("S2 table is valid"),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use seco_model::{
        Adornment, AttributeDef, AttributePath, DataType, ScoreDecay, ServiceKind, ServiceSchema,
        ServiceStats,
    };

    fn ranked_iface(chunk: usize) -> ServiceInterface {
        let schema = ServiceSchema::new(
            "R1",
            vec![
                AttributeDef::atomic("City", DataType::Text, Adornment::Input),
                AttributeDef::atomic("Name", DataType::Text, Adornment::Output),
                AttributeDef::atomic("Rating", DataType::Float, Adornment::Ranked),
            ],
        )
        .unwrap();
        ServiceInterface::new(
            "R1",
            "R",
            schema,
            ServiceKind::Search,
            ServiceStats::new(4.0, chunk, 1.0, 1.0).unwrap(),
            ScoreDecay::Linear,
        )
        .unwrap()
    }

    fn mk_row(iface: &ServiceInterface, city: &str, name: &str, score: f64) -> Tuple {
        Tuple::builder(&iface.schema)
            .set("City", Value::text(city))
            .set("Name", Value::text(name))
            .set("Rating", Value::float(score))
            .score(score)
            .build()
            .unwrap()
    }

    #[test]
    fn filters_by_input_bindings() {
        let iface = ranked_iface(2);
        let rows = vec![
            mk_row(&iface, "rome", "a", 0.9),
            mk_row(&iface, "milan", "b", 0.8),
            mk_row(&iface, "rome", "c", 0.7),
        ];
        let s = TableService::new(iface, rows).unwrap();
        let req = Request::unbound().bind(AttributePath::atomic("City"), Value::text("rome"));
        let resp = s.fetch(&req).unwrap();
        assert_eq!(resp.len(), 2);
        assert!(resp
            .tuples()
            .iter()
            .all(|t| t.atomic_at(0) == &Value::text("rome")));
    }

    #[test]
    fn rejects_misordered_search_rows() {
        let iface = ranked_iface(2);
        let rows = vec![
            mk_row(&iface, "rome", "a", 0.1),
            mk_row(&iface, "rome", "b", 0.9),
        ];
        assert!(TableService::new(iface, rows).is_err());
    }

    #[test]
    fn chunked_pagination() {
        let iface = ranked_iface(2);
        let rows = vec![
            mk_row(&iface, "rome", "a", 0.9),
            mk_row(&iface, "rome", "b", 0.8),
            mk_row(&iface, "rome", "c", 0.7),
        ];
        let s = TableService::new(iface, rows).unwrap();
        let req = Request::unbound().bind(AttributePath::atomic("City"), Value::text("rome"));
        let c0 = s.fetch(&req).unwrap();
        let c1 = s.fetch(&req.at_chunk(1)).unwrap();
        assert_eq!((c0.len(), c1.len()), (2, 1));
        assert!(c0.has_more() && !c1.has_more());
        assert_eq!(s.calls_served(), 2);
    }

    #[test]
    fn chapter_example_data_matches_the_text() {
        let (s1, s2) = chapter_semantics_example();
        assert_eq!(s1.rows().len(), 2);
        assert_eq!(s2.rows().len(), 2);
        // t1's repeating group has rows <1,x> and <2,x>.
        let t1 = &s1.rows()[0];
        assert_eq!(
            t1.group_at(0)[0].values,
            vec![Value::Int(1), Value::text("x")]
        );
        assert_eq!(
            t1.group_at(0)[1].values,
            vec![Value::Int(2), Value::text("x")]
        );
        // t4 has a single row <2,x>.
        let t4 = &s2.rows()[1];
        assert_eq!(t4.group_at(0).len(), 1);
        assert_eq!(
            t4.group_at(0)[0].values,
            vec![Value::Int(2), Value::text("x")]
        );
    }
}
