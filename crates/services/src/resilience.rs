//! Resilient service invocation: deadlines, retry with backoff, and a
//! circuit breaker behind the [`ServiceClient`] middleware.
//!
//! The chapter treats services as remote Web endpoints, and remote
//! endpoints fail: connections reset, latency spikes past what a caller
//! will wait for, providers go down for minutes at a time. The
//! execution environment of §3 must keep producing (possibly partial)
//! ranked answers under those conditions. [`ServiceClient`] packages the
//! standard defences as a decorator over any [`Service`]:
//!
//! * **deadline** — a per-call budget; a response whose simulated
//!   latency exceeds it is abandoned at the deadline and reported as
//!   [`ServiceError::DeadlineExceeded`];
//! * **retry with backoff** — transient failures (transport errors,
//!   deadline expirations — see [`ServiceError::is_transient`]) are
//!   retried up to a configured number of times, waiting an
//!   exponentially growing, deterministically jittered delay between
//!   attempts;
//! * **circuit breaker** — after a configured number of *consecutive*
//!   exhausted calls the breaker opens and further calls short-circuit
//!   instantly (consuming **no** virtual time) until a cooldown passes,
//!   after which one half-open probe decides whether to close again.
//!
//! Time is pluggable: in deterministic executions the client advances a
//! shared [`VirtualClock`] (backoff and abandoned calls consume
//! simulated milliseconds, so the cost metrics of §5.1 see resilience
//! overhead); under the threaded executor a wall-clock mode really
//! sleeps between attempts instead. All jitter derives from a seed, so
//! identical seeds produce identical retry/backoff schedules.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use seco_model::{ServiceInterface, SharedTuple};

use crate::error::ServiceError;
use crate::invocation::{Bindings, ChunkResponse, Request, Service};
use crate::latency::VirtualClock;
use crate::recorder::CallRecorder;
use crate::synthetic::mix;

/// Resilience parameters of a [`ServiceClient`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClientConfig {
    /// Per-call budget in simulated milliseconds; `None` waits forever.
    pub deadline_ms: Option<f64>,
    /// Maximum retry attempts after the initial call (0 disables retry).
    pub retries: u32,
    /// Base backoff delay; attempt `a` waits `base · 2^a` plus jitter.
    pub backoff_ms: f64,
    /// Upper bound on the exponential part of the backoff delay.
    pub max_backoff_ms: f64,
    /// Consecutive exhausted failures that open the breaker
    /// (0 disables the breaker entirely).
    pub breaker_threshold: u32,
    /// How long the breaker stays open before allowing a half-open
    /// probe, in (virtual or wall) milliseconds.
    pub breaker_cooldown_ms: f64,
    /// Seed of the deterministic backoff jitter.
    pub seed: u64,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            deadline_ms: None,
            retries: 2,
            backoff_ms: 25.0,
            max_backoff_ms: 400.0,
            breaker_threshold: 5,
            breaker_cooldown_ms: 1000.0,
            seed: 0,
        }
    }
}

impl ClientConfig {
    /// The backoff delay before retry attempt `attempt` (0-based), where
    /// `sequence` is the client-wide ordinal of the retry. Pure function
    /// of `(config, attempt, sequence)`: identical seeds yield identical
    /// schedules.
    pub fn backoff_delay_ms(&self, attempt: u32, sequence: u64) -> f64 {
        let exponential = self.backoff_ms * f64::from(1u32 << attempt.min(10));
        let capped = exponential.min(self.max_backoff_ms);
        // Deterministic jitter in [0, backoff_ms), decorrelating retry
        // storms without sacrificing reproducibility.
        let unit = mix(self.seed, sequence) as f64 / u64::MAX as f64;
        capped + self.backoff_ms * unit
    }
}

/// Where the client takes time from.
#[derive(Debug, Clone)]
enum ClockSource {
    /// Deterministic simulated time shared with the executor.
    Virtual(Arc<VirtualClock>),
    /// Real time measured from client construction; pauses really sleep.
    Wall(Instant),
}

impl ClockSource {
    fn now_ms(&self) -> f64 {
        match self {
            ClockSource::Virtual(clock) => clock.now_ms(),
            ClockSource::Wall(t0) => t0.elapsed().as_secs_f64() * 1000.0,
        }
    }

    /// Accounts simulated time that already passed (a call's reported
    /// latency). Wall time passes by itself, so wall mode is a no-op.
    fn account_ms(&self, ms: f64) {
        if let ClockSource::Virtual(clock) = self {
            clock.advance_ms(ms);
        }
    }

    /// Actively waits (backoff): virtual clocks jump, wall mode sleeps.
    fn pause_ms(&self, ms: f64) {
        match self {
            ClockSource::Virtual(clock) => {
                clock.advance_ms(ms);
            }
            ClockSource::Wall(_) => std::thread::sleep(Duration::from_secs_f64(ms / 1000.0)),
        }
    }
}

/// Circuit-breaker state machine (closed → open → half-open → …).
#[derive(Debug, Clone, Copy, PartialEq)]
enum BreakerState {
    Closed { consecutive_failures: u32 },
    Open { until_ms: f64 },
    HalfOpen,
}

/// Builder for [`ServiceClient`]; obtained from
/// [`ServiceClient::for_service`] or [`ServiceClient::for_recorded`].
pub struct ServiceClientBuilder {
    inner: Arc<dyn Service>,
    recorder: Option<Arc<CallRecorder>>,
    config: ClientConfig,
    clock: Option<Arc<VirtualClock>>,
    wall: bool,
}

impl ServiceClientBuilder {
    /// Sets the per-call deadline in milliseconds.
    pub fn deadline_ms(mut self, ms: f64) -> Self {
        self.config.deadline_ms = Some(ms.max(0.0));
        self
    }

    /// Sets the maximum number of retry attempts after the initial call.
    pub fn retries(mut self, retries: u32) -> Self {
        self.config.retries = retries;
        self
    }

    /// Sets the base backoff delay between attempts.
    pub fn backoff_ms(mut self, ms: f64) -> Self {
        self.config.backoff_ms = ms.max(0.0);
        self
    }

    /// Configures the circuit breaker: `threshold` consecutive exhausted
    /// failures open it for `cooldown_ms`.
    pub fn breaker(mut self, threshold: u32, cooldown_ms: f64) -> Self {
        self.config.breaker_threshold = threshold;
        self.config.breaker_cooldown_ms = cooldown_ms.max(0.0);
        self
    }

    /// Disables the circuit breaker.
    pub fn no_breaker(mut self) -> Self {
        self.config.breaker_threshold = 0;
        self
    }

    /// Sets the jitter seed (identical seeds ⇒ identical schedules).
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Replaces the whole configuration at once.
    pub fn config(mut self, config: ClientConfig) -> Self {
        self.config = config;
        self
    }

    /// Shares a virtual clock with the executor (deterministic mode).
    pub fn virtual_clock(mut self, clock: Arc<VirtualClock>) -> Self {
        self.clock = Some(clock);
        self.wall = false;
        self
    }

    /// Uses wall-clock time: backoff really sleeps, the breaker cooldown
    /// is measured in real milliseconds. For the threaded executor.
    pub fn wall_clock(mut self) -> Self {
        self.wall = true;
        self
    }

    /// Finishes the builder.
    pub fn build(self) -> ServiceClient {
        let clock = if self.wall {
            ClockSource::Wall(Instant::now())
        } else {
            ClockSource::Virtual(self.clock.unwrap_or_default())
        };
        ServiceClient {
            inner: self.inner,
            recorder: self.recorder,
            config: self.config,
            clock,
            breaker: Mutex::new(BreakerState::Closed {
                consecutive_failures: 0,
            }),
            backoff_seq: AtomicU64::new(0),
        }
    }
}

/// Resilience middleware over a [`Service`].
///
/// Implements [`Service`] itself, so executors and join methods use a
/// client exactly where they would use the raw service:
///
/// ```
/// use std::sync::Arc;
/// use seco_services::{ServiceClient, SyntheticService, DomainMap};
/// # use seco_model::{Adornment, AttributeDef, DataType, ScoreDecay, ServiceKind,
/// #                  ServiceSchema, ServiceStats};
/// # let schema = ServiceSchema::new("S1", vec![
/// #     AttributeDef::atomic("V", DataType::Int, Adornment::Output),
/// # ]).unwrap();
/// # let iface = seco_model::ServiceInterface::new(
/// #     "S1", "S", schema, ServiceKind::Exact { chunked: false },
/// #     ServiceStats::default(), ScoreDecay::Constant(0.0)).unwrap();
/// let service = Arc::new(SyntheticService::new(iface, DomainMap::new(), 7));
/// let client = ServiceClient::for_service(service)
///     .deadline_ms(200.0)
///     .retries(3)
///     .breaker(5, 1000.0)
///     .seed(42)
///     .build();
/// ```
pub struct ServiceClient {
    inner: Arc<dyn Service>,
    recorder: Option<Arc<CallRecorder>>,
    config: ClientConfig,
    clock: ClockSource,
    breaker: Mutex<BreakerState>,
    /// Client-wide retry ordinal feeding the jitter, so consecutive
    /// retries (even across calls) draw distinct deterministic delays.
    backoff_seq: AtomicU64,
}

impl ServiceClient {
    /// Starts building a client over any service handle.
    pub fn for_service(inner: Arc<dyn Service>) -> ServiceClientBuilder {
        ServiceClientBuilder {
            inner,
            recorder: None,
            config: ClientConfig::default(),
            clock: None,
            wall: false,
        }
    }

    /// Starts building a client over a recorded service (as handed out
    /// by the registry); resilience events — retries, timeouts, breaker
    /// trips, short-circuits — are counted on the recorder's stats.
    pub fn for_recorded(recorder: Arc<CallRecorder>) -> ServiceClientBuilder {
        ServiceClientBuilder {
            inner: recorder.clone(),
            recorder: Some(recorder),
            config: ClientConfig::default(),
            clock: None,
            wall: false,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &ClientConfig {
        &self.config
    }

    /// The shared virtual clock, when running in virtual-time mode.
    pub fn virtual_clock(&self) -> Option<Arc<VirtualClock>> {
        match &self.clock {
            ClockSource::Virtual(clock) => Some(clock.clone()),
            ClockSource::Wall(_) => None,
        }
    }

    /// Whether the breaker currently refuses calls (ignoring cooldown
    /// expiry, which is only evaluated at the next call).
    pub fn breaker_is_open(&self) -> bool {
        matches!(*self.breaker.lock(), BreakerState::Open { .. })
    }

    fn service_name(&self) -> String {
        self.inner.interface().name.clone()
    }

    /// Open-breaker gate. Short-circuiting consumes no time at all —
    /// that is the point of a breaker: the caller learns instantly.
    fn check_breaker(&self) -> Result<(), ServiceError> {
        if self.config.breaker_threshold == 0 {
            return Ok(());
        }
        let mut state = self.breaker.lock();
        if let BreakerState::Open { until_ms } = *state {
            if self.clock.now_ms() < until_ms {
                if let Some(rec) = &self.recorder {
                    rec.note_short_circuit();
                }
                return Err(ServiceError::CircuitOpen {
                    service: self.service_name(),
                });
            }
            *state = BreakerState::HalfOpen;
        }
        Ok(())
    }

    fn on_success(&self) {
        if self.config.breaker_threshold > 0 {
            *self.breaker.lock() = BreakerState::Closed {
                consecutive_failures: 0,
            };
        }
    }

    /// Registers one *exhausted* call (retries included) as a breaker
    /// failure; a half-open probe failure reopens immediately.
    fn on_failure(&self) {
        if self.config.breaker_threshold == 0 {
            return;
        }
        let mut state = self.breaker.lock();
        let trips = match *state {
            BreakerState::Closed {
                consecutive_failures,
            } => {
                let n = consecutive_failures + 1;
                if n >= self.config.breaker_threshold {
                    true
                } else {
                    *state = BreakerState::Closed {
                        consecutive_failures: n,
                    };
                    false
                }
            }
            BreakerState::HalfOpen => true,
            BreakerState::Open { .. } => false,
        };
        if trips {
            *state = BreakerState::Open {
                until_ms: self.clock.now_ms() + self.config.breaker_cooldown_ms,
            };
            if let Some(rec) = &self.recorder {
                rec.note_breaker_trip();
            }
        }
    }

    /// One attempt: the inner call plus deadline enforcement. A response
    /// slower than the deadline is abandoned *at* the deadline — the
    /// caller stops waiting, so exactly `deadline_ms` of virtual time
    /// passes, not the full latency.
    fn attempt(&self, request: &Request) -> Result<ChunkResponse, ServiceError> {
        let response = self.inner.fetch(request)?;
        if let Some(deadline) = self.config.deadline_ms {
            if response.elapsed_ms > deadline {
                self.clock.account_ms(deadline);
                if let Some(rec) = &self.recorder {
                    rec.note_timeout();
                }
                return Err(ServiceError::DeadlineExceeded {
                    service: self.service_name(),
                    deadline_ms: deadline,
                });
            }
        }
        self.clock.account_ms(response.elapsed_ms);
        Ok(response)
    }

    /// Fetches chunks `0..n` under the same bindings through the
    /// resilient middleware, concatenating tuples and stopping early at
    /// the terminal chunk. Returns the tuples and the number of
    /// successful request-responses.
    ///
    /// This is the builder-era replacement of the old free-standing
    /// `fetch_n_chunks` helper.
    pub fn fetch_n_chunks(
        &self,
        bindings: &Bindings,
        n: usize,
    ) -> Result<(Vec<SharedTuple>, usize), ServiceError> {
        let mut tuples = Vec::new();
        let mut calls = 0;
        for c in 0..n {
            let resp = self.fetch(&Request::first(bindings.clone()).at_chunk(c))?;
            calls += 1;
            let more = resp.has_more();
            tuples.extend(resp.shared_tuples());
            if !more {
                break;
            }
        }
        Ok((tuples, calls))
    }
}

impl Service for ServiceClient {
    fn interface(&self) -> &ServiceInterface {
        self.inner.interface()
    }

    fn fetch(&self, request: &Request) -> Result<ChunkResponse, ServiceError> {
        self.check_breaker()?;
        let mut attempt = 0u32;
        loop {
            match self.attempt(request) {
                Ok(response) => {
                    self.on_success();
                    return Ok(response);
                }
                Err(error) if error.is_transient() && attempt < self.config.retries => {
                    let sequence = self.backoff_seq.fetch_add(1, Ordering::Relaxed);
                    self.clock
                        .pause_ms(self.config.backoff_delay_ms(attempt, sequence));
                    if let Some(rec) = &self.recorder {
                        rec.note_retry();
                    }
                    attempt += 1;
                }
                Err(error) => {
                    self.on_failure();
                    return Err(error);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::latency::LatencyModel;
    use crate::synthetic::{DomainMap, SyntheticService};
    use seco_model::{
        Adornment, AttributeDef, AttributePath, DataType, ScoreDecay, ServiceKind, ServiceSchema,
        ServiceStats, Value,
    };

    fn iface(response_ms: f64) -> ServiceInterface {
        let schema = ServiceSchema::new(
            "S1",
            vec![
                AttributeDef::atomic("K", DataType::Text, Adornment::Input),
                AttributeDef::atomic("V", DataType::Text, Adornment::Output),
                AttributeDef::atomic("Score", DataType::Float, Adornment::Ranked),
            ],
        )
        .unwrap();
        ServiceInterface::new(
            "S1",
            "S",
            schema,
            ServiceKind::Search,
            ServiceStats::new(25.0, 10, response_ms, 1.0).unwrap(),
            ScoreDecay::Linear,
        )
        .unwrap()
    }

    /// Fails the first `fail_first` calls with a transport error, then
    /// succeeds forever. Gives tests precise control over transience.
    struct FlakyFirst {
        iface: ServiceInterface,
        fail_first: u64,
        calls: AtomicU64,
    }

    impl FlakyFirst {
        fn new(response_ms: f64, fail_first: u64) -> Arc<Self> {
            Arc::new(FlakyFirst {
                iface: iface(response_ms),
                fail_first,
                calls: AtomicU64::new(0),
            })
        }
    }

    impl Service for FlakyFirst {
        fn interface(&self) -> &ServiceInterface {
            &self.iface
        }
        fn fetch(&self, request: &Request) -> Result<ChunkResponse, ServiceError> {
            self.check_bindings(request)?;
            let idx = self.calls.fetch_add(1, Ordering::Relaxed);
            if idx < self.fail_first {
                return Err(ServiceError::Transport {
                    service: self.iface.name.clone(),
                    detail: format!("flaky call {idx}"),
                });
            }
            Ok(ChunkResponse::new(
                Vec::new(),
                false,
                self.iface.stats.response_time_ms,
            ))
        }
    }

    fn req() -> Request {
        Request::unbound().bind(AttributePath::atomic("K"), Value::text("k"))
    }

    #[test]
    fn retries_recover_from_transient_failures() {
        let clock = VirtualClock::new();
        let rec = CallRecorder::new(FlakyFirst::new(40.0, 2));
        let client = ServiceClient::for_recorded(rec.clone())
            .retries(3)
            .backoff_ms(10.0)
            .seed(7)
            .virtual_clock(clock.clone())
            .build();
        let resp = client.fetch(&req()).unwrap();
        assert!(!resp.has_more());
        let stats = rec.stats();
        assert_eq!((stats.calls, stats.failures, stats.retries), (3, 2, 2));
        // Two backoffs plus the final call's latency.
        assert!(
            clock.now_ms() > 40.0 + 10.0 + 20.0 - 1e-9,
            "clock {}",
            clock.now_ms()
        );
    }

    #[test]
    fn retries_exhaust_into_the_original_error() {
        let rec = CallRecorder::new(FlakyFirst::new(40.0, u64::MAX));
        let client = ServiceClient::for_recorded(rec.clone())
            .retries(2)
            .no_breaker()
            .seed(7)
            .build();
        let err = client.fetch(&req()).unwrap_err();
        assert!(matches!(err, ServiceError::Transport { .. }));
        assert_eq!(rec.stats().retries, 2);
        assert_eq!(rec.stats().calls, 3);
    }

    #[test]
    fn deadline_abandons_slow_calls_at_the_deadline() {
        let clock = VirtualClock::new();
        let slow = Arc::new(
            SyntheticService::new(iface(500.0), DomainMap::new(), 3)
                .with_latency(LatencyModel::Fixed { ms: 500.0 }),
        );
        let rec = CallRecorder::new(slow);
        let client = ServiceClient::for_recorded(rec.clone())
            .deadline_ms(200.0)
            .retries(0)
            .virtual_clock(clock.clone())
            .build();
        let err = client.fetch(&req()).unwrap_err();
        assert!(
            matches!(err, ServiceError::DeadlineExceeded { deadline_ms, .. } if deadline_ms == 200.0)
        );
        // The caller stopped waiting at 200 ms, not 500.
        assert!(
            (clock.now_ms() - 200.0).abs() < 1e-9,
            "clock {}",
            clock.now_ms()
        );
        assert_eq!(rec.stats().timeouts, 1);
    }

    #[test]
    fn breaker_opens_after_threshold_and_short_circuits_without_time() {
        let clock = VirtualClock::new();
        let rec = CallRecorder::new(FlakyFirst::new(40.0, u64::MAX));
        let client = ServiceClient::for_recorded(rec.clone())
            .retries(0)
            .breaker(2, 1000.0)
            .virtual_clock(clock.clone())
            .build();
        assert!(client.fetch(&req()).is_err());
        assert!(!client.breaker_is_open());
        assert!(client.fetch(&req()).is_err());
        assert!(client.breaker_is_open());
        assert_eq!(rec.stats().breaker_trips, 1);

        let before = clock.now_ms();
        let err = client.fetch(&req()).unwrap_err();
        assert!(matches!(err, ServiceError::CircuitOpen { .. }));
        assert_eq!(
            clock.now_ms(),
            before,
            "short-circuit must consume no virtual time"
        );
        assert_eq!(rec.stats().short_circuits, 1);
        // No request-response was issued either.
        assert_eq!(rec.stats().calls, 2);
    }

    #[test]
    fn breaker_half_opens_after_cooldown_and_recloses_on_success() {
        let clock = VirtualClock::new();
        let flaky = FlakyFirst::new(40.0, 2);
        let rec = CallRecorder::new(flaky);
        let client = ServiceClient::for_recorded(rec.clone())
            .retries(0)
            .breaker(2, 100.0)
            .virtual_clock(clock.clone())
            .build();
        assert!(client.fetch(&req()).is_err());
        assert!(client.fetch(&req()).is_err());
        assert!(client.breaker_is_open());
        clock.advance_ms(150.0);
        // Past cooldown: the probe goes through and succeeds (call 3 of
        // FlakyFirst with fail_first=2), closing the breaker.
        assert!(client.fetch(&req()).is_ok());
        assert!(!client.breaker_is_open());
        assert!(client.fetch(&req()).is_ok());
    }

    #[test]
    fn half_open_probe_failure_reopens_immediately() {
        let clock = VirtualClock::new();
        let rec = CallRecorder::new(FlakyFirst::new(40.0, u64::MAX));
        let client = ServiceClient::for_recorded(rec.clone())
            .retries(0)
            .breaker(2, 100.0)
            .virtual_clock(clock.clone())
            .build();
        assert!(client.fetch(&req()).is_err());
        assert!(client.fetch(&req()).is_err());
        clock.advance_ms(150.0);
        // Probe fails → reopen on the spot (one failure, not threshold).
        assert!(matches!(
            client.fetch(&req()).unwrap_err(),
            ServiceError::Transport { .. }
        ));
        assert!(client.breaker_is_open());
        assert_eq!(rec.stats().breaker_trips, 2);
    }

    #[test]
    fn identical_seeds_give_identical_backoff_schedules() {
        let run = |seed: u64| -> f64 {
            let clock = VirtualClock::new();
            let client = ServiceClient::for_service(FlakyFirst::new(40.0, u64::MAX))
                .retries(4)
                .backoff_ms(15.0)
                .no_breaker()
                .seed(seed)
                .virtual_clock(clock.clone())
                .build();
            let _ = client.fetch(&req());
            clock.now_ms()
        };
        assert_eq!(run(42).to_bits(), run(42).to_bits());
        assert_ne!(
            run(42).to_bits(),
            run(43).to_bits(),
            "different seeds should jitter apart"
        );

        let cfg = ClientConfig {
            seed: 9,
            ..ClientConfig::default()
        };
        let schedule: Vec<f64> = (0..5).map(|a| cfg.backoff_delay_ms(a, a as u64)).collect();
        let again: Vec<f64> = (0..5).map(|a| cfg.backoff_delay_ms(a, a as u64)).collect();
        assert_eq!(schedule, again);
        // Exponential growth up to the cap.
        assert!(schedule[1] > schedule[0] && schedule[2] > schedule[1]);
        assert!(schedule
            .iter()
            .all(|&d| d <= cfg.max_backoff_ms + cfg.backoff_ms));
    }

    #[test]
    fn fetch_n_chunks_stops_at_terminal_chunk() {
        let service = Arc::new(SyntheticService::new(iface(40.0), DomainMap::new(), 3));
        let client = ServiceClient::for_service(service).build();
        let bindings: Bindings = [(AttributePath::atomic("K"), Value::text("x"))]
            .into_iter()
            .collect();
        let (tuples, calls) = client.fetch_n_chunks(&bindings, 5).unwrap();
        // avg_cardinality 25, chunk 10 → chunks of 10/10/5 then stop.
        assert_eq!(tuples.len(), 25);
        assert_eq!(calls, 3, "has_more=false must stop fetching");
    }

    #[test]
    fn wall_clock_mode_enforces_deadlines_and_sleeps_backoff() {
        let rec = CallRecorder::new(FlakyFirst::new(40.0, 1));
        let client = ServiceClient::for_recorded(rec.clone())
            .retries(1)
            .backoff_ms(1.0)
            .wall_clock()
            .build();
        assert!(client.virtual_clock().is_none());
        assert!(client.fetch(&req()).is_ok());
        assert_eq!(rec.stats().retries, 1);
    }
}
