//! Error type of the service substrate.

use std::fmt;

use seco_model::ModelError;

/// Errors raised while registering or invoking services.
#[derive(Debug, Clone, PartialEq)]
pub enum ServiceError {
    /// Underlying model error (schema lookups, validation, …).
    Model(ModelError),
    /// A required input attribute of the access pattern was not bound in
    /// the request — the access-limitation violation of §2.3.
    MissingBinding {
        /// Service name.
        service: String,
        /// Dotted path of the unbound input attribute.
        attribute: String,
    },
    /// A chunk index past the end of the (non-chunked) result was
    /// requested from a service that does not support chunking.
    NotChunked {
        /// Service name.
        service: String,
    },
    /// A service name was not found in the registry.
    UnknownService(String),
    /// A connection pattern name was not found in the registry.
    UnknownPattern(String),
    /// A name was registered twice.
    Duplicate(String),
    /// Simulated transport failure (used by failure-injection tests).
    Transport {
        /// Service name.
        service: String,
        /// Failure description.
        detail: String,
    },
    /// The per-call deadline elapsed before the service answered. Raised
    /// by the resilience middleware, never by services themselves.
    DeadlineExceeded {
        /// Service name.
        service: String,
        /// The deadline that was exceeded, in milliseconds.
        deadline_ms: f64,
    },
    /// The circuit breaker guarding the service is open: recent calls
    /// failed consecutively, so the middleware short-circuits without
    /// issuing a request-response.
    CircuitOpen {
        /// Service name.
        service: String,
    },
}

impl ServiceError {
    /// Whether retrying the same request can plausibly succeed.
    ///
    /// Transport failures and deadline expirations are transient (a
    /// flaky network, a latency spike); everything else — bad bindings,
    /// unknown names, schema violations, an open breaker — is
    /// deterministic and retrying would only repeat the failure.
    pub fn is_transient(&self) -> bool {
        matches!(
            self,
            ServiceError::Transport { .. } | ServiceError::DeadlineExceeded { .. }
        )
    }
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::Model(e) => write!(f, "model error: {e}"),
            ServiceError::MissingBinding { service, attribute } => {
                write!(
                    f,
                    "service `{service}` requires input `{attribute}` to be bound"
                )
            }
            ServiceError::NotChunked { service } => {
                write!(f, "service `{service}` is not chunked; only chunk 0 exists")
            }
            ServiceError::UnknownService(name) => write!(f, "unknown service `{name}`"),
            ServiceError::UnknownPattern(name) => write!(f, "unknown connection pattern `{name}`"),
            ServiceError::Duplicate(name) => write!(f, "duplicate registration of `{name}`"),
            ServiceError::Transport { service, detail } => {
                write!(f, "transport failure calling `{service}`: {detail}")
            }
            ServiceError::DeadlineExceeded {
                service,
                deadline_ms,
            } => {
                write!(
                    f,
                    "call to `{service}` exceeded its {deadline_ms} ms deadline"
                )
            }
            ServiceError::CircuitOpen { service } => {
                write!(
                    f,
                    "circuit breaker for `{service}` is open; call short-circuited"
                )
            }
        }
    }
}

impl std::error::Error for ServiceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServiceError::Model(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ModelError> for ServiceError {
    fn from(e: ModelError) -> Self {
        ServiceError::Model(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = ServiceError::MissingBinding {
            service: "Movie1".into(),
            attribute: "Genres.Genre".into(),
        };
        assert!(e.to_string().contains("Movie1"));
        let e: ServiceError = ModelError::UnknownName("x".into()).into();
        assert!(std::error::Error::source(&e).is_some());
        assert!(std::error::Error::source(&ServiceError::UnknownService("s".into())).is_none());
    }

    #[test]
    fn transient_classification() {
        let transient = [
            ServiceError::Transport {
                service: "S".into(),
                detail: "reset".into(),
            },
            ServiceError::DeadlineExceeded {
                service: "S".into(),
                deadline_ms: 200.0,
            },
        ];
        assert!(transient.iter().all(ServiceError::is_transient));
        let permanent = [
            ServiceError::CircuitOpen {
                service: "S".into(),
            },
            ServiceError::UnknownService("S".into()),
            ServiceError::NotChunked {
                service: "S".into(),
            },
            ServiceError::MissingBinding {
                service: "S".into(),
                attribute: "K".into(),
            },
        ];
        assert!(permanent.iter().all(|e| !e.is_transient()));
        assert!(transient[1].to_string().contains("200"));
        assert!(permanent[0].to_string().contains("short-circuited"));
    }
}
