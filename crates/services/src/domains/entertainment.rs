//! The running example: Movie / Theatre / Restaurant (§3.1, §5.6).
//!
//! Adornments follow the §5.6 listing verbatim:
//!
//! ```text
//! Theatre1(Name^O, UAddress^I, UCity^I, UCountry^I, TAddress^O, TCity^O,
//!          TCountry^O, TPhone^O, Distance^R, Movie.Title^O,
//!          Movie.StartTimes^O, Movie.Duration^O)
//! Movie1(Title^O, Director^O, Score^R, Year^O, Genres.Genre^I,
//!        Language^I, Openings.Country^I, Openings.Date^I, Actor.Name^O)
//! Restaurant1(Name^O, UAddress^I, UCity^I, UCountry^I, RAddress^O,
//!             RCity^O, RCountry^O, Phone^O, Url^O, MapUrl^O, Distance^R,
//!             Rating^R, Category.Name^I)
//! ```
//!
//! (The chapter's `RAddess` is read as the obvious `RAddress` typo.)
//!
//! Statistics are the ones §5.6 uses to instantiate Fig. 10: `Movie1`
//! returns chunks of 20 (5 fetches reach the first 100 movies),
//! `Theatre1` chunks of 5 (5 fetches reach the first 25 theatres),
//! `Shows` has selectivity 2% and `DinnerPlace` 40%. Movie/Theatre
//! titles share a 50-value domain so the generated data exhibits the 2%
//! equality-match rate; `Restaurant1` answers 40% of piped addresses.

use std::sync::Arc;

use seco_model::{
    Adornment, AttributeDef, AttributePath, ConnectionPattern, DataType, JoinPair, ScoreDecay,
    ServiceInterface, ServiceKind, ServiceSchema, ServiceStats, SubAttributeDef,
};

use crate::error::ServiceError;
use crate::registry::ServiceRegistry;
use crate::synthetic::{mix, DomainMap, FaultProfile, SyntheticService, ValueDomain};

/// Number of distinct titles: `Shows` matches one movie/theatre pair in
/// 50 ⇒ the 2% selectivity of §5.6.
pub const TITLE_DOMAIN: u64 = 50;
/// `Shows` selectivity from §5.6.
pub const SHOWS_SELECTIVITY: f64 = 0.02;
/// `DinnerPlace` selectivity from §5.6.
pub const DINNER_SELECTIVITY: f64 = 0.40;

/// Builds the `Movie1` interface (search, chunks of 20, linear decay).
pub fn movie_interface() -> ServiceInterface {
    let schema = ServiceSchema::new(
        "Movie1",
        vec![
            AttributeDef::atomic("Title", DataType::Text, Adornment::Output),
            AttributeDef::atomic("Director", DataType::Text, Adornment::Output),
            AttributeDef::atomic("Score", DataType::Float, Adornment::Ranked),
            AttributeDef::atomic("Year", DataType::Int, Adornment::Output),
            AttributeDef::group(
                "Genres",
                vec![SubAttributeDef::new(
                    "Genre",
                    DataType::Text,
                    Adornment::Input,
                )],
            ),
            AttributeDef::atomic("Language", DataType::Text, Adornment::Input),
            AttributeDef::group(
                "Openings",
                vec![
                    SubAttributeDef::new("Country", DataType::Text, Adornment::Input),
                    SubAttributeDef::new("Date", DataType::Date, Adornment::Input),
                ],
            ),
            AttributeDef::group(
                "Actor",
                vec![SubAttributeDef::new(
                    "Name",
                    DataType::Text,
                    Adornment::Output,
                )],
            ),
        ],
    )
    .expect("static schema is valid");
    ServiceInterface::new(
        "Movie1",
        "Movie",
        schema,
        ServiceKind::Search,
        // 100 relevant movies in chunks of 20, 120 ms per call.
        ServiceStats::new(100.0, 20, 120.0, 1.0).expect("static stats are valid"),
        ScoreDecay::Linear,
    )
    .expect("static interface is valid")
    .with_hint(AttributePath::atomic("Title"), TITLE_DOMAIN)
}

/// Builds the `Theatre1` interface (search, chunks of 5, ranked by
/// distance, linear decay).
pub fn theatre_interface() -> ServiceInterface {
    let schema = ServiceSchema::new(
        "Theatre1",
        vec![
            AttributeDef::atomic("Name", DataType::Text, Adornment::Output),
            AttributeDef::atomic("UAddress", DataType::Text, Adornment::Input),
            AttributeDef::atomic("UCity", DataType::Text, Adornment::Input),
            AttributeDef::atomic("UCountry", DataType::Text, Adornment::Input),
            AttributeDef::atomic("TAddress", DataType::Text, Adornment::Output),
            AttributeDef::atomic("TCity", DataType::Text, Adornment::Output),
            AttributeDef::atomic("TCountry", DataType::Text, Adornment::Output),
            AttributeDef::atomic("TPhone", DataType::Text, Adornment::Output),
            AttributeDef::atomic("Distance", DataType::Float, Adornment::Ranked),
            AttributeDef::group(
                "Movie",
                vec![
                    SubAttributeDef::new("Title", DataType::Text, Adornment::Output),
                    SubAttributeDef::new("StartTimes", DataType::Text, Adornment::Output),
                    SubAttributeDef::new("Duration", DataType::Int, Adornment::Output),
                ],
            ),
        ],
    )
    .expect("static schema is valid");
    ServiceInterface::new(
        "Theatre1",
        "Theatre",
        schema,
        ServiceKind::Search,
        // 25 nearby theatres in chunks of 5, 80 ms per call.
        ServiceStats::new(25.0, 5, 80.0, 1.0).expect("static stats are valid"),
        ScoreDecay::Linear,
    )
    .expect("static interface is valid")
    .with_hint(AttributePath::sub("Movie", "Title"), TITLE_DOMAIN)
    // Local search: results mirror the requested city and country, so
    // an equality filter on them is a no-op (distinct count 1).
    .with_hint(AttributePath::atomic("TCity"), 1)
    .with_hint(AttributePath::atomic("TCountry"), 1)
}

/// Builds the `Restaurant1` interface (search, chunks of 5, ranked by
/// distance then rating, quadratic decay).
pub fn restaurant_interface() -> ServiceInterface {
    let schema = ServiceSchema::new(
        "Restaurant1",
        vec![
            AttributeDef::atomic("Name", DataType::Text, Adornment::Output),
            AttributeDef::atomic("UAddress", DataType::Text, Adornment::Input),
            AttributeDef::atomic("UCity", DataType::Text, Adornment::Input),
            AttributeDef::atomic("UCountry", DataType::Text, Adornment::Input),
            AttributeDef::atomic("RAddress", DataType::Text, Adornment::Output),
            AttributeDef::atomic("RCity", DataType::Text, Adornment::Output),
            AttributeDef::atomic("RCountry", DataType::Text, Adornment::Output),
            AttributeDef::atomic("Phone", DataType::Text, Adornment::Output),
            AttributeDef::atomic("Url", DataType::Text, Adornment::Output),
            AttributeDef::atomic("MapUrl", DataType::Text, Adornment::Output),
            AttributeDef::atomic("Distance", DataType::Float, Adornment::Ranked),
            AttributeDef::atomic("Rating", DataType::Float, Adornment::Ranked),
            AttributeDef::group(
                "Category",
                vec![SubAttributeDef::new(
                    "Name",
                    DataType::Text,
                    Adornment::Input,
                )],
            ),
        ],
    )
    .expect("static schema is valid");
    ServiceInterface::new(
        "Restaurant1",
        "Restaurant",
        schema,
        ServiceKind::Search,
        // 5 candidate restaurants per address in chunks of 5, 60 ms.
        ServiceStats::new(5.0, 5, 60.0, 1.0).expect("static stats are valid"),
        ScoreDecay::Quadratic,
    )
    .expect("static interface is valid")
    .with_hint(AttributePath::atomic("RCity"), 1)
    .with_hint(AttributePath::atomic("RCountry"), 1)
}

/// The `Shows(Movie, Theatre)` connection pattern:
/// `M.Title = T.Movie.Title`, selectivity 2%.
pub fn shows_pattern() -> ConnectionPattern {
    ConnectionPattern::new(
        "Shows",
        "Movie",
        "Theatre",
        vec![JoinPair::eq(
            AttributePath::atomic("Title"),
            AttributePath::sub("Movie", "Title"),
        )],
        SHOWS_SELECTIVITY,
    )
    .expect("static pattern is valid")
}

/// The `DinnerPlace(Theatre, Restaurant)` connection pattern: pipes the
/// theatre's address into the restaurant lookup
/// (`T.TAddress→R.UAddress`, `T.TCity→R.UCity`, `T.TCountry→R.UCountry`),
/// selectivity 40%.
pub fn dinner_place_pattern() -> ConnectionPattern {
    ConnectionPattern::new(
        "DinnerPlace",
        "Theatre",
        "Restaurant",
        vec![
            JoinPair::eq(
                AttributePath::atomic("TAddress"),
                AttributePath::atomic("UAddress"),
            ),
            JoinPair::eq(
                AttributePath::atomic("TCity"),
                AttributePath::atomic("UCity"),
            ),
            JoinPair::eq(
                AttributePath::atomic("TCountry"),
                AttributePath::atomic("UCountry"),
            ),
        ],
        DINNER_SELECTIVITY,
    )
    .expect("static pattern is valid")
}

/// Registers the three services (seeded synthetically) and the two
/// connection patterns into a fresh registry.
///
/// The value domains are wired so the declared selectivities emerge in
/// the data: movie titles and theatre-programme titles share the
/// [`TITLE_DOMAIN`]-sized domain (one theatre programme row per tuple ⇒
/// 2% pairwise match rate), and `Restaurant1` returns an empty list for
/// 60% of piped addresses.
pub fn build_registry(seed: u64) -> Result<ServiceRegistry, ServiceError> {
    build_registry_with_faults(seed, FaultProfile::none())
}

/// Like [`build_registry`], but every service injects faults from the
/// given profile. Each service derives its own decision seed from the
/// profile's (mixed with the service ordinal), so providers do not fail
/// in lockstep — one can be mid-outage while the others answer.
pub fn build_registry_with_faults(
    seed: u64,
    faults: FaultProfile,
) -> Result<ServiceRegistry, ServiceError> {
    let per_service = |ordinal: u64| faults.with_seed(mix(faults.seed, ordinal));
    let mut reg = ServiceRegistry::new();
    let title = ValueDomain::new("title", TITLE_DOMAIN);

    let movie_domains = DomainMap::new().with(AttributePath::atomic("Title"), title.clone());
    let movie = SyntheticService::new(movie_interface(), movie_domains, seed ^ 0x01)
        .with_rows_per_group(2)
        .with_fault_profile(per_service(1));
    reg.register_service(Arc::new(movie))?;

    let theatre_domains = DomainMap::new()
        .with(AttributePath::sub("Movie", "Title"), title)
        .with(AttributePath::atomic("TCity"), ValueDomain::new("city", 8))
        .with(
            AttributePath::atomic("TCountry"),
            ValueDomain::new("country", 3),
        );
    // One programme row per theatre tuple keeps Shows at ≈ 1/50 = 2%.
    // Locality: a search around the user's address returns theatres in
    // the user's own city and country.
    let theatre = SyntheticService::new(theatre_interface(), theatre_domains, seed ^ 0x02)
        .with_rows_per_group(1)
        .with_mirror(
            AttributePath::atomic("TCity"),
            AttributePath::atomic("UCity"),
        )
        .with_mirror(
            AttributePath::atomic("TCountry"),
            AttributePath::atomic("UCountry"),
        )
        .with_fault_profile(per_service(2));
    reg.register_service(Arc::new(theatre))?;

    let restaurant_domains = DomainMap::new()
        .with(AttributePath::atomic("RCity"), ValueDomain::new("city", 8))
        .with(
            AttributePath::atomic("RCountry"),
            ValueDomain::new("country", 3),
        );
    let restaurant = SyntheticService::new(restaurant_interface(), restaurant_domains, seed ^ 0x03)
        .with_empty_rate(1.0 - DINNER_SELECTIVITY)
        .with_mirror(
            AttributePath::atomic("RCity"),
            AttributePath::atomic("UCity"),
        )
        .with_mirror(
            AttributePath::atomic("RCountry"),
            AttributePath::atomic("UCountry"),
        )
        .with_fault_profile(per_service(3));
    reg.register_service(Arc::new(restaurant))?;

    reg.register_pattern(shows_pattern())?;
    reg.register_pattern(dinner_place_pattern())?;
    Ok(reg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::invocation::{Request, Service};
    use seco_model::Value;

    #[test]
    fn adornments_match_the_chapter_listing() {
        let m = movie_interface();
        assert_eq!(
            m.schema.to_string(),
            "Movie1(Title^O, Director^O, Score^R, Year^O, Genres.Genre^I, Language^I, \
             Openings.Country^I, Openings.Date^I, Actor.Name^O)"
        );
        let t = theatre_interface();
        assert!(t.schema.to_string().starts_with(
            "Theatre1(Name^O, UAddress^I, UCity^I, UCountry^I, TAddress^O, TCity^O, TCountry^O"
        ));
        assert!(t.schema.to_string().contains("Distance^R"));
        let r = restaurant_interface();
        assert!(r.schema.to_string().contains("Category.Name^I"));
        assert!(r.schema.to_string().contains("Rating^R"));
    }

    #[test]
    fn statistics_support_the_fig10_arithmetic() {
        // 5 fetches × chunk 20 = first 100 movies.
        let m = movie_interface();
        assert_eq!(m.stats.chunk_size, 20);
        assert_eq!(m.stats.expected_chunks(), 5);
        // 5 fetches × chunk 5 = first 25 theatres.
        let t = theatre_interface();
        assert_eq!(t.stats.chunk_size, 5);
        assert_eq!(t.stats.expected_chunks(), 5);
    }

    #[test]
    fn registry_builds_and_services_answer() {
        let reg = build_registry(42).unwrap();
        assert_eq!(
            reg.service_names(),
            vec!["Movie1", "Restaurant1", "Theatre1"]
        );
        assert_eq!(reg.pattern_names(), vec!["DinnerPlace", "Shows"]);

        let movie = reg.service("Movie1").unwrap();
        let req = Request::unbound()
            .bind(AttributePath::sub("Genres", "Genre"), Value::text("comedy"))
            .bind(AttributePath::atomic("Language"), Value::text("en"))
            .bind(
                AttributePath::sub("Openings", "Country"),
                Value::text("Italy"),
            )
            .bind(
                AttributePath::sub("Openings", "Date"),
                Value::Date(seco_model::Date::new(2009, 6, 1)),
            );
        let resp = movie.fetch(&req).unwrap();
        assert_eq!(resp.len(), 20);
        assert!(resp.has_more());
    }

    #[test]
    fn shows_match_rate_is_about_two_percent() {
        let reg = build_registry(7).unwrap();
        let movie = reg.service("Movie1").unwrap();
        let theatre = reg.service("Theatre1").unwrap();
        let mreq = Request::unbound()
            .bind(AttributePath::sub("Genres", "Genre"), Value::text("drama"))
            .bind(AttributePath::atomic("Language"), Value::text("en"))
            .bind(
                AttributePath::sub("Openings", "Country"),
                Value::text("Italy"),
            )
            .bind(
                AttributePath::sub("Openings", "Date"),
                Value::Date(seco_model::Date::new(2009, 6, 1)),
            );
        let treq = Request::unbound()
            .bind(
                AttributePath::atomic("UAddress"),
                Value::text("via Golgi 42"),
            )
            .bind(AttributePath::atomic("UCity"), Value::text("Milano"))
            .bind(AttributePath::atomic("UCountry"), Value::text("Italy"));
        let mut movies = Vec::new();
        for c in 0..5 {
            movies.extend(movie.fetch(&mreq.at_chunk(c)).unwrap().shared_tuples());
        }
        let mut theatres = Vec::new();
        for c in 0..5 {
            theatres.extend(theatre.fetch(&treq.at_chunk(c)).unwrap().shared_tuples());
        }
        assert_eq!((movies.len(), theatres.len()), (100, 25));
        let mschema = &movie.interface().schema;
        let tschema = &theatre.interface().schema;
        let mut matches = 0usize;
        for m in &movies {
            let title = m
                .first_value_at(mschema, &AttributePath::atomic("Title"))
                .unwrap();
            for t in &theatres {
                let programme = t
                    .values_at(tschema, &AttributePath::sub("Movie", "Title"))
                    .unwrap();
                if programme.contains(&title) {
                    matches += 1;
                }
            }
        }
        let rate = matches as f64 / 2500.0;
        assert!(
            (0.005..0.05).contains(&rate),
            "Shows match rate {rate} not ≈ 2%"
        );
    }

    #[test]
    fn restaurant_empty_rate_is_about_sixty_percent() {
        let reg = build_registry(11).unwrap();
        let rest = reg.service("Restaurant1").unwrap();
        let mut empty = 0;
        for i in 0..100 {
            let req = Request::unbound()
                .bind(
                    AttributePath::atomic("UAddress"),
                    Value::Text(format!("addr-{i}")),
                )
                .bind(AttributePath::atomic("UCity"), Value::text("Milano"))
                .bind(AttributePath::atomic("UCountry"), Value::text("Italy"))
                .bind(AttributePath::sub("Category", "Name"), Value::text("pizza"));
            if rest.fetch(&req).unwrap().is_empty() {
                empty += 1;
            }
        }
        assert!((45..=75).contains(&empty), "empty count {empty} not ≈ 60");
    }
}
