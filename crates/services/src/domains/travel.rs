//! The Fig. 2 scenario: Conference / Weather / Flight / Hotel.
//!
//! "The plan consists first in accessing two exact services named
//! Conference and Weather. Conference is proliferative and produces 20
//! conferences on average, while Weather is selective in the context of
//! the query, because extracted tuples are checked against the condition
//! that the average temperature at the time of the conference must be
//! above 26°C […]. Then, services describing flights to the conference
//! city and hotels within that city are called, and their results are
//! joined according to a given strategy, called merge-scan."

use std::sync::Arc;

use seco_model::{
    Adornment, AttributeDef, AttributePath, ConnectionPattern, DataType, JoinPair, ScoreDecay,
    ServiceInterface, ServiceKind, ServiceSchema, ServiceStats,
};

use crate::error::ServiceError;
use crate::registry::ServiceRegistry;
use crate::synthetic::{mix, DomainMap, FaultProfile, SyntheticService, ValueDomain};

/// Cities domain shared by all four services (joins on City always
/// match when piped, and the Flight/Hotel parallel join matches on the
/// common city).
pub const CITY_DOMAIN: u64 = 12;

/// `Conference1(Topic^I, Name^O, City^O, Date^O)` — exact,
/// proliferative, 20 answers on average (Fig. 3's annotation).
pub fn conference_interface() -> ServiceInterface {
    let schema = ServiceSchema::new(
        "Conference1",
        vec![
            AttributeDef::atomic("Topic", DataType::Text, Adornment::Input),
            AttributeDef::atomic("Name", DataType::Text, Adornment::Output),
            AttributeDef::atomic("City", DataType::Text, Adornment::Output),
            AttributeDef::atomic("Date", DataType::Date, Adornment::Output),
        ],
    )
    .expect("static schema is valid");
    ServiceInterface::new(
        "Conference1",
        "Conference",
        schema,
        ServiceKind::Exact { chunked: false },
        ServiceStats::new(20.0, 20, 150.0, 1.0).expect("static stats are valid"),
        ScoreDecay::Constant(1.0),
    )
    .expect("static interface is valid")
    .with_hint(AttributePath::atomic("City"), CITY_DOMAIN)
}

/// `Weather1(City^I, Date^I, AvgTemp^O)` — exact, one forecast per
/// (city, date); becomes *selective in the context of the query* once
/// the `AvgTemp > 26` selection is applied downstream.
pub fn weather_interface() -> ServiceInterface {
    let schema = ServiceSchema::new(
        "Weather1",
        vec![
            AttributeDef::atomic("City", DataType::Text, Adornment::Input),
            AttributeDef::atomic("Date", DataType::Date, Adornment::Input),
            AttributeDef::atomic("AvgTemp", DataType::Int, Adornment::Output),
        ],
    )
    .expect("static schema is valid");
    ServiceInterface::new(
        "Weather1",
        "Weather",
        schema,
        ServiceKind::Exact { chunked: false },
        ServiceStats::new(1.0, 1, 90.0, 1.0).expect("static stats are valid"),
        ScoreDecay::Constant(1.0),
    )
    .expect("static interface is valid")
    .with_hint(AttributePath::atomic("AvgTemp"), 41)
}

/// `Flight1(To^I, Date^I, Airline^O, Price^O, Convenience^R)` — search,
/// chunks of 10, step decay (the first couple of pages of flight deals
/// hold nearly all the value).
pub fn flight_interface() -> ServiceInterface {
    let schema = ServiceSchema::new(
        "Flight1",
        vec![
            AttributeDef::atomic("To", DataType::Text, Adornment::Input),
            AttributeDef::atomic("Date", DataType::Date, Adornment::Input),
            AttributeDef::atomic("Airline", DataType::Text, Adornment::Output),
            AttributeDef::atomic("Price", DataType::Float, Adornment::Output),
            AttributeDef::atomic("Convenience", DataType::Float, Adornment::Ranked),
        ],
    )
    .expect("static schema is valid");
    ServiceInterface::new(
        "Flight1",
        "Flight",
        schema,
        ServiceKind::Search,
        ServiceStats::new(60.0, 10, 200.0, 1.0).expect("static stats are valid"),
        ScoreDecay::Step {
            h: 2,
            high: 0.95,
            low: 0.1,
        },
    )
    .expect("static interface is valid")
}

/// `Hotel1(City^I, Name^O, Price^O, Rating^R)` — search, chunks of 10,
/// progressive (linear) decay.
pub fn hotel_interface() -> ServiceInterface {
    let schema = ServiceSchema::new(
        "Hotel1",
        vec![
            AttributeDef::atomic("City", DataType::Text, Adornment::Input),
            AttributeDef::atomic("Name", DataType::Text, Adornment::Output),
            AttributeDef::atomic("Price", DataType::Float, Adornment::Output),
            AttributeDef::atomic("Rating", DataType::Float, Adornment::Ranked),
        ],
    )
    .expect("static schema is valid");
    ServiceInterface::new(
        "Hotel1",
        "Hotel",
        schema,
        ServiceKind::Search,
        ServiceStats::new(80.0, 10, 110.0, 1.0).expect("static stats are valid"),
        ScoreDecay::Linear,
    )
    .expect("static interface is valid")
}

/// `Forecast(Conference, Weather)`: pipes `City` and `Date` into the
/// weather lookup.
pub fn forecast_pattern() -> ConnectionPattern {
    ConnectionPattern::new(
        "Forecast",
        "Conference",
        "Weather",
        vec![
            JoinPair::eq(AttributePath::atomic("City"), AttributePath::atomic("City")),
            JoinPair::eq(AttributePath::atomic("Date"), AttributePath::atomic("Date")),
        ],
        1.0,
    )
    .expect("static pattern is valid")
}

/// `ReachedBy(Conference, Flight)`: pipes the conference city/date into
/// the flight search.
pub fn reached_by_pattern() -> ConnectionPattern {
    ConnectionPattern::new(
        "ReachedBy",
        "Conference",
        "Flight",
        vec![
            JoinPair::eq(AttributePath::atomic("City"), AttributePath::atomic("To")),
            JoinPair::eq(AttributePath::atomic("Date"), AttributePath::atomic("Date")),
        ],
        1.0,
    )
    .expect("static pattern is valid")
}

/// `StayAt(Conference, Hotel)`: pipes the conference city into the
/// hotel search.
pub fn stay_at_pattern() -> ConnectionPattern {
    ConnectionPattern::new(
        "StayAt",
        "Conference",
        "Hotel",
        vec![JoinPair::eq(
            AttributePath::atomic("City"),
            AttributePath::atomic("City"),
        )],
        1.0,
    )
    .expect("static pattern is valid")
}

/// `SameTrip(Flight, Hotel)`: the parallel-join condition of Fig. 2 —
/// flight destination equals hotel city.
pub fn same_trip_pattern() -> ConnectionPattern {
    ConnectionPattern::new(
        "SameTrip",
        "Flight",
        "Hotel",
        vec![JoinPair::eq(
            AttributePath::atomic("To"),
            AttributePath::atomic("City"),
        )],
        1.0,
    )
    .expect("static pattern is valid")
}

/// Registers the four services and the patterns into a fresh registry.
pub fn build_registry(seed: u64) -> Result<ServiceRegistry, ServiceError> {
    build_registry_with_faults(seed, FaultProfile::none())
}

/// Like [`build_registry`], but every service injects faults from the
/// given profile (per-service decision seeds, as in the entertainment
/// domain).
pub fn build_registry_with_faults(
    seed: u64,
    faults: FaultProfile,
) -> Result<ServiceRegistry, ServiceError> {
    let per_service = |ordinal: u64| faults.with_seed(mix(faults.seed, ordinal));
    let mut reg = ServiceRegistry::new();
    let city = ValueDomain::new("city", CITY_DOMAIN);

    let conf_domains = DomainMap::new().with(AttributePath::atomic("City"), city.clone());
    reg.register_service(Arc::new(
        SyntheticService::new(conference_interface(), conf_domains, seed ^ 0x11)
            .with_fault_profile(per_service(1)),
    ))?;

    // Weather temperature: uniform over 0..40 °C via a 41-value domain;
    // AvgTemp > 26 then keeps ≈ 1/3 of the tuples — "many of them can be
    // discarded" (Fig. 2 commentary).
    let weather_domains = DomainMap::new().with(
        AttributePath::atomic("AvgTemp"),
        ValueDomain::new("temp", 41),
    );
    reg.register_service(Arc::new(
        SyntheticService::new(weather_interface(), weather_domains, seed ^ 0x12)
            .with_fault_profile(per_service(2)),
    ))?;

    reg.register_service(Arc::new(
        SyntheticService::new(flight_interface(), DomainMap::new(), seed ^ 0x13)
            .with_fault_profile(per_service(3)),
    ))?;
    reg.register_service(Arc::new(
        SyntheticService::new(hotel_interface(), DomainMap::new(), seed ^ 0x14)
            .with_fault_profile(per_service(4)),
    ))?;

    reg.register_pattern(forecast_pattern())?;
    reg.register_pattern(reached_by_pattern())?;
    reg.register_pattern(stay_at_pattern())?;
    reg.register_pattern(same_trip_pattern())?;
    Ok(reg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::invocation::{Request, Service};
    use seco_model::{Date, Value};

    #[test]
    fn conference_produces_twenty_answers() {
        let reg = build_registry(5).unwrap();
        let conf = reg.service("Conference1").unwrap();
        let req = Request::unbound().bind(AttributePath::atomic("Topic"), Value::text("databases"));
        let resp = conf.fetch(&req).unwrap();
        assert_eq!(
            resp.len(),
            20,
            "Conference is proliferative with 20 answers on average"
        );
        assert!(!resp.has_more());
    }

    #[test]
    fn weather_is_selective_under_the_temperature_predicate() {
        let reg = build_registry(5).unwrap();
        let weather = reg.service("Weather1").unwrap();
        let mut kept = 0;
        for i in 0..60 {
            let req = Request::unbound()
                .bind(
                    AttributePath::atomic("City"),
                    Value::Text(format!("city-{}", i % 12)),
                )
                .bind(
                    AttributePath::atomic("Date"),
                    Value::Date(Date::new(2009, 6, (i % 28 + 1) as u8)),
                );
            let resp = weather.fetch(&req).unwrap();
            assert_eq!(resp.len(), 1);
            if let Value::Int(t) = resp.tuples()[0].atomic_at(2) {
                if *t > 26 {
                    kept += 1;
                }
            }
        }
        // ≈ 14/41 of the uniform temperature domain exceeds 26 °C.
        assert!(
            (8..=30).contains(&kept),
            "kept {kept}/60, expected roughly a third"
        );
    }

    #[test]
    fn flight_scores_exhibit_the_declared_step() {
        let reg = build_registry(5).unwrap();
        let flight = reg.service("Flight1").unwrap();
        let req = Request::unbound()
            .bind(AttributePath::atomic("To"), Value::text("city-3"))
            .bind(
                AttributePath::atomic("Date"),
                Value::Date(Date::new(2009, 7, 10)),
            );
        let c1 = flight.fetch(&req.at_chunk(1)).unwrap();
        let c2 = flight.fetch(&req.at_chunk(2)).unwrap();
        assert!(
            c1.tuples().last().unwrap().score > 0.8,
            "inside the h=2 plateau"
        );
        assert!(c2.tuples()[0].score < 0.2, "after the step");
    }

    #[test]
    fn registry_has_all_patterns() {
        let reg = build_registry(5).unwrap();
        assert_eq!(
            reg.pattern_names(),
            vec!["Forecast", "ReachedBy", "SameTrip", "StayAt"]
        );
        assert_eq!(reg.pattern("SameTrip").unwrap().from_mart, "Flight");
    }
}
