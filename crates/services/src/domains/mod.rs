//! Ready-made service scenarios from the chapter.
//!
//! * [`entertainment`] — the running example: `Movie1`, `Theatre1`,
//!   `Restaurant1` with the §5.6 adornments and the `Shows` /
//!   `DinnerPlace` connection patterns (selectivities 2% and 40%).
//! * [`travel`] — the Fig. 2 plan's services: `Conference1` (exact,
//!   proliferative, 20 answers on average), `Weather1` (exact, selective
//!   in the context of the query), `Flight1` and `Hotel1` (search).

pub mod entertainment;
pub mod travel;
