//! Virtual time and latency models.
//!
//! The execution-time and bottleneck cost metrics (§5.1) are defined
//! over elapsed wall-clock time of service calls. Real network latency
//! would make experiments non-reproducible, so services *report* a
//! simulated latency per request-response and executors accumulate it on
//! a [`VirtualClock`]. The threaded executor in `seco-engine` can
//! optionally also sleep for (a scaled-down fraction of) the simulated
//! latency to exercise true pipelining.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Latency model of a service: how long one request-response takes.
///
/// Deterministic-jitter uses a per-call hash rather than an RNG so that
/// latency is a pure function of `(call index)` and runs are repeatable.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LatencyModel {
    /// Every call takes exactly `ms` milliseconds.
    Fixed {
        /// Per-call latency.
        ms: f64,
    },
    /// Calls take `base_ms ± jitter_ms`, varied deterministically by
    /// call index.
    Jittered {
        /// Mean latency.
        base_ms: f64,
        /// Maximum absolute deviation.
        jitter_ms: f64,
    },
    /// Latency grows with the chunk index: `base_ms + per_chunk_ms * c`.
    /// Models services whose deep result pages are slower.
    Paged {
        /// Latency of chunk 0.
        base_ms: f64,
        /// Additional latency per chunk index.
        per_chunk_ms: f64,
    },
}

impl LatencyModel {
    /// Latency of the `call_index`-th call fetching chunk `chunk`.
    pub fn latency_ms(&self, call_index: u64, chunk: usize) -> f64 {
        match *self {
            LatencyModel::Fixed { ms } => ms,
            LatencyModel::Jittered { base_ms, jitter_ms } => {
                // Cheap integer hash -> [-1, 1) deterministic jitter.
                let h = call_index
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .rotate_left(17);
                let unit = (h % 2048) as f64 / 1024.0 - 1.0;
                (base_ms + jitter_ms * unit).max(0.0)
            }
            LatencyModel::Paged {
                base_ms,
                per_chunk_ms,
            } => base_ms + per_chunk_ms * chunk as f64,
        }
    }
}

/// A monotone virtual clock counting simulated microseconds.
///
/// Shared between executors and recorders via `Arc`; advancing is atomic
/// so the threaded executor can account time from several workers.
#[derive(Debug, Default)]
pub struct VirtualClock {
    micros: AtomicU64,
}

impl VirtualClock {
    /// A clock at time zero.
    pub fn new() -> Arc<Self> {
        Arc::new(VirtualClock::default())
    }

    /// Advances the clock by `ms` milliseconds and returns the new time
    /// in milliseconds. Used for *sequential* accounting (sum of call
    /// times along an execution).
    pub fn advance_ms(&self, ms: f64) -> f64 {
        let delta = (ms * 1000.0).round().max(0.0) as u64;
        let new = self.micros.fetch_add(delta, Ordering::Relaxed) + delta;
        new as f64 / 1000.0
    }

    /// Moves the clock forward to at least `ms` milliseconds — used for
    /// *parallel* accounting, where the elapsed time of concurrent calls
    /// is their maximum, not their sum.
    pub fn advance_to_ms(&self, ms: f64) {
        let target = (ms * 1000.0).round().max(0.0) as u64;
        self.micros.fetch_max(target, Ordering::Relaxed);
    }

    /// Current time in milliseconds.
    pub fn now_ms(&self) -> f64 {
        self.micros.load(Ordering::Relaxed) as f64 / 1000.0
    }

    /// Resets to zero (between experiment repetitions).
    pub fn reset(&self) {
        self.micros.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_latency_is_constant() {
        let m = LatencyModel::Fixed { ms: 42.0 };
        assert_eq!(m.latency_ms(0, 0), 42.0);
        assert_eq!(m.latency_ms(99, 7), 42.0);
    }

    #[test]
    fn jitter_is_deterministic_and_bounded() {
        let m = LatencyModel::Jittered {
            base_ms: 100.0,
            jitter_ms: 10.0,
        };
        for i in 0..100 {
            let l = m.latency_ms(i, 0);
            assert!((90.0..=110.0).contains(&l), "latency {l} out of bounds");
            assert_eq!(
                l,
                m.latency_ms(i, 0),
                "same call index must give same latency"
            );
        }
        // Jitter actually varies.
        let distinct: std::collections::BTreeSet<u64> =
            (0..32).map(|i| m.latency_ms(i, 0) as u64).collect();
        assert!(distinct.len() > 1);
    }

    #[test]
    fn paged_latency_grows_with_chunk() {
        let m = LatencyModel::Paged {
            base_ms: 10.0,
            per_chunk_ms: 5.0,
        };
        assert_eq!(m.latency_ms(0, 0), 10.0);
        assert_eq!(m.latency_ms(0, 4), 30.0);
    }

    #[test]
    fn clock_advances_and_maxes() {
        let c = VirtualClock::new();
        assert_eq!(c.now_ms(), 0.0);
        c.advance_ms(1.5);
        assert!((c.now_ms() - 1.5).abs() < 1e-9);
        c.advance_to_ms(1.0); // behind: no-op
        assert!((c.now_ms() - 1.5).abs() < 1e-9);
        c.advance_to_ms(10.0);
        assert!((c.now_ms() - 10.0).abs() < 1e-9);
        c.reset();
        assert_eq!(c.now_ms(), 0.0);
    }

    #[test]
    fn clock_is_thread_safe() {
        let c = VirtualClock::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let c = Arc::clone(&c);
                s.spawn(move || {
                    for _ in 0..1000 {
                        c.advance_ms(1.0);
                    }
                });
            }
        });
        assert!((c.now_ms() - 4000.0).abs() < 1e-9);
    }
}
