//! Runtime statistics accumulation: the observation side of adaptive
//! re-optimization.
//!
//! Declared [`seco_model::ServiceStats`] are estimates fixed at
//! registration time; under real traffic they drift. Every
//! [`CallRecorder`](crate::CallRecorder) feeds a [`StatsAccumulator`]
//! with what actually came back over the wire — per-invocation output
//! cardinality (grouped by binding set, so chunked fetches of the same
//! logical invocation accumulate into one observation), and a chunk
//! latency EWMA. Join stages feed equi-join selectivity observations
//! per connection pattern through
//! [`ServiceRegistry::note_join_observation`](crate::ServiceRegistry::note_join_observation).
//!
//! A [`DeviationPolicy`] decides when an observation has drifted far
//! enough from the declared value that plans derived from the declared
//! statistics should no longer be trusted; the registry then *promotes*
//! the observed values into the effective interface, which rolls
//! [`ServiceRegistry::stats_epoch`](crate::ServiceRegistry::stats_epoch)
//! and thereby invalidates stale `PlanCache` entries for free.

use std::collections::BTreeMap;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

use seco_model::{ServiceInterface, ServiceStats};

use crate::error::ServiceError;
use crate::invocation::{ChunkResponse, Request, Service};

/// Smoothing factor for the chunk-latency EWMA.
const LATENCY_ALPHA: f64 = 0.25;

/// When is an observation "deviant enough" to act on?
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeviationPolicy {
    /// Multiplicative drift ratio that triggers promotion: an observed
    /// value `o` deviates from a declared value `d` when
    /// `max(o, d) / min(o, d) >= threshold` (both clamped away from 0).
    pub threshold: f64,
    /// Minimum number of completed observations (bindings for
    /// cardinality, candidate pairs for selectivity) before the test
    /// may fire; guards against promoting off a single noisy sample.
    pub min_samples: u64,
}

impl Default for DeviationPolicy {
    fn default() -> Self {
        DeviationPolicy {
            threshold: 10.0,
            min_samples: 1,
        }
    }
}

/// Multiplicative drift between an observed and a declared value.
/// Symmetric: 10 observed vs 1 declared and 1 observed vs 10 declared
/// both report 10×.
pub fn drift_ratio(observed: f64, declared: f64) -> f64 {
    let o = observed.max(1e-9);
    let d = declared.max(1e-9);
    (o / d).max(d / o)
}

/// What one logical invocation (one binding set) returned so far.
#[derive(Debug, Clone, Default)]
struct BindingObservation {
    /// Tuples seen per chunk index (re-fetching a chunk overwrites, so
    /// cache replays never double-count).
    chunk_lens: BTreeMap<usize, usize>,
    /// The service reported no further chunks: the total is exact.
    complete: bool,
}

impl BindingObservation {
    fn total(&self) -> u64 {
        self.chunk_lens.values().map(|l| *l as u64).sum()
    }
}

/// Observed-cardinality summary for one service.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ObservedCardinality {
    /// Mean total tuples per invocation over completed bindings, or —
    /// when no binding ever completed — the largest partial total.
    pub value: f64,
    /// Whether `value` is exact (≥1 binding ran to exhaustion) or only
    /// a lower bound (every binding still had chunks outstanding).
    pub exact: bool,
    /// Completed bindings behind an exact value; observed bindings
    /// behind a lower bound.
    pub samples: u64,
}

/// Per-service accumulator of runtime observations.
#[derive(Debug, Default)]
pub struct StatsAccumulator {
    bindings: BTreeMap<u64, BindingObservation>,
    latency_ewma_ms: Option<f64>,
    fetches: u64,
}

impl StatsAccumulator {
    /// Records one chunk fetch: which logical invocation it belongs to,
    /// which chunk index, how many tuples came back, whether the
    /// service reported further chunks, and how long the call took.
    pub fn record_fetch(
        &mut self,
        binding_key: u64,
        chunk: usize,
        len: usize,
        has_more: bool,
        elapsed_ms: f64,
    ) {
        self.fetches += 1;
        let ewma = match self.latency_ewma_ms {
            Some(prev) => prev + LATENCY_ALPHA * (elapsed_ms - prev),
            None => elapsed_ms,
        };
        self.latency_ewma_ms = Some(ewma);
        let obs = self.bindings.entry(binding_key).or_default();
        obs.chunk_lens.insert(chunk, len);
        if !has_more {
            obs.complete = true;
        }
    }

    /// Chunk fetches recorded so far.
    pub fn fetches(&self) -> u64 {
        self.fetches
    }

    /// EWMA of per-chunk latency, if any call was observed.
    pub fn latency_ewma_ms(&self) -> Option<f64> {
        self.latency_ewma_ms
    }

    /// Observed output cardinality per invocation, if any.
    pub fn cardinality(&self) -> Option<ObservedCardinality> {
        let complete: Vec<u64> = self
            .bindings
            .values()
            .filter(|b| b.complete)
            .map(|b| b.total())
            .collect();
        if !complete.is_empty() {
            let sum: u64 = complete.iter().sum();
            return Some(ObservedCardinality {
                value: sum as f64 / complete.len() as f64,
                exact: true,
                samples: complete.len() as u64,
            });
        }
        if self.bindings.is_empty() {
            return None;
        }
        let best = self.bindings.values().map(|b| b.total()).max().unwrap_or(0);
        Some(ObservedCardinality {
            value: best as f64,
            exact: false,
            samples: self.bindings.len() as u64,
        })
    }

    /// Drops all observations (between experiment repetitions).
    pub fn reset(&mut self) {
        self.bindings.clear();
        self.latency_ewma_ms = None;
        self.fetches = 0;
    }
}

/// Observed pair/match counts behind one connection pattern's
/// equi-join selectivity.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct JoinObservation {
    /// Candidate pairs examined (left × right cardinality).
    pub pairs: u64,
    /// Pairs that satisfied the pattern's join predicate(s).
    pub matches: u64,
}

impl JoinObservation {
    /// Observed selectivity, if any pair was examined.
    pub fn selectivity(&self) -> Option<f64> {
        if self.pairs == 0 {
            None
        } else {
            Some(self.matches as f64 / self.pairs as f64)
        }
    }
}

/// Declared-vs-observed snapshot for one service, as dumped by
/// `seco stats`.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceDrift {
    /// Declared (registration-time) average cardinality.
    pub declared_cardinality: f64,
    /// Observed cardinality, if the service was invoked.
    pub observed_cardinality: Option<ObservedCardinality>,
    /// Declared per-request response time.
    pub declared_latency_ms: f64,
    /// Observed per-chunk latency EWMA.
    pub observed_latency_ms: Option<f64>,
    /// Chunk fetches behind the observations.
    pub fetches: u64,
    /// Whether observed statistics have been promoted into the
    /// effective interface (rolling the stats epoch).
    pub promoted: bool,
}

/// A decorator whose *declared* statistics disagree with the data its
/// inner service actually serves — the controlled way to create drift
/// for adaptive-optimization tests and benchmarks. The inner service
/// (typically a [`SyntheticService`](crate::SyntheticService) built
/// from the *true* statistics) generates results as usual; only the
/// interface reported to the registry and optimizer lies.
pub struct MisdeclaredService {
    inner: Arc<dyn Service>,
    declared: ServiceInterface,
}

impl MisdeclaredService {
    /// Wraps `inner`, reporting its interface with `declared_stats`
    /// substituted.
    pub fn new(inner: Arc<dyn Service>, declared_stats: ServiceStats) -> Self {
        let mut declared = inner.interface().clone();
        declared.stats = declared_stats;
        MisdeclaredService { inner, declared }
    }
}

impl Service for MisdeclaredService {
    fn interface(&self) -> &ServiceInterface {
        &self.declared
    }

    fn fetch(&self, request: &Request) -> Result<ChunkResponse, ServiceError> {
        self.inner.fetch(request)
    }
}

/// Stable key identifying the logical invocation of a request: its
/// bindings and range predicates, but *not* the chunk index — every
/// chunk of one invocation lands in the same observation group.
pub fn request_binding_key(request: &Request) -> u64 {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    for (k, v) in &request.bindings {
        k.hash(&mut h);
        v.to_string().hash(&mut h);
    }
    for (k, (op, v)) in &request.ranges {
        k.hash(&mut h);
        op.to_string().hash(&mut h);
        v.to_string().hash(&mut h);
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partial_observations_are_lower_bounds() {
        let mut acc = StatsAccumulator::default();
        acc.record_fetch(1, 0, 10, true, 5.0);
        let card = acc.cardinality().unwrap();
        assert!(!card.exact);
        assert!((card.value - 10.0).abs() < 1e-12);
        // Re-fetching the same chunk must not double-count.
        acc.record_fetch(1, 0, 10, true, 5.0);
        assert!((acc.cardinality().unwrap().value - 10.0).abs() < 1e-12);
        acc.record_fetch(1, 1, 4, true, 5.0);
        assert!((acc.cardinality().unwrap().value - 14.0).abs() < 1e-12);
    }

    #[test]
    fn completed_bindings_give_exact_means() {
        let mut acc = StatsAccumulator::default();
        acc.record_fetch(1, 0, 10, false, 5.0);
        acc.record_fetch(2, 0, 10, true, 5.0);
        acc.record_fetch(2, 1, 10, false, 5.0);
        let card = acc.cardinality().unwrap();
        assert!(card.exact);
        assert_eq!(card.samples, 2);
        assert!((card.value - 15.0).abs() < 1e-12);
    }

    #[test]
    fn latency_ewma_tracks_calls() {
        let mut acc = StatsAccumulator::default();
        assert_eq!(acc.latency_ewma_ms(), None);
        acc.record_fetch(1, 0, 1, false, 100.0);
        assert!((acc.latency_ewma_ms().unwrap() - 100.0).abs() < 1e-12);
        acc.record_fetch(2, 0, 1, false, 200.0);
        assert!((acc.latency_ewma_ms().unwrap() - 125.0).abs() < 1e-12);
        assert_eq!(acc.fetches(), 2);
        acc.reset();
        assert_eq!(acc.fetches(), 0);
        assert_eq!(acc.cardinality(), None);
    }

    #[test]
    fn drift_ratio_is_symmetric() {
        assert!((drift_ratio(20.0, 2.0) - 10.0).abs() < 1e-9);
        assert!((drift_ratio(2.0, 20.0) - 10.0).abs() < 1e-9);
        assert!((drift_ratio(5.0, 5.0) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn join_observation_selectivity() {
        let obs = JoinObservation {
            pairs: 100,
            matches: 25,
        };
        assert!((obs.selectivity().unwrap() - 0.25).abs() < 1e-12);
        assert_eq!(JoinObservation::default().selectivity(), None);
    }
}
