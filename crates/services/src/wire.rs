//! Compact binary encoding of tuples, for transfer-size accounting.
//!
//! §5.1 singles out the request-response cost metric as "particularly
//! relevant when the transfer of data over the network is the dominating
//! cost factor". To let experiments weigh calls by payload size rather
//! than just counting them, every chunk can be framed into a compact
//! binary representation; the [`crate::recorder::CallRecorder`] tracks
//! cumulative bytes per service. The format is a simple self-describing
//! tag-length-value layout — it is an accounting device, not an
//! interchange format.

use bytes::{BufMut, Bytes, BytesMut};

use seco_model::tuple::FieldSlot;
use seco_model::{Tuple, Value};

const TAG_NULL: u8 = 0;
const TAG_BOOL: u8 = 1;
const TAG_INT: u8 = 2;
const TAG_FLOAT: u8 = 3;
const TAG_TEXT: u8 = 4;
const TAG_DATE: u8 = 5;

fn put_value(buf: &mut BytesMut, v: &Value) {
    match v {
        Value::Null => buf.put_u8(TAG_NULL),
        Value::Bool(b) => {
            buf.put_u8(TAG_BOOL);
            buf.put_u8(*b as u8);
        }
        Value::Int(i) => {
            buf.put_u8(TAG_INT);
            buf.put_i64(*i);
        }
        Value::Float(f) => {
            buf.put_u8(TAG_FLOAT);
            buf.put_f64(*f);
        }
        Value::Text(s) => {
            buf.put_u8(TAG_TEXT);
            buf.put_u32(s.len() as u32);
            buf.put_slice(s.as_bytes());
        }
        Value::Date(d) => {
            buf.put_u8(TAG_DATE);
            buf.put_i32(d.year);
            buf.put_u8(d.month);
            buf.put_u8(d.day);
        }
    }
}

/// Encodes a tuple into the wire format.
pub fn encode_tuple(t: &Tuple) -> Bytes {
    let mut buf = BytesMut::with_capacity(64);
    buf.put_f64(t.score);
    buf.put_u32(t.source_rank as u32);
    buf.put_u16(t.fields.len() as u16);
    for slot in &t.fields {
        match slot {
            FieldSlot::Atomic(v) => {
                buf.put_u8(0); // slot kind: atomic
                put_value(&mut buf, v);
            }
            FieldSlot::Group(rows) => {
                buf.put_u8(1); // slot kind: group
                buf.put_u16(rows.len() as u16);
                for row in rows {
                    buf.put_u16(row.values.len() as u16);
                    for v in &row.values {
                        put_value(&mut buf, v);
                    }
                }
            }
        }
    }
    buf.freeze()
}

/// Total encoded size in bytes of a slice of tuples — the payload a
/// chunk would occupy on the wire. Accepts both owned (`&[Tuple]`) and
/// shared (`&[SharedTuple]`) slices.
pub fn chunk_wire_size<T: std::borrow::Borrow<Tuple>>(tuples: &[T]) -> usize {
    // Per-chunk envelope (status line, framing) modelled as a flat 32 bytes.
    32 + tuples
        .iter()
        .map(|t| encode_tuple(t.borrow()).len())
        .sum::<usize>()
}

/// Encoded size of one value, mirroring [`put_value`] byte for byte.
fn value_wire_size(v: &Value) -> usize {
    match v {
        Value::Null => 1,
        Value::Bool(_) => 2,
        Value::Int(_) | Value::Float(_) => 9,
        Value::Text(s) => 5 + s.len(),
        Value::Date(_) => 7,
    }
}

/// Wire size of a whole chunk body, computed straight off the columnar
/// layout when one is present — byte-identical to framing the row view,
/// without materializing it. Row-structured bodies fall back to
/// [`chunk_wire_size`].
pub fn chunk_wire_size_body(body: &crate::invocation::ChunkBody) -> usize {
    use seco_model::{Column, ColumnSlot};
    let Some(cols) = body.columns() else {
        return chunk_wire_size(body.tuples());
    };
    let n = cols.len();
    // Envelope + per-tuple header (score f64, rank u32, field count u16).
    let mut total = 32 + n * (8 + 4 + 2);
    for slot in cols.slots() {
        match slot {
            ColumnSlot::Atomic(col) => {
                // Slot-kind byte plus the tagged value, per row.
                total += n;
                total += match col {
                    Column::Int(_, nulls) | Column::Float(_, nulls) => {
                        let nulled = nulls.count_ones();
                        (n - nulled) * 9 + nulled
                    }
                    Column::Bool(_, nulls) => {
                        let nulled = nulls.count_ones();
                        (n - nulled) * 2 + nulled
                    }
                    Column::Date(_, nulls) => {
                        let nulled = nulls.count_ones();
                        (n - nulled) * 7 + nulled
                    }
                    Column::Text(syms, nulls) => syms
                        .iter()
                        .enumerate()
                        .map(|(i, s)| {
                            if nulls.get(i) {
                                1
                            } else {
                                5 + s.as_str().len()
                            }
                        })
                        .sum(),
                    Column::Mixed(vals) => vals.iter().map(value_wire_size).sum(),
                };
            }
            ColumnSlot::Group(rows) => {
                // Slot-kind byte + row-count u16, then per group row a
                // value-count u16 and the tagged values.
                for r in rows {
                    total += 3 + r
                        .iter()
                        .map(|g| 2 + g.values.iter().map(value_wire_size).sum::<usize>())
                        .sum::<usize>();
                }
            }
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use seco_model::{Adornment, AttributeDef, DataType, Date, ServiceSchema, SubAttributeDef};

    fn schema() -> ServiceSchema {
        ServiceSchema::new(
            "S",
            vec![
                AttributeDef::atomic("A", DataType::Int, Adornment::Output),
                AttributeDef::atomic("B", DataType::Text, Adornment::Output),
                AttributeDef::atomic("C", DataType::Date, Adornment::Output),
                AttributeDef::group(
                    "G",
                    vec![SubAttributeDef::new(
                        "X",
                        DataType::Float,
                        Adornment::Output,
                    )],
                ),
            ],
        )
        .unwrap()
    }

    #[test]
    fn encoding_accounts_for_every_field() {
        let s = schema();
        let small = Tuple::builder(&s).build().unwrap();
        let large = Tuple::builder(&s)
            .set("A", Value::Int(12))
            .set("B", Value::text("a considerably longer text value"))
            .set("C", Value::Date(Date::new(2009, 6, 1)))
            .push_group_row("G", vec![Value::float(1.0)])
            .push_group_row("G", vec![Value::float(2.0)])
            .build()
            .unwrap();
        let se = encode_tuple(&small);
        let le = encode_tuple(&large);
        assert!(le.len() > se.len(), "populated tuple must encode larger");
        // Text payload dominates.
        assert!(le.len() >= "a considerably longer text value".len());
    }

    #[test]
    fn encoding_is_deterministic() {
        let s = schema();
        let t = Tuple::builder(&s).set("A", Value::Int(5)).build().unwrap();
        assert_eq!(encode_tuple(&t), encode_tuple(&t));
    }

    #[test]
    fn chunk_size_includes_envelope() {
        assert_eq!(chunk_wire_size::<Tuple>(&[]), 32);
        let s = schema();
        let t = Tuple::builder(&s).build().unwrap();
        let one = chunk_wire_size(std::slice::from_ref(&t));
        let two = chunk_wire_size(&[t.clone(), t]);
        assert_eq!(
            two - one,
            one - 32,
            "two tuples add exactly twice one tuple's bytes"
        );
    }

    #[test]
    fn columnar_body_size_matches_row_framing() {
        let s = schema();
        let rows: Vec<Tuple> = (0..7)
            .map(|i| {
                Tuple::builder(&s)
                    .set(
                        "A",
                        if i % 3 == 0 {
                            Value::Null
                        } else {
                            Value::Int(i)
                        },
                    )
                    .set("B", Value::text(format!("text-{i}")))
                    .set("C", Value::Date(Date::new(2009, 1, 1 + i as u8)))
                    .push_group_row("G", vec![Value::float(i as f64)])
                    .source_rank(i as usize)
                    .build()
                    .unwrap()
            })
            .collect();
        let body = crate::invocation::ChunkBody::new(rows.clone(), true);
        assert!(body.is_columnar());
        assert_eq!(chunk_wire_size_body(&body), chunk_wire_size(&rows));
        assert!(
            !body.rows_ready(),
            "sizing a columnar body must not materialize its rows"
        );
        // Row-structured bodies agree too (fallback path).
        let shared: Vec<_> = rows.iter().cloned().map(std::sync::Arc::new).collect();
        let row_body = crate::invocation::ChunkBody::from_shared(shared, true);
        assert_eq!(chunk_wire_size_body(&row_body), chunk_wire_size(&rows));
    }

    #[test]
    fn bool_and_null_encode() {
        let s = ServiceSchema::new(
            "B",
            vec![AttributeDef::atomic("F", DataType::Bool, Adornment::Output)],
        )
        .unwrap();
        let t = Tuple::builder(&s)
            .set("F", Value::Bool(true))
            .build()
            .unwrap();
        let n = Tuple::builder(&s).build().unwrap();
        assert!(encode_tuple(&t).len() > encode_tuple(&n).len());
    }
}
