//! Call recording: the observables behind every cost metric.
//!
//! §5.1's metrics are all functions of what happened at the service
//! boundary: how many request-responses were issued per service, how
//! long each took, what they cost, and how many bytes came back. The
//! [`CallRecorder`] decorator wraps any [`Service`] and accumulates
//! exactly those quantities, so executors and experiments never need
//! service-specific instrumentation.

use std::sync::Arc;

use parking_lot::{Mutex, RwLock};

use seco_model::{ServiceInterface, ServiceStats};

use crate::error::ServiceError;
use crate::invocation::{ChunkResponse, Request, Service};
use crate::stats_accumulator::{request_binding_key, ObservedCardinality, StatsAccumulator};
use crate::wire::chunk_wire_size_body;

/// Accumulated statistics of one (wrapped) service.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CallStats {
    /// Request-responses issued (including failed ones).
    pub calls: u64,
    /// Request-responses that returned an error.
    pub failures: u64,
    /// Tuples returned across all calls.
    pub tuples: u64,
    /// Sum of simulated per-call latencies, in milliseconds. Under
    /// sequential execution this is the service's contribution to
    /// elapsed time; under parallel execution the executor tracks
    /// critical-path time separately.
    pub busy_ms: f64,
    /// Maximum single-call latency, in milliseconds (bottleneck metric).
    pub max_call_ms: f64,
    /// Total response payload, in wire bytes.
    pub bytes: u64,
    /// Monetary/abstract cost charged (`cost_per_call × calls`).
    pub charged: f64,
    /// Retry attempts issued by the resilience middleware (a call that
    /// succeeds on its third attempt counts 3 calls and 2 retries).
    pub retries: u64,
    /// Calls abandoned because they exceeded their deadline.
    pub timeouts: u64,
    /// Times the circuit breaker tripped from closed/half-open to open.
    pub breaker_trips: u64,
    /// Calls short-circuited by an open breaker (no request-response
    /// was issued, no time consumed).
    pub short_circuits: u64,
    /// Requests answered from the response cache (no request-response
    /// was issued, no time consumed).
    pub cache_hits: u64,
    /// Requests that coalesced onto another thread's in-flight call
    /// instead of issuing their own (counted separately from hits).
    pub coalesced: u64,
    /// Speculative chunk prefetches issued by the fetch layer.
    pub prefetches: u64,
    /// Deep copies of tuple data performed anywhere in the data plane
    /// (the zero-copy plane keeps this at 0 on cache hits; legacy-style
    /// planes increment it once per copied chunk or row batch).
    pub clone_events: u64,
    /// Wire-equivalent bytes deep-copied by those clone events.
    pub bytes_cloned: u64,
    /// Hash join indexes built over chunks fed by this service.
    pub index_builds: u64,
    /// Join-key bucket lookups probing those indexes.
    pub probes: u64,
    /// Candidate pairs skipped without predicate evaluation.
    pub pairs_skipped: u64,
    /// Whole join tiles skipped by index or score-bound pruning.
    pub tiles_pruned: u64,
    /// Predicate-set evaluations performed by join stages over this
    /// service's tuples.
    pub predicate_evals: u64,
    /// Typed columns scanned (or gathered) by batch predicate kernels
    /// and column-driven index builds.
    pub columns_scanned: u64,
    /// Vectorized predicate-kernel invocations (each covers a whole row
    /// batch; `predicate_evals` still counts the rows inside).
    pub batch_evals: u64,
    /// Rows materialized out of the columnar plane into the row view.
    pub rows_materialized: u64,
    /// Service chunks pulled by join kernels (rank join and the paced
    /// executor both report their call totals here).
    pub chunks_fetched: u64,
    /// Chunks the rank join's threshold bound proved unnecessary,
    /// measured against the full tile space (0 when the space is
    /// unknown).
    pub chunks_saved: u64,
    /// Threshold-bound evaluations performed by the rank join's pull
    /// loop.
    pub bound_checks: u64,
    /// Intermediate composites the n-ary kernel avoided materializing
    /// (rows a binary cascade would have built at internal stages).
    pub intermediates_elided: u64,
    /// Times observed statistics were promoted into this service's
    /// effective interface, rolling the registry's stats epoch (and
    /// with it every cached plan fingerprint).
    pub epoch_invalidations: u64,
    /// Mid-flight suffix re-plans triggered by deviations observed at
    /// this service's stage.
    pub replans: u64,
}

impl serde::Serialize for CallStats {
    fn to_json_value(&self) -> serde::Value {
        serde::Value::Object(vec![
            ("calls".to_string(), self.calls.to_json_value()),
            ("failures".to_string(), self.failures.to_json_value()),
            ("tuples".to_string(), self.tuples.to_json_value()),
            ("busy_ms".to_string(), self.busy_ms.to_json_value()),
            ("max_call_ms".to_string(), self.max_call_ms.to_json_value()),
            ("bytes".to_string(), self.bytes.to_json_value()),
            ("charged".to_string(), self.charged.to_json_value()),
            ("retries".to_string(), self.retries.to_json_value()),
            ("timeouts".to_string(), self.timeouts.to_json_value()),
            (
                "breaker_trips".to_string(),
                self.breaker_trips.to_json_value(),
            ),
            (
                "short_circuits".to_string(),
                self.short_circuits.to_json_value(),
            ),
            ("cache_hits".to_string(), self.cache_hits.to_json_value()),
            ("coalesced".to_string(), self.coalesced.to_json_value()),
            ("prefetches".to_string(), self.prefetches.to_json_value()),
            (
                "clone_events".to_string(),
                self.clone_events.to_json_value(),
            ),
            (
                "bytes_cloned".to_string(),
                self.bytes_cloned.to_json_value(),
            ),
            (
                "index_builds".to_string(),
                self.index_builds.to_json_value(),
            ),
            ("probes".to_string(), self.probes.to_json_value()),
            (
                "pairs_skipped".to_string(),
                self.pairs_skipped.to_json_value(),
            ),
            (
                "tiles_pruned".to_string(),
                self.tiles_pruned.to_json_value(),
            ),
            (
                "predicate_evals".to_string(),
                self.predicate_evals.to_json_value(),
            ),
            (
                "columns_scanned".to_string(),
                self.columns_scanned.to_json_value(),
            ),
            ("batch_evals".to_string(), self.batch_evals.to_json_value()),
            (
                "rows_materialized".to_string(),
                self.rows_materialized.to_json_value(),
            ),
            (
                "chunks_fetched".to_string(),
                self.chunks_fetched.to_json_value(),
            ),
            (
                "chunks_saved".to_string(),
                self.chunks_saved.to_json_value(),
            ),
            (
                "bound_checks".to_string(),
                self.bound_checks.to_json_value(),
            ),
            (
                "intermediates_elided".to_string(),
                self.intermediates_elided.to_json_value(),
            ),
            (
                "epoch_invalidations".to_string(),
                self.epoch_invalidations.to_json_value(),
            ),
            ("replans".to_string(), self.replans.to_json_value()),
        ])
    }
}

impl CallStats {
    /// Mean latency per call, or 0 when no calls were made.
    pub fn mean_call_ms(&self) -> f64 {
        if self.calls == 0 {
            0.0
        } else {
            self.busy_ms / self.calls as f64
        }
    }

    /// Folds another stats record into this one (for aggregating over
    /// services).
    pub fn merge(&mut self, other: &CallStats) {
        self.calls += other.calls;
        self.failures += other.failures;
        self.tuples += other.tuples;
        self.busy_ms += other.busy_ms;
        self.max_call_ms = self.max_call_ms.max(other.max_call_ms);
        self.bytes += other.bytes;
        self.charged += other.charged;
        self.retries += other.retries;
        self.timeouts += other.timeouts;
        self.breaker_trips += other.breaker_trips;
        self.short_circuits += other.short_circuits;
        self.cache_hits += other.cache_hits;
        self.coalesced += other.coalesced;
        self.prefetches += other.prefetches;
        self.clone_events += other.clone_events;
        self.bytes_cloned += other.bytes_cloned;
        self.index_builds += other.index_builds;
        self.probes += other.probes;
        self.pairs_skipped += other.pairs_skipped;
        self.tiles_pruned += other.tiles_pruned;
        self.predicate_evals += other.predicate_evals;
        self.columns_scanned += other.columns_scanned;
        self.batch_evals += other.batch_evals;
        self.rows_materialized += other.rows_materialized;
        self.chunks_fetched += other.chunks_fetched;
        self.chunks_saved += other.chunks_saved;
        self.bound_checks += other.bound_checks;
        self.intermediates_elided += other.intermediates_elided;
        self.epoch_invalidations += other.epoch_invalidations;
        self.replans += other.replans;
    }
}

/// Decorator recording the call statistics of an inner service.
pub struct CallRecorder {
    inner: Arc<dyn Service>,
    stats: Mutex<CallStats>,
    accumulator: Mutex<StatsAccumulator>,
    /// Promoted interface carrying observed statistics. Promotions are
    /// rare (each one rolls the stats epoch), so the replacement
    /// interface is leaked to keep `interface()` returning a plain
    /// reference; `None` means the declared interface is in effect.
    promoted: RwLock<Option<&'static ServiceInterface>>,
}

impl CallRecorder {
    /// Wraps a service.
    pub fn new(inner: Arc<dyn Service>) -> Arc<Self> {
        Arc::new(CallRecorder {
            inner,
            stats: Mutex::new(CallStats::default()),
            accumulator: Mutex::new(StatsAccumulator::default()),
            promoted: RwLock::new(None),
        })
    }

    /// Snapshot of the statistics so far.
    pub fn stats(&self) -> CallStats {
        *self.stats.lock()
    }

    /// Resets the counters (between experiment repetitions).
    pub fn reset(&self) {
        *self.stats.lock() = CallStats::default();
    }

    /// Records a retry attempt issued by the resilience middleware.
    pub fn note_retry(&self) {
        self.stats.lock().retries += 1;
    }

    /// Records a call abandoned for exceeding its deadline.
    pub fn note_timeout(&self) {
        self.stats.lock().timeouts += 1;
    }

    /// Records a closed/half-open → open breaker transition.
    pub fn note_breaker_trip(&self) {
        self.stats.lock().breaker_trips += 1;
    }

    /// Records a call short-circuited by an open breaker.
    pub fn note_short_circuit(&self) {
        self.stats.lock().short_circuits += 1;
    }

    /// Records a request answered from the response cache.
    pub fn note_cache_hit(&self) {
        self.stats.lock().cache_hits += 1;
    }

    /// Records a request coalesced onto an in-flight call.
    pub fn note_coalesced(&self) {
        self.stats.lock().coalesced += 1;
    }

    /// Records a speculative prefetch issued by the fetch layer.
    pub fn note_prefetch(&self) {
        self.stats.lock().prefetches += 1;
    }

    /// Records a deep copy of tuple data (`bytes` in wire-equivalent
    /// size). The zero-copy plane never calls this on its hot paths; it
    /// exists so benchmarks and legacy-style decorators can account for
    /// the copies they make.
    pub fn note_clone(&self, bytes: usize) {
        let mut stats = self.stats.lock();
        stats.clone_events += 1;
        stats.bytes_cloned += bytes as u64;
    }

    /// Records join-kernel work performed over this service's tuples.
    /// Takes raw counters (not a join-layer type) because the join crate
    /// sits above this one in the dependency order.
    #[allow(clippy::too_many_arguments)]
    pub fn note_join_counters(
        &self,
        index_builds: u64,
        probes: u64,
        pairs_skipped: u64,
        tiles_pruned: u64,
        predicate_evals: u64,
        columns_scanned: u64,
        batch_evals: u64,
        rows_materialized: u64,
        chunks_fetched: u64,
        chunks_saved: u64,
        bound_checks: u64,
        intermediates_elided: u64,
    ) {
        let mut stats = self.stats.lock();
        stats.index_builds += index_builds;
        stats.probes += probes;
        stats.pairs_skipped += pairs_skipped;
        stats.tiles_pruned += tiles_pruned;
        stats.predicate_evals += predicate_evals;
        stats.columns_scanned += columns_scanned;
        stats.batch_evals += batch_evals;
        stats.rows_materialized += rows_materialized;
        stats.chunks_fetched += chunks_fetched;
        stats.chunks_saved += chunks_saved;
        stats.bound_checks += bound_checks;
        stats.intermediates_elided += intermediates_elided;
    }

    /// Records a mid-flight suffix re-plan triggered at this service.
    pub fn note_replan(&self) {
        self.stats.lock().replans += 1;
    }

    /// The declared (registration-time) interface, regardless of any
    /// promotion.
    pub fn declared_interface(&self) -> &ServiceInterface {
        self.inner.interface()
    }

    /// Whether observed statistics have been promoted into the
    /// effective interface.
    pub fn is_promoted(&self) -> bool {
        self.promoted.read().is_some()
    }

    /// Observed output cardinality per invocation, if any fetch was
    /// recorded.
    pub fn observed_cardinality(&self) -> Option<ObservedCardinality> {
        self.accumulator.lock().cardinality()
    }

    /// Observed chunk-latency EWMA, if any fetch was recorded.
    pub fn observed_latency_ms(&self) -> Option<f64> {
        self.accumulator.lock().latency_ewma_ms()
    }

    /// Chunk fetches behind the accumulated observations.
    pub fn observed_fetches(&self) -> u64 {
        self.accumulator.lock().fetches()
    }

    /// Drops accumulated observations and reverts to the declared
    /// interface (between experiment repetitions).
    pub fn reset_observed(&self) {
        self.accumulator.lock().reset();
        *self.promoted.write() = None;
    }

    /// Replaces the effective statistics with `stats`, keeping the rest
    /// of the interface. Returns `false` (and promotes nothing) when
    /// the effective statistics already equal `stats`. Each successful
    /// promotion counts one `epoch_invalidations`, because the
    /// registry's stats epoch — and with it every cached plan
    /// fingerprint — changes with the effective statistics.
    pub fn promote_stats(&self, stats: ServiceStats) -> bool {
        let mut slot = self.promoted.write();
        let current = slot.map_or_else(|| self.inner.interface().stats, |p| p.stats);
        if current == stats {
            return false;
        }
        let mut iface = self.inner.interface().clone();
        iface.stats = stats;
        *slot = Some(Box::leak(Box::new(iface)));
        drop(slot);
        self.stats.lock().epoch_invalidations += 1;
        true
    }
}

impl Service for CallRecorder {
    /// The *effective* interface: declared statistics until a
    /// promotion, observed statistics after.
    fn interface(&self) -> &ServiceInterface {
        if let Some(promoted) = *self.promoted.read() {
            return promoted;
        }
        self.inner.interface()
    }

    fn fetch(&self, request: &Request) -> Result<ChunkResponse, ServiceError> {
        let result = self.inner.fetch(request);
        let mut stats = self.stats.lock();
        stats.calls += 1;
        stats.charged += self.inner.interface().stats.cost_per_call;
        match &result {
            Ok(resp) => {
                stats.tuples += resp.len() as u64;
                stats.busy_ms += resp.elapsed_ms;
                stats.max_call_ms = stats.max_call_ms.max(resp.elapsed_ms);
                // Sized off the columnar layout — byte-identical to
                // framing the rows, without materializing the row view.
                stats.bytes += chunk_wire_size_body(resp.body()) as u64;
                drop(stats);
                self.accumulator.lock().record_fetch(
                    request_binding_key(request),
                    request.chunk,
                    resp.len(),
                    resp.has_more(),
                    resp.elapsed_ms,
                );
            }
            Err(_) => stats.failures += 1,
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::{DomainMap, SyntheticService};
    use seco_model::{
        Adornment, AttributeDef, AttributePath, DataType, ScoreDecay, ServiceKind, ServiceSchema,
        ServiceStats, Value,
    };

    fn service() -> Arc<SyntheticService> {
        let schema = ServiceSchema::new(
            "S1",
            vec![
                AttributeDef::atomic("K", DataType::Text, Adornment::Input),
                AttributeDef::atomic("V", DataType::Text, Adornment::Output),
                AttributeDef::atomic("Score", DataType::Float, Adornment::Ranked),
            ],
        )
        .unwrap();
        let iface = ServiceInterface::new(
            "S1",
            "S",
            schema,
            ServiceKind::Search,
            ServiceStats::new(25.0, 10, 40.0, 2.5).unwrap(),
            ScoreDecay::Linear,
        )
        .unwrap();
        Arc::new(SyntheticService::new(iface, DomainMap::new(), 3))
    }

    fn req() -> Request {
        Request::unbound().bind(AttributePath::atomic("K"), Value::text("k"))
    }

    #[test]
    fn records_calls_tuples_time_cost_and_bytes() {
        let rec = CallRecorder::new(service());
        rec.fetch(&req()).unwrap();
        rec.fetch(&req().at_chunk(1)).unwrap();
        let s = rec.stats();
        assert_eq!(s.calls, 2);
        assert_eq!(s.failures, 0);
        assert_eq!(s.tuples, 20);
        assert!((s.busy_ms - 80.0).abs() < 1e-9);
        assert!((s.max_call_ms - 40.0).abs() < 1e-9);
        assert!((s.charged - 5.0).abs() < 1e-9);
        assert!(
            s.bytes > 64,
            "wire bytes should be substantial, got {}",
            s.bytes
        );
        assert!((s.mean_call_ms() - 40.0).abs() < 1e-9);
    }

    #[test]
    fn records_failures() {
        let schema = service().interface().schema.clone();
        let iface = ServiceInterface::new(
            "S1",
            "S",
            schema,
            ServiceKind::Search,
            ServiceStats::new(25.0, 10, 40.0, 1.0).unwrap(),
            ScoreDecay::Linear,
        )
        .unwrap();
        let failing =
            Arc::new(SyntheticService::new(iface, DomainMap::new(), 3).with_failure_every(1));
        let rec = CallRecorder::new(failing);
        assert!(rec.fetch(&req()).is_err());
        let s = rec.stats();
        assert_eq!((s.calls, s.failures, s.tuples), (1, 1, 0));
        // Failed calls still get charged (the provider billed us).
        assert!((s.charged - 1.0).abs() < 1e-9);
    }

    #[test]
    fn reset_clears_counters() {
        let rec = CallRecorder::new(service());
        rec.fetch(&req()).unwrap();
        rec.reset();
        assert_eq!(rec.stats(), CallStats::default());
    }

    #[test]
    fn merge_aggregates() {
        let mut a = CallStats {
            calls: 1,
            failures: 0,
            tuples: 10,
            busy_ms: 5.0,
            max_call_ms: 5.0,
            bytes: 100,
            charged: 1.0,
            ..CallStats::default()
        };
        let b = CallStats {
            calls: 2,
            failures: 1,
            tuples: 4,
            busy_ms: 9.0,
            max_call_ms: 8.0,
            bytes: 50,
            charged: 2.0,
            retries: 3,
            timeouts: 1,
            breaker_trips: 1,
            short_circuits: 2,
            cache_hits: 4,
            coalesced: 2,
            prefetches: 5,
            clone_events: 6,
            bytes_cloned: 640,
            index_builds: 1,
            probes: 7,
            pairs_skipped: 20,
            tiles_pruned: 2,
            predicate_evals: 9,
            columns_scanned: 3,
            batch_evals: 4,
            rows_materialized: 11,
            chunks_fetched: 12,
            chunks_saved: 5,
            bound_checks: 13,
            intermediates_elided: 6,
            epoch_invalidations: 2,
            replans: 1,
        };
        a.merge(&b);
        assert_eq!(a.calls, 3);
        assert_eq!(a.failures, 1);
        assert_eq!(a.tuples, 14);
        assert!((a.busy_ms - 14.0).abs() < 1e-12);
        assert!((a.max_call_ms - 8.0).abs() < 1e-12);
        assert_eq!(a.bytes, 150);
        assert!((a.charged - 3.0).abs() < 1e-12);
        assert_eq!(
            (a.retries, a.timeouts, a.breaker_trips, a.short_circuits),
            (3, 1, 1, 2)
        );
        assert_eq!((a.cache_hits, a.coalesced, a.prefetches), (4, 2, 5));
        assert_eq!((a.clone_events, a.bytes_cloned), (6, 640));
        assert_eq!((a.index_builds, a.probes, a.pairs_skipped), (1, 7, 20));
        assert_eq!((a.tiles_pruned, a.predicate_evals), (2, 9));
        assert_eq!(
            (a.columns_scanned, a.batch_evals, a.rows_materialized),
            (3, 4, 11)
        );
        assert_eq!(
            (
                a.chunks_fetched,
                a.chunks_saved,
                a.bound_checks,
                a.intermediates_elided
            ),
            (12, 5, 13, 6)
        );
        assert_eq!((a.epoch_invalidations, a.replans), (2, 1));
        assert_eq!(CallStats::default().mean_call_ms(), 0.0);
    }

    #[test]
    fn fetches_feed_the_accumulator() {
        let rec = CallRecorder::new(service());
        rec.fetch(&req()).unwrap();
        rec.fetch(&req().at_chunk(1)).unwrap();
        // avg 25, chunk 10: chunks 0 and 1 are full — only a lower
        // bound of 20 is observable so far.
        let card = rec.observed_cardinality().unwrap();
        assert!(!card.exact);
        assert!((card.value - 20.0).abs() < 1e-9);
        rec.fetch(&req().at_chunk(2)).unwrap();
        let card = rec.observed_cardinality().unwrap();
        assert!(card.exact, "final short chunk completes the binding");
        assert!((card.value - 25.0).abs() < 1e-9);
        assert!(rec.observed_latency_ms().is_some());
        assert_eq!(rec.observed_fetches(), 3);
        rec.reset_observed();
        assert_eq!(rec.observed_cardinality(), None);
    }

    #[test]
    fn promotion_swaps_the_effective_interface() {
        let rec = CallRecorder::new(service());
        assert!(!rec.is_promoted());
        let declared = rec.declared_interface().stats;
        // Promoting identical stats is a no-op.
        assert!(!rec.promote_stats(declared));
        assert_eq!(rec.stats().epoch_invalidations, 0);
        let observed = ServiceStats::new(250.0, 10, 40.0, 2.5).unwrap();
        assert!(rec.promote_stats(observed));
        assert!(rec.is_promoted());
        assert!((rec.interface().stats.avg_cardinality - 250.0).abs() < 1e-9);
        assert!((rec.declared_interface().stats.avg_cardinality - 25.0).abs() < 1e-9);
        assert_eq!(rec.stats().epoch_invalidations, 1);
        // Re-promoting the same stats is again a no-op.
        assert!(!rec.promote_stats(observed));
        assert_eq!(rec.stats().epoch_invalidations, 1);
        rec.reset_observed();
        assert!(!rec.is_promoted());
        assert!((rec.interface().stats.avg_cardinality - 25.0).abs() < 1e-9);
    }
}
