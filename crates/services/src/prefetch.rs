//! Speculative chunk prefetch.
//!
//! While a join consumes chunk *c* of a response, the next thing the
//! pipe fetch loop will ask for — under rectangular completion — is
//! chunk *c + 1* of the *same* binding set. A [`Prefetcher`] decorator
//! exploits that: after every successful fetch it warms the next chunk
//! through its target (normally a [`crate::cache::CachingService`]), so
//! the loop's next request is a cache hit or a coalesced wait instead
//! of a synchronous round-trip.
//!
//! Speculation is governed, never unbounded:
//!
//! * the **fetch budget** caps the prefetched chunk index at the plan
//!   node's optimizer-assigned `fetches`, so speculation never issues a
//!   request the optimizer did not already pay for in its cost model;
//! * a response with `has_more == false` ends speculation for that
//!   binding set;
//! * when the target stack carries a circuit breaker
//!   ([`crate::resilience::ServiceClient`]), an **open breaker** mutes
//!   speculation — prefetching into an outage would only feed the
//!   breaker more failures;
//! * in background mode at most `max_inflight` speculative threads run
//!   per node, and they are joined before the prefetcher drops.
//!
//! Two modes match the two executors. **Inline** (deterministic
//! executor): the prefetch runs synchronously on the caller's thread,
//! so virtual-clock accounting and fault schedules stay a pure function
//! of the seed — identical seeds give byte-identical results with
//! prefetch on or off. **Background** (pipelined executor): the
//! prefetch runs on a real thread overlapping the join's own work.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use parking_lot::Mutex;

use seco_model::ServiceInterface;

use crate::cache::CachingService;
use crate::error::ServiceError;
use crate::invocation::{ChunkResponse, Request, Service};
use crate::recorder::CallRecorder;
use crate::resilience::ServiceClient;

/// Decorator that speculatively warms chunk `c + 1` after serving
/// chunk `c`. Wrap it around a caching stack; prefetching through an
/// uncached service would throw the speculative response away.
pub struct Prefetcher {
    target: Arc<dyn Service>,
    /// Fetch budget: chunks `0..budget` may be requested, so the
    /// largest chunk worth prefetching is `budget - 1`.
    budget: usize,
    background: bool,
    max_inflight: usize,
    inflight: Arc<AtomicUsize>,
    breaker: Option<Arc<ServiceClient>>,
    /// Concrete handle on the cache in the target stack (when known):
    /// speculation is skipped for chunks already cached or in flight,
    /// so repeated demand hits don't re-issue no-op speculations.
    probe: Option<Arc<CachingService>>,
    recorder: Option<Arc<CallRecorder>>,
    /// Long-lived shared executor pool to run speculation on (daemon
    /// mode): jobs go to the pool's detached compute tier, bounded by
    /// its backlog. Without one, background speculation spawns
    /// short-lived threads.
    pool: Option<Arc<seco_exec::ExecPool>>,
    /// Set by [`Prefetcher::shutdown`]: no further speculation starts.
    stopped: Arc<AtomicBool>,
    issued: AtomicU64,
    handles: Mutex<Vec<JoinHandle<()>>>,
}

impl Prefetcher {
    /// An inline (synchronous) prefetcher with the given fetch budget.
    pub fn new(target: Arc<dyn Service>, budget: usize) -> Self {
        Prefetcher {
            target,
            budget: budget.max(1),
            background: false,
            max_inflight: 1,
            inflight: Arc::new(AtomicUsize::new(0)),
            breaker: None,
            probe: None,
            recorder: None,
            pool: None,
            stopped: Arc::new(AtomicBool::new(false)),
            issued: AtomicU64::new(0),
            handles: Mutex::new(Vec::new()),
        }
    }

    /// Switches to background mode: speculative fetches run on real
    /// threads, at most `max_inflight` at a time (excess speculation is
    /// dropped, not queued).
    pub fn background(mut self, max_inflight: usize) -> Self {
        self.background = true;
        self.max_inflight = max_inflight.max(1);
        self
    }

    /// Mutes speculation while this client's circuit breaker is open.
    pub fn respecting_breaker(mut self, client: Arc<ServiceClient>) -> Self {
        self.breaker = Some(client);
        self
    }

    /// Skips speculation for chunks `cache` already holds (or is
    /// fetching), keeping the issued-prefetch count meaningful.
    pub fn probing(mut self, cache: Arc<CachingService>) -> Self {
        self.probe = Some(cache);
        self
    }

    /// Counts issued prefetches in a [`CallRecorder`].
    pub fn with_recorder(mut self, recorder: Arc<CallRecorder>) -> Self {
        self.recorder = Some(recorder);
        self
    }

    /// Runs background speculation on the shared
    /// [`seco_exec::ExecPool`] instead of spawning a thread per fetch
    /// (implies background mode). Jobs ride the pool's detached tier —
    /// bounded backlog, drained on shutdown — so speculation never
    /// outlives the engine state owning the pool.
    pub fn via_pool(mut self, pool: Arc<seco_exec::ExecPool>) -> Self {
        self.background = true;
        self.pool = Some(pool);
        self
    }

    /// Stops further speculation and joins any self-spawned threads
    /// (pool-submitted jobs are the pool's to finish). Idempotent.
    pub fn shutdown(&self) {
        self.stopped.store(true, Ordering::Release);
        self.wait_idle();
    }

    /// Speculative fetches issued so far.
    pub fn issued(&self) -> u64 {
        self.issued.load(Ordering::Relaxed)
    }

    /// Joins every outstanding background prefetch.
    pub fn wait_idle(&self) {
        let handles = std::mem::take(&mut *self.handles.lock());
        for h in handles {
            let _ = h.join();
        }
    }

    fn speculate(&self, request: &Request, response: &ChunkResponse) {
        let next = request.chunk + 1;
        if self.stopped.load(Ordering::Acquire) || !response.has_more() || next >= self.budget {
            return;
        }
        if let Some(client) = &self.breaker {
            if client.breaker_is_open() {
                return;
            }
        }
        if let Some(cache) = &self.probe {
            if cache.contains(&request.at_chunk(next)) {
                return;
            }
        }
        if self.background {
            // Reserve an in-flight slot; over-budget speculation is
            // simply skipped.
            let reserved = self
                .inflight
                .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| {
                    (n < self.max_inflight).then_some(n + 1)
                });
            if reserved.is_err() {
                return;
            }
            let target = Arc::clone(&self.target);
            let inflight = Arc::clone(&self.inflight);
            let stopped = Arc::clone(&self.stopped);
            let next_request = request.at_chunk(next);
            let job = move || {
                // Errors are the speculation's to absorb: the demand
                // fetch will surface them if they persist. A stop
                // raced in after submission skips the fetch.
                if !stopped.load(Ordering::Acquire) {
                    let _ = target.fetch(&next_request);
                }
                inflight.fetch_sub(1, Ordering::SeqCst);
            };
            match &self.pool {
                Some(pool) => {
                    if pool.submit(job) {
                        self.note_issued();
                    } else {
                        self.inflight.fetch_sub(1, Ordering::SeqCst);
                    }
                }
                None => {
                    self.note_issued();
                    let handle = std::thread::spawn(job);
                    let mut handles = self.handles.lock();
                    // Reap finished speculations so a long-lived
                    // prefetcher never accumulates dead JoinHandles.
                    handles.retain(|h| !h.is_finished());
                    handles.push(handle);
                }
            }
        } else {
            self.note_issued();
            let _ = self.target.fetch(&request.at_chunk(next));
        }
    }

    fn note_issued(&self) {
        self.issued.fetch_add(1, Ordering::Relaxed);
        if let Some(rec) = &self.recorder {
            rec.note_prefetch();
        }
    }
}

impl Drop for Prefetcher {
    fn drop(&mut self) {
        self.wait_idle();
    }
}

impl Service for Prefetcher {
    fn interface(&self) -> &ServiceInterface {
        self.target.interface()
    }

    fn fetch(&self, request: &Request) -> Result<ChunkResponse, ServiceError> {
        let result = self.target.fetch(request);
        if let Ok(response) = &result {
            self.speculate(request, response);
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::CachingService;
    use crate::synthetic::{DomainMap, SyntheticService};
    use seco_model::{
        Adornment, AttributeDef, AttributePath, DataType, ScoreDecay, ServiceKind, ServiceSchema,
        ServiceStats, Value,
    };

    fn service() -> Arc<SyntheticService> {
        let schema = ServiceSchema::new(
            "S1",
            vec![
                AttributeDef::atomic("K", DataType::Text, Adornment::Input),
                AttributeDef::atomic("V", DataType::Text, Adornment::Output),
                AttributeDef::atomic("Score", DataType::Float, Adornment::Ranked),
            ],
        )
        .unwrap();
        // 30 tuples at chunk size 10: chunks 0..2 exist, has_more until 2.
        let iface = ServiceInterface::new(
            "S1",
            "S",
            schema,
            ServiceKind::Search,
            ServiceStats::new(30.0, 10, 40.0, 1.0).unwrap(),
            ScoreDecay::Linear,
        )
        .unwrap();
        Arc::new(SyntheticService::new(iface, DomainMap::new(), 3))
    }

    fn req(k: &str) -> Request {
        Request::unbound().bind(AttributePath::atomic("K"), Value::text(k))
    }

    #[test]
    fn inline_prefetch_warms_the_next_chunk() {
        let inner = service();
        let cache = Arc::new(CachingService::new(inner.clone(), 64));
        let pf = Prefetcher::new(cache.clone(), 3);
        pf.fetch(&req("x")).unwrap();
        assert_eq!(pf.issued(), 1);
        assert_eq!(inner.calls_served(), 2, "chunk 0 demanded, chunk 1 warmed");
        // The demand fetch of chunk 1 is now a hit…
        let warm = pf.fetch(&req("x").at_chunk(1)).unwrap();
        assert_eq!(warm.elapsed_ms, 0.0);
        assert_eq!(cache.hits(), 1);
        // …and it speculated chunk 2 in turn.
        assert_eq!(inner.calls_served(), 3);
    }

    #[test]
    fn probing_skips_already_cached_chunks() {
        let inner = service();
        let cache = Arc::new(CachingService::new(inner.clone(), 64));
        let pf = Prefetcher::new(cache.clone(), 3).probing(cache.clone());
        pf.fetch(&req("x")).unwrap();
        assert_eq!(pf.issued(), 1);
        // Serving chunk 0 again is a cache hit, and chunk 1 is already
        // warm: the probe suppresses a redundant speculation.
        pf.fetch(&req("x")).unwrap();
        assert_eq!(pf.issued(), 1);
        assert_eq!(inner.calls_served(), 2);
    }

    #[test]
    fn prefetch_respects_the_fetch_budget() {
        let inner = service();
        let cache = Arc::new(CachingService::new(inner.clone(), 64));
        let pf = Prefetcher::new(cache, 1);
        pf.fetch(&req("x")).unwrap();
        assert_eq!(pf.issued(), 0, "budget 1 leaves no chunk to speculate");
        assert_eq!(inner.calls_served(), 1);
    }

    #[test]
    fn terminal_chunks_end_speculation() {
        let inner = service();
        let cache = Arc::new(CachingService::new(inner.clone(), 64));
        let pf = Prefetcher::new(cache, 10);
        // Chunk 2 is the last one (30 tuples / chunk 10): fetching it
        // reports has_more = false and must not speculate chunk 3.
        pf.fetch(&req("x").at_chunk(2)).unwrap();
        assert_eq!(pf.issued(), 0);
        assert_eq!(inner.calls_served(), 1);
    }

    #[test]
    fn background_prefetch_joins_before_drop() {
        let inner = service();
        let cache = Arc::new(CachingService::new(inner.clone(), 64));
        {
            let pf = Prefetcher::new(cache.clone(), 3).background(2);
            pf.fetch(&req("x")).unwrap();
            assert_eq!(pf.issued(), 1);
        } // drop joins the speculative thread
        assert_eq!(inner.calls_served(), 2);
        // The speculated chunk really landed in the cache.
        let warm = cache.fetch(&req("x").at_chunk(1)).unwrap();
        assert_eq!(warm.elapsed_ms, 0.0);
    }

    #[test]
    fn pooled_prefetch_lands_in_the_cache() {
        let inner = service();
        let cache = Arc::new(CachingService::new(inner.clone(), 64));
        let pool = Arc::new(seco_exec::ExecPool::new(2));
        let pf = Prefetcher::new(cache.clone(), 3).via_pool(pool.clone());
        pf.fetch(&req("x")).unwrap();
        assert_eq!(pf.issued(), 1);
        // The pool, not the prefetcher, owns the speculation thread.
        assert!(pf.handles.lock().is_empty());
        // Shutdown drains queued detached jobs before joining.
        pool.shutdown();
        assert_eq!(pool.stats().detached_submitted, 1);
        assert_eq!(pool.threads_alive(), 0);
        assert_eq!(inner.calls_served(), 2, "chunk 0 demanded, chunk 1 warmed");
        let warm = cache.fetch(&req("x").at_chunk(1)).unwrap();
        assert_eq!(warm.elapsed_ms, 0.0);
    }

    #[test]
    fn pool_shutdown_refuses_new_speculation_jobs() {
        let pool = Arc::new(seco_exec::ExecPool::new(2));
        assert_eq!(pool.threads_alive(), 2);
        pool.shutdown();
        assert_eq!(pool.threads_alive(), 0);
        // Post-shutdown submission is rejected, not queued forever.
        assert!(!pool.submit(|| {}));
        assert_eq!(pool.stats().detached_rejected, 1);
    }

    #[test]
    fn prefetcher_shutdown_mutes_speculation() {
        let inner = service();
        let cache = Arc::new(CachingService::new(inner.clone(), 64));
        let pf = Prefetcher::new(cache, 3);
        pf.shutdown();
        pf.fetch(&req("x")).unwrap();
        assert_eq!(pf.issued(), 0, "stopped prefetcher must not speculate");
        assert_eq!(inner.calls_served(), 1);
    }

    #[test]
    fn open_breaker_mutes_speculation() {
        use crate::synthetic::FaultProfile;
        let schema = service().interface().schema.clone();
        let iface = ServiceInterface::new(
            "S1",
            "S",
            schema,
            ServiceKind::Search,
            ServiceStats::new(30.0, 10, 40.0, 1.0).unwrap(),
            ScoreDecay::Linear,
        )
        .unwrap();
        let downed = Arc::new(
            SyntheticService::new(iface, DomainMap::new(), 3).with_fault_profile(FaultProfile {
                outage: Some((0, u64::MAX)),
                ..FaultProfile::none()
            }),
        );
        let client = Arc::new(
            ServiceClient::for_service(downed)
                .retries(0)
                .breaker(1, 60_000.0)
                .build(),
        );
        assert!(client.fetch(&req("x")).is_err());
        assert!(client.breaker_is_open());
        let cache = Arc::new(CachingService::new(client.clone(), 64));
        let pf = Prefetcher::new(cache, 3).respecting_breaker(client);
        // A synthetic "success" path cannot be exercised against a hard
        // outage, so drive speculate() directly: with the breaker open
        // it must refuse to issue.
        pf.speculate(&req("x"), &ChunkResponse::new(Vec::new(), true, 1.0));
        assert_eq!(pf.issued(), 0);
    }
}
