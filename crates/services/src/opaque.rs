//! Opaque rankings (§3.1, footnote 3).
//!
//! "The case of opaque rankings can be dealt with by associating the
//! position of tuples in the result with a new attribute and then
//! translating the position into a score in the [0..1] interval."
//!
//! Two decorators implement the footnote:
//!
//! * [`OpaqueRanking`] simulates a search engine that returns results
//!   in relevance order but *publishes no scores* — tuples come back
//!   with a constant score (their order is the only ranking signal);
//! * [`PositionScored`] recovers usable scores from positions:
//!   `score(i) = 1 − i / assumed_total`, so downstream join strategies
//!   and the global ranking function work unchanged.

use std::sync::Arc;

use seco_model::ServiceInterface;

use crate::error::ServiceError;
use crate::invocation::{ChunkResponse, Request, Service};

/// Hides the inner service's scores (the ranking stays implicit in the
/// result order).
pub struct OpaqueRanking {
    inner: Arc<dyn Service>,
}

impl OpaqueRanking {
    /// Wraps a service.
    pub fn new(inner: Arc<dyn Service>) -> Self {
        OpaqueRanking { inner }
    }
}

impl Service for OpaqueRanking {
    fn interface(&self) -> &ServiceInterface {
        self.inner.interface()
    }

    fn fetch(&self, request: &Request) -> Result<ChunkResponse, ServiceError> {
        let resp = self.inner.fetch(request)?;
        // All scores collapse to 1: order is preserved, magnitude is gone.
        // Rewriting scores is the one place the data plane deep-copies a
        // chunk; it runs below the cache, once per distinct request.
        Ok(resp.map_tuples(|t| {
            let mut t = t.clone();
            t.score = 1.0;
            t
        }))
    }
}

/// Re-derives scores from result positions.
pub struct PositionScored {
    inner: Arc<dyn Service>,
    /// Assumed total length of the ranked list; positions are
    /// normalised against it. Defaults to the interface's expected
    /// cardinality.
    assumed_total: usize,
}

impl PositionScored {
    /// Wraps a service, assuming its expected cardinality as the list
    /// length.
    pub fn new(inner: Arc<dyn Service>) -> Self {
        let assumed_total = inner.interface().stats.avg_cardinality.round().max(1.0) as usize;
        PositionScored {
            inner,
            assumed_total,
        }
    }

    /// Overrides the assumed total list length.
    pub fn with_assumed_total(mut self, total: usize) -> Self {
        self.assumed_total = total.max(1);
        self
    }

    /// The position-to-score translation of the footnote.
    fn score_of_position(&self, position: usize) -> f64 {
        (1.0 - position as f64 / self.assumed_total as f64).clamp(0.0, 1.0)
    }
}

impl Service for PositionScored {
    fn interface(&self) -> &ServiceInterface {
        self.inner.interface()
    }

    fn fetch(&self, request: &Request) -> Result<ChunkResponse, ServiceError> {
        let chunk_size = self.inner.interface().stats.chunk_size;
        let resp = self.inner.fetch(request)?;
        let mut offset = 0;
        Ok(resp.map_tuples(|t| {
            let position = request.chunk * chunk_size + offset;
            offset += 1;
            let mut t = t.clone();
            t.source_rank = position;
            t.score = self.score_of_position(position);
            t
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::{DomainMap, SyntheticService};
    use seco_model::{
        Adornment, AttributeDef, AttributePath, DataType, ScoreDecay, ServiceKind, ServiceSchema,
        ServiceStats, Value,
    };

    fn search_service() -> Arc<SyntheticService> {
        let schema = ServiceSchema::new(
            "S1",
            vec![
                AttributeDef::atomic("K", DataType::Text, Adornment::Input),
                AttributeDef::atomic("V", DataType::Text, Adornment::Output),
                AttributeDef::atomic("Score", DataType::Float, Adornment::Ranked),
            ],
        )
        .unwrap();
        let iface = ServiceInterface::new(
            "S1",
            "S",
            schema,
            ServiceKind::Search,
            ServiceStats::new(25.0, 10, 10.0, 1.0).unwrap(),
            ScoreDecay::Quadratic,
        )
        .unwrap();
        Arc::new(SyntheticService::new(iface, DomainMap::new(), 5))
    }

    fn req() -> Request {
        Request::unbound().bind(AttributePath::atomic("K"), Value::text("q"))
    }

    #[test]
    fn opaque_ranking_flattens_scores_but_keeps_order() {
        let inner = search_service();
        let plain = inner.fetch(&req()).unwrap();
        let opaque = OpaqueRanking::new(inner).fetch(&req()).unwrap();
        assert_eq!(plain.len(), opaque.len());
        assert!(opaque.tuples().iter().all(|t| t.score == 1.0));
        // Payload unchanged.
        assert_eq!(
            plain.tuples()[3].atomic_at(1),
            opaque.tuples()[3].atomic_at(1)
        );
    }

    #[test]
    fn position_scored_restores_monotone_scores() {
        let opaque: Arc<dyn Service> = Arc::new(OpaqueRanking::new(search_service()));
        let scored = PositionScored::new(opaque);
        let c0 = scored.fetch(&req()).unwrap();
        let c1 = scored.fetch(&req().at_chunk(1)).unwrap();
        let mut prev = f64::INFINITY;
        for t in c0.tuples().iter().chain(c1.tuples()) {
            assert!(t.score <= prev);
            assert!((0.0..=1.0).contains(&t.score));
            prev = t.score;
        }
        // Positions carry across chunks.
        assert_eq!(c1.tuples()[0].source_rank, 10);
        // First chunk's head has the best score.
        assert_eq!(c0.tuples()[0].score, 1.0);
    }

    #[test]
    fn assumed_total_controls_decay_speed() {
        let opaque: Arc<dyn Service> = Arc::new(OpaqueRanking::new(search_service()));
        let fast = PositionScored::new(opaque).with_assumed_total(10);
        let last_of_first_chunk = fast.fetch(&req()).unwrap().tuples()[9].score;
        assert!(
            last_of_first_chunk <= 0.1 + 1e-12,
            "position 9 of 10 scores near 0"
        );
    }
}
