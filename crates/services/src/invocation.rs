//! The request-response invocation interface of services.
//!
//! A *request-response* (the chapter's unit of interaction and of cost)
//! binds every input attribute of the access pattern and asks for one
//! chunk of the result. Search services answer the `c`-th chunk of their
//! ranked list; chunked exact services answer the `c`-th chunk of their
//! unranked result; non-chunked exact services only answer chunk 0 with
//! the whole result.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::{Arc, OnceLock};

use seco_model::{
    AttributePath, ChunkColumns, ColumnRef, ServiceInterface, SharedTuple, Tuple, Value,
};

use crate::error::ServiceError;

/// Input bindings of a service call: a value for each `I`-adorned path.
///
/// Uses a `BTreeMap` so the binding set has a canonical order — the
/// synthetic generator hashes it to derive the deterministic per-call
/// seed, and the cache's [`crate::cache::RequestKey`] fingerprint is
/// insertion-order independent by construction.
pub type Bindings = BTreeMap<AttributePath, Value>;

/// Non-equality constraints shipped with a request: `path op value`.
///
/// §3.1's running example binds `Movie1.Openings.Date` with a `>`
/// predicate; the access pattern still demands a value for that input,
/// but the service interprets it as a range ("openings after this
/// date"), not an exact key. Constraints participate in the request's
/// identity (determinism, caching) and in [`Service::check_bindings`].
pub type Ranges = BTreeMap<AttributePath, (seco_model::Comparator, Value)>;

/// One request-response to a service.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Equality values for the service's input attributes.
    pub bindings: Bindings,
    /// Non-equality constraints on input attributes.
    pub ranges: Ranges,
    /// 0-based chunk index (the "fetch"); must be 0 for non-chunked
    /// services.
    pub chunk: usize,
}

impl Request {
    /// Request for the first chunk under the given bindings.
    pub fn first(bindings: Bindings) -> Self {
        Request {
            bindings,
            ranges: Ranges::new(),
            chunk: 0,
        }
    }

    /// Request with no bindings (for services whose access pattern has
    /// no input attributes).
    pub fn unbound() -> Self {
        Request {
            bindings: Bindings::new(),
            ranges: Ranges::new(),
            chunk: 0,
        }
    }

    /// Returns a copy of this request addressing chunk `chunk`.
    pub fn at_chunk(&self, chunk: usize) -> Self {
        Request {
            bindings: self.bindings.clone(),
            ranges: self.ranges.clone(),
            chunk,
        }
    }

    /// Convenience: inserts one equality binding, builder-style.
    pub fn bind(mut self, path: AttributePath, value: Value) -> Self {
        self.bindings.insert(path, value);
        self
    }

    /// Convenience: inserts one range constraint, builder-style.
    pub fn constrain(
        mut self,
        path: AttributePath,
        op: seco_model::Comparator,
        value: Value,
    ) -> Self {
        self.ranges.insert(path, (op, value));
        self
    }
}

impl fmt::Display for Request {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "chunk {} with {{", self.chunk)?;
        for (i, (k, v)) in self.bindings.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{k}={v}")?;
        }
        write!(f, "}}")
    }
}

/// The immutable payload of one result chunk, shared by every consumer.
///
/// A body is built once — by the producing service — and then travels the
/// data plane behind an `Arc`: the cache stores the same body it hands to
/// hits, coalesced waiters receive the leader's body, and join pipes index
/// into it through [`SharedTuple`] handles. Nothing downstream mutates it.
///
/// Storage is *columnar*: tuples produced by a service decompose into
/// per-attribute typed columns with null masks ([`ChunkColumns`]), which
/// the batch predicate kernels and the hash-index builder read directly
/// through [`ChunkBody::column`]. The row view ([`ChunkBody::tuples`]) is
/// materialized lazily, at most once, so `SharedTuple` consumers keep
/// working unchanged; chunks whose tuples do not share one field layout
/// (and bodies built from already-shared rows) stay row-structured.
#[derive(Debug)]
pub struct ChunkBody {
    /// Columnar payload; `None` for row-structured bodies.
    columns: Option<ChunkColumns>,
    /// Lazily materialized row view (seeded eagerly for row-structured
    /// bodies).
    rows: OnceLock<Vec<SharedTuple>>,
    /// Whether further chunks exist under the same bindings.
    pub has_more: bool,
    /// Score of the chunk's head tuple (1.0 for empty chunks) — the
    /// §4.1 *representative* of the chunk, cached here so tile extraction
    /// never rescans tuples to price a tile.
    pub head_score: f64,
}

impl ChunkBody {
    /// Builds a body from owned tuples, decomposing them into columns
    /// (falling back to row storage when the tuples do not share one
    /// field-slot layout) and caching the head score.
    pub fn new(tuples: Vec<Tuple>, has_more: bool) -> Self {
        let head_score = tuples.first().map_or(1.0, |t| t.score);
        match ChunkColumns::from_tuples(&tuples) {
            Some(columns) => ChunkBody {
                columns: Some(columns),
                rows: OnceLock::new(),
                has_more,
                head_score,
            },
            None => {
                let rows = OnceLock::new();
                let _ = rows.set(tuples.into_iter().map(Arc::new).collect());
                ChunkBody {
                    columns: None,
                    rows,
                    has_more,
                    head_score,
                }
            }
        }
    }

    /// Builds a body from already-shared tuples; these stay the row view
    /// (re-columnarizing shared rows would copy the data they alias).
    pub fn from_shared(tuples: Vec<SharedTuple>, has_more: bool) -> Self {
        let head_score = tuples.first().map_or(1.0, |t| t.score);
        let rows = OnceLock::new();
        let _ = rows.set(tuples);
        ChunkBody {
            columns: None,
            rows,
            has_more,
            head_score,
        }
    }

    /// The row view, in ranking order for search services. For columnar
    /// bodies this materializes the rows on first access and caches them.
    pub fn tuples(&self) -> &[SharedTuple] {
        self.rows.get_or_init(|| {
            self.columns
                .as_ref()
                .map(|c| c.materialize_rows().into_iter().map(Arc::new).collect())
                .unwrap_or_default()
        })
    }

    /// The columnar payload, when this body is columnar.
    pub fn columns(&self) -> Option<&ChunkColumns> {
        self.columns.as_ref()
    }

    /// Typed handle for the atomic column at schema position `field` —
    /// the redesigned access path of the batch kernels. `None` for
    /// row-structured bodies and for group slots.
    pub fn column(&self, field: usize) -> Option<ColumnRef<'_>> {
        self.columns.as_ref()?.column(field)
    }

    /// True when the body stores columns (the row view may or may not
    /// have been materialized yet).
    pub fn is_columnar(&self) -> bool {
        self.columns.is_some()
    }

    /// True when the row view has already been materialized (or the body
    /// was row-structured from the start). Callers use the transition to
    /// account `rows_materialized`.
    pub fn rows_ready(&self) -> bool {
        self.rows.get().is_some()
    }

    /// Number of tuples, without materializing the row view.
    pub fn len(&self) -> usize {
        match &self.columns {
            Some(c) => c.len(),
            None => self.rows.get().map_or(0, |r| r.len()),
        }
    }

    /// True when the chunk carries no tuples.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl PartialEq for ChunkBody {
    fn eq(&self, other: &Self) -> bool {
        self.has_more == other.has_more
            && self.head_score == other.head_score
            && self.tuples() == other.tuples()
    }
}

/// One chunk of results returned by a service call.
///
/// The tuple payload lives in an `Arc`-shared [`ChunkBody`]; cloning a
/// response is O(1) regardless of chunk size. Only `elapsed_ms` is
/// per-delivery state (a cache hit re-delivers the same body with zero
/// elapsed time).
#[derive(Debug, Clone, PartialEq)]
pub struct ChunkResponse {
    body: Arc<ChunkBody>,
    /// Simulated elapsed time of this request-response, in milliseconds.
    pub elapsed_ms: f64,
}

impl ChunkResponse {
    /// A response owning freshly produced tuples.
    pub fn new(tuples: Vec<Tuple>, has_more: bool, elapsed_ms: f64) -> Self {
        ChunkResponse {
            body: Arc::new(ChunkBody::new(tuples, has_more)),
            elapsed_ms,
        }
    }

    /// A response over already-shared tuples.
    pub fn from_shared(tuples: Vec<SharedTuple>, has_more: bool, elapsed_ms: f64) -> Self {
        ChunkResponse {
            body: Arc::new(ChunkBody::from_shared(tuples, has_more)),
            elapsed_ms,
        }
    }

    /// A response re-delivering an existing body (cache hits, coalesced
    /// waiters). O(1) in the size of the chunk.
    pub fn from_body(body: Arc<ChunkBody>, elapsed_ms: f64) -> Self {
        ChunkResponse { body, elapsed_ms }
    }

    /// An empty terminal chunk.
    pub fn empty(elapsed_ms: f64) -> Self {
        ChunkResponse::new(Vec::new(), false, elapsed_ms)
    }

    /// The shared body.
    pub fn body(&self) -> &Arc<ChunkBody> {
        &self.body
    }

    /// The tuples of this chunk, in ranking order for search services.
    /// Materializes the row view of a columnar body on first access.
    pub fn tuples(&self) -> &[SharedTuple] {
        self.body.tuples()
    }

    /// Shared handles to the tuples (O(1) per tuple — refcount bumps).
    pub fn shared_tuples(&self) -> Vec<SharedTuple> {
        self.body.tuples().to_vec()
    }

    /// Whether further chunks exist under the same bindings.
    pub fn has_more(&self) -> bool {
        self.body.has_more
    }

    /// Cached score of the chunk's head tuple (the §4.1 representative).
    pub fn head_score(&self) -> f64 {
        self.body.head_score
    }

    /// Same body, different delivery time (cache hits report 0 ms).
    pub fn with_elapsed(&self, elapsed_ms: f64) -> Self {
        ChunkResponse {
            body: self.body.clone(),
            elapsed_ms,
        }
    }

    /// Rebuilds the response with each tuple transformed — the one
    /// deep-copying escape hatch, used by ranking decorators that rewrite
    /// scores below the cache.
    pub fn map_tuples(&self, mut f: impl FnMut(&Tuple) -> Tuple) -> Self {
        ChunkResponse::new(
            self.body.tuples().iter().map(|t| f(t)).collect(),
            self.body.has_more,
            self.elapsed_ms,
        )
    }

    /// Number of tuples in the chunk (no row materialization).
    pub fn len(&self) -> usize {
        self.body.len()
    }

    /// True when the chunk carries no tuples.
    pub fn is_empty(&self) -> bool {
        self.body.is_empty()
    }
}

/// An invocable service implementation.
///
/// Implementations must be deterministic for a fixed `(bindings, chunk)`
/// pair: repeating a request returns the same chunk. This mirrors the
/// idempotence of HTTP GET-style service calls the chapter assumes, and
/// makes join strategies free to re-fetch instead of caching.
pub trait Service: Send + Sync {
    /// The adorned interface this service implements.
    fn interface(&self) -> &ServiceInterface;

    /// Executes one request-response.
    fn fetch(&self, request: &Request) -> Result<ChunkResponse, ServiceError>;

    /// Validates that every input path of the access pattern is covered,
    /// either by an equality binding or by a range constraint.
    ///
    /// Provided method; implementations call it at the top of `fetch`.
    fn check_bindings(&self, request: &Request) -> Result<(), ServiceError> {
        let iface = self.interface();
        for path in iface.schema.input_paths() {
            if !request.bindings.contains_key(&path) && !request.ranges.contains_key(&path) {
                return Err(ServiceError::MissingBinding {
                    service: iface.name.clone(),
                    attribute: path.to_string(),
                });
            }
        }
        Ok(())
    }
}

/// Shared handle to a service.
pub type ServiceHandle = Arc<dyn Service>;

#[cfg(test)]
mod tests {
    use super::*;
    use seco_model::{
        Adornment, AttributeDef, DataType, ScoreDecay, ServiceKind, ServiceSchema, ServiceStats,
    };

    struct Fixed {
        iface: ServiceInterface,
    }

    impl Service for Fixed {
        fn interface(&self) -> &ServiceInterface {
            &self.iface
        }
        fn fetch(&self, request: &Request) -> Result<ChunkResponse, ServiceError> {
            self.check_bindings(request)?;
            Ok(ChunkResponse::empty(1.0))
        }
    }

    fn fixed() -> Fixed {
        let schema = ServiceSchema::new(
            "F1",
            vec![
                AttributeDef::atomic("K", DataType::Text, Adornment::Input),
                AttributeDef::atomic("V", DataType::Int, Adornment::Output),
            ],
        )
        .unwrap();
        Fixed {
            iface: ServiceInterface::new(
                "F1",
                "F",
                schema,
                ServiceKind::Exact { chunked: false },
                ServiceStats::default(),
                ScoreDecay::Constant(0.0),
            )
            .unwrap(),
        }
    }

    #[test]
    fn missing_binding_is_rejected() {
        let s = fixed();
        let err = s.fetch(&Request::unbound()).unwrap_err();
        assert!(matches!(err, ServiceError::MissingBinding { .. }));
        let ok = s.fetch(&Request::unbound().bind(AttributePath::atomic("K"), Value::text("x")));
        assert!(ok.is_ok());
    }

    #[test]
    fn request_builders() {
        let r = Request::unbound().bind(AttributePath::atomic("K"), Value::Int(1));
        assert_eq!(r.chunk, 0);
        let r2 = r.at_chunk(3);
        assert_eq!(r2.chunk, 3);
        assert_eq!(r2.bindings, r.bindings);
        assert!(r2.to_string().contains("chunk 3"));
    }

    #[test]
    fn chunk_response_helpers() {
        let c = ChunkResponse::empty(2.0);
        assert!(c.is_empty());
        assert_eq!(c.len(), 0);
        assert_eq!(c.elapsed_ms, 2.0);
        assert!(!c.has_more());
        // Cloning a response shares the body instead of copying tuples.
        let d = c.clone();
        assert!(Arc::ptr_eq(c.body(), d.body()));
    }

    #[test]
    fn multi_chunk_fetching_moved_to_service_client() {
        // Chunked fetch-until-terminal now lives on the builder-style
        // `ServiceClient::fetch_n_chunks`; see `resilience::tests`.
        let s = fixed();
        let client = crate::resilience::ServiceClient::for_service(Arc::new(s)).build();
        let bindings: Bindings = [(AttributePath::atomic("K"), Value::text("x"))]
            .into_iter()
            .collect();
        let (tuples, calls) = client.fetch_n_chunks(&bindings, 5).unwrap();
        assert!(tuples.is_empty());
        assert_eq!(
            calls, 1,
            "has_more=false after first chunk must stop fetching"
        );
    }
}
