//! E6 bench: join methods (invocation × completion) under step vs
//! progressive scoring — wall-clock of producing k = 10 joined results.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use seco_bench::join_pair;
use seco_join::executor::{ParallelJoinExecutor, ServiceStream};
use seco_model::{AttributePath, Comparator, ScoreDecay, Value};
use seco_plan::{Completion, Invocation};
use seco_query::predicate::{ResolvedPredicate, SchemaMap};
use seco_query::{JoinPredicate, QualifiedPath};
use seco_services::invocation::Request;
use seco_services::Service;

fn bench_join_methods(c: &mut Criterion) {
    let mut group = c.benchmark_group("join_methods_k10");
    group.sample_size(20);
    for (scoring, dx) in [
        (
            "step",
            ScoreDecay::Step {
                h: 2,
                high: 0.95,
                low: 0.05,
            },
        ),
        ("linear", ScoreDecay::Linear),
    ] {
        for (method, inv, comp) in [
            ("nl_rect", Invocation::NestedLoop, Completion::Rectangular),
            (
                "ms_rect",
                Invocation::merge_scan_even(),
                Completion::Rectangular,
            ),
            (
                "ms_tri",
                Invocation::merge_scan_even(),
                Completion::Triangular,
            ),
        ] {
            group.bench_with_input(
                BenchmarkId::new(method, scoring),
                &(dx, inv, comp),
                |b, &(dx, inv, comp)| {
                    let (sx, sy) = join_pair(dx, ScoreDecay::Linear, 60, 5, 3);
                    let predicates = vec![ResolvedPredicate::Join(JoinPredicate {
                        left: QualifiedPath::new("X", AttributePath::atomic("Link")),
                        op: Comparator::Eq,
                        right: QualifiedPath::new("Y", AttributePath::atomic("Link")),
                    })];
                    let mut schemas = SchemaMap::new();
                    schemas.insert("X".into(), &sx.interface().schema);
                    schemas.insert("Y".into(), &sy.interface().schema);
                    let req =
                        Request::unbound().bind(AttributePath::atomic("Key"), Value::text("q"));
                    b.iter(|| {
                        let mut x = ServiceStream::new("X", sx.as_ref(), req.clone());
                        let mut y = ServiceStream::new("Y", sy.as_ref(), req.clone());
                        let exec = ParallelJoinExecutor {
                            predicates: &predicates,
                            schemas: &schemas,
                            invocation: inv,
                            completion: comp,
                            h: dx.step_chunks().unwrap_or(1),
                            k: 10,
                            options: seco_join::JoinIndexOptions::default(),
                            columnar: seco_join::ColumnarOptions::default(),
                            pool: None,
                        };
                        exec.run(&mut x, &mut y).expect("join runs")
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_join_methods);
criterion_main!(benches);
