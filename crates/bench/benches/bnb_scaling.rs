//! E8 bench: optimizer runtime — branch-and-bound vs exhaustive — as
//! the query grows (chain scenarios of 2..5 services).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use seco_bench::chain_scenario;
use seco_optimizer::exhaustive::optimize_exhaustive;
use seco_optimizer::{optimize, CostMetric};

fn bench_bnb_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("optimizer_scaling");
    group.sample_size(10);
    for n in [2usize, 3, 4, 5] {
        let (reg, query) = chain_scenario(n, 7);
        group.bench_with_input(BenchmarkId::new("bnb", n), &n, |b, _| {
            b.iter(|| optimize(&query, &reg, CostMetric::RequestCount).expect("optimizes"))
        });
        group.bench_with_input(BenchmarkId::new("exhaustive", n), &n, |b, _| {
            b.iter(|| {
                optimize_exhaustive(&query, &reg, CostMetric::RequestCount).expect("optimizes")
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_bnb_scaling);
criterion_main!(benches);
