//! E16 bench: deterministic vs pipelined executor on the optimized
//! running-example plan.

use criterion::{criterion_group, criterion_main, Criterion};

use seco_engine::{execute_parallel, execute_plan, EngineConfig};
use seco_optimizer::{optimize, CostMetric};
use seco_query::builder::running_example;
use seco_services::domains::entertainment;

fn bench_engine(c: &mut Criterion) {
    let registry = entertainment::build_registry(1).expect("registry builds");
    let query = running_example();
    let best = optimize(&query, &registry, CostMetric::RequestCount).expect("optimizes");
    let mut group = c.benchmark_group("engine_running_example");
    group.sample_size(20);
    group.bench_function("sequential", |b| {
        b.iter(|| execute_plan(&best.plan, &registry, EngineConfig::default()).expect("executes"))
    });
    group.bench_function("pipelined_threads", |b| {
        b.iter(|| {
            execute_parallel(&best.plan, &registry, EngineConfig::default()).expect("executes")
        })
    });
    group.finish();
}

criterion_group!(benches, bench_engine);
criterion_main!(benches);
