//! E3/E4/E5 bench: tile-space exploration throughput per strategy.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use seco_join::completion::explore;
use seco_plan::{Completion, Invocation};

fn bench_completion(c: &mut Criterion) {
    let mut group = c.benchmark_group("tile_exploration_32x32");
    for (label, inv, comp) in [
        ("nl_rect", Invocation::NestedLoop, Completion::Rectangular),
        (
            "ms_rect",
            Invocation::merge_scan_even(),
            Completion::Rectangular,
        ),
        (
            "ms_tri",
            Invocation::merge_scan_even(),
            Completion::Triangular,
        ),
        (
            "ms32_tri",
            Invocation::MergeScan { r1: 3, r2: 2 },
            Completion::Triangular,
        ),
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(label),
            &(inv, comp),
            |b, &(inv, comp)| b.iter(|| explore(inv, comp, 3, 32, 32).expect("explores")),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_completion);
criterion_main!(benches);
