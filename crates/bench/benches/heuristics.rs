//! E11/E12/E13 bench: heuristic combinations on the running example.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use seco_optimizer::{CostMetric, HeuristicSet, Optimizer, Phase2Heuristic, Phase3Heuristic};
use seco_query::builder::running_example;
use seco_services::domains::entertainment;

fn bench_heuristics(c: &mut Criterion) {
    let registry = entertainment::build_registry(3).expect("registry builds");
    let query = running_example();
    let mut group = c.benchmark_group("heuristics");
    group.sample_size(10);
    for (label, p2, p3) in [
        (
            "parallel_greedy",
            Phase2Heuristic::ParallelIsBetter,
            Phase3Heuristic::Greedy,
        ),
        (
            "parallel_square",
            Phase2Heuristic::ParallelIsBetter,
            Phase3Heuristic::SquareIsBetter,
        ),
        (
            "selective_greedy",
            Phase2Heuristic::SelectiveFirst,
            Phase3Heuristic::Greedy,
        ),
        (
            "selective_square",
            Phase2Heuristic::SelectiveFirst,
            Phase3Heuristic::SquareIsBetter,
        ),
    ] {
        group.bench_with_input(
            BenchmarkId::new("combo", label),
            &(p2, p3),
            |b, &(p2, p3)| {
                let mut opt = Optimizer::new(&registry, CostMetric::RequestCount);
                opt.heuristics = HeuristicSet {
                    phase2: p2,
                    phase3: p3,
                    ..HeuristicSet::default()
                };
                b.iter(|| opt.optimize(&query).expect("optimizes"))
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_heuristics);
criterion_main!(benches);
