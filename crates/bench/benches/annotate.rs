//! E1/E10 bench: cardinality-annotation throughput on the Fig. 10 plan.

use criterion::{criterion_group, criterion_main, Criterion};

use seco_plan::{
    annotate, AnnotationConfig, Completion, Invocation, JoinSpec, PlanNode, QueryPlan, ServiceNode,
};
use seco_query::builder::running_example;
use seco_services::domains::entertainment;

fn fig10_plan(reg: &seco_services::ServiceRegistry) -> QueryPlan {
    let query = running_example();
    let joins = query.expanded_joins(reg).expect("joins expand");
    let shows: Vec<_> = joins
        .iter()
        .filter(|j| j.connects("M", "T"))
        .cloned()
        .collect();
    let mut p = QueryPlan::new(query);
    let m = p.add(PlanNode::Service(
        ServiceNode::new("M", "Movie1").with_fetches(5),
    ));
    let t = p.add(PlanNode::Service(
        ServiceNode::new("T", "Theatre1").with_fetches(5),
    ));
    let j = p.add(PlanNode::ParallelJoin(JoinSpec {
        invocation: Invocation::merge_scan_even(),
        completion: Completion::Triangular,
        predicates: shows,
        selectivity: entertainment::SHOWS_SELECTIVITY,
    }));
    let r = p.add(PlanNode::Service(
        ServiceNode::new("R", "Restaurant1").with_keep_first(),
    ));
    p.connect(p.input(), m).unwrap();
    p.connect(p.input(), t).unwrap();
    p.connect(m, j).unwrap();
    p.connect(t, j).unwrap();
    p.connect(j, r).unwrap();
    p.connect(r, p.output()).unwrap();
    p
}

fn bench_annotate(c: &mut Criterion) {
    let reg = entertainment::build_registry(1).expect("registry builds");
    let plan = fig10_plan(&reg);
    c.bench_function("annotate_fig10", |b| {
        b.iter(|| annotate(&plan, &reg, &AnnotationConfig::default()).expect("annotates"))
    });
}

criterion_group!(benches, bench_annotate);
criterion_main!(benches);
