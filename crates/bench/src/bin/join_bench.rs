//! `join_bench` — benchmarks of the zero-copy tuple data plane
//! (shared immutable tuples, interned symbols, thin composites),
//! emitting `results/BENCH_join.json`.
//!
//! Usage:
//!   cargo run --release -p seco-bench --bin join_bench            # full
//!   cargo run --release -p seco-bench --bin join_bench -- --smoke # CI
//!
//! Eight benchmarks:
//!
//! * **data-plane** — the chunk→composite→merge path of a tile-space
//!   join, twice over identical inputs: the zero-copy plane (handle
//!   bumps, `ptr_eq` merge fast path) vs an in-binary emulation of the
//!   pre-change baseline (owned `String` atoms, one deep `Tuple` copy
//!   per handoff, as the data plane did before tuples were
//!   `Arc`-shared). Reports tuples/sec and bytes cloned for both and
//!   checks the ≥2× throughput / ≥10× bytes-cloned targets;
//! * **cache-hits** — N hits against a warm cache: the zero-copy plane
//!   must report 0 clone events / 0 bytes cloned (hits are handle
//!   bumps), vs the emulated deep-copy-per-hit baseline;
//! * **E1** — the Fig. 2/3 travel plan end-to-end, run twice: wall
//!   clock, combinations, and byte-identical seeded output;
//! * **index-vs-nested** — the tile-space join at varying equi-join
//!   selectivity (`Link` domain width 2/10/50) and chunk size (5/20),
//!   once with the nested-loop kernel (`--join-index off`) and once
//!   with the hash index (+ tile pruning): byte-identical results are
//!   asserted, and the candidate pairs actually evaluated must drop
//!   ≥3× at selectivity ≤ 0.1;
//! * **columnar-vs-row** — the vectorized batch predicate kernels vs
//!   the scalar row loop at varying selectivity: a pure predicate
//!   kernel microbenchmark (≥2× evals/sec at selectivity 0.02) plus a
//!   full tile-space join under both data planes, byte-identical, with
//!   the `batch_evals` / `columns_scanned` / `rows_materialized`
//!   counters reported;
//! * **rank-vs-full** — the rank-join operator at k=5 on the
//!   deep-chain scenario (selectivity 0.02, chunk 20) vs full
//!   enumeration + sort: the top-k must be the sorted prefix with ≥3×
//!   fewer chunk fetches and a ≥2× faster time-to-kth;
//! * **nary-vs-cascade** — the n-ary kernel over three services vs
//!   the materializing two-stage binary cascade: byte-identical, all
//!   intermediates elided, join-loop wall clock compared;
//! * **parallel-vs-serial** — the morsel executor at 1/2/4/8 workers
//!   over large-chunk tile joins (batch-scan and hash-probe configs):
//!   byte-identical at every count, with measured wall clock and the
//!   modeled makespan speedup (≥2x at 4 workers full, ≥1.3x smoke;
//!   see DESIGN.md on single-core hosts).

use std::time::Instant;

use seco_bench::{join_pair, join_pair_with_width};
use seco_engine::{execute_plan, EngineConfig};
use seco_join::executor::{JoinOutcome, ParallelJoinExecutor, ServiceStream};
use seco_join::{ColumnarOptions, JoinIndexMode, JoinIndexOptions};
use seco_model::{
    AttributePath, Comparator, CompositeTuple, ScoreDecay, SharedTuple, Symbol, Tuple, Value,
};
use seco_plan::{Completion, Invocation, PlanNode, QueryPlan};
use seco_query::predicate::{ResolvedPredicate, SchemaMap};
use seco_query::QueryBuilder;
use seco_services::cache::CachingService;
use seco_services::domains::travel;
use seco_services::invocation::{ChunkResponse, Request};
use seco_services::recorder::CallRecorder;
use seco_services::wire::chunk_wire_size;
use seco_services::Service;

type DynError = Box<dyn std::error::Error>;

/// The owned-composite representation the data plane used before the
/// zero-copy refactor: `String` atom keys and deep-copied rows.
struct LegacyComposite {
    atoms: Vec<String>,
    components: Vec<Tuple>,
}

/// Deep-copies one tuple the way every pre-change handoff did,
/// charging its wire size to the clone counter.
fn legacy_copy(t: &Tuple, bytes: &mut u64) -> Tuple {
    *bytes += chunk_wire_size(std::slice::from_ref(t)) as u64;
    t.clone()
}

/// The chunk→composite→merge data plane over identical pre-fetched
/// chunks, in both representations.
fn bench_data_plane(
    iters: usize,
    total: usize,
    chunk: usize,
) -> Result<serde_json::Value, DynError> {
    let (sx, sy) = join_pair(ScoreDecay::Linear, ScoreDecay::Quadratic, total, chunk, 5);
    let req = Request::unbound().bind(AttributePath::atomic("Key"), Value::text("q"));

    // Pre-fetch every chunk of both sides once, outside the timed
    // loops: the benchmark measures the data plane, not the services.
    let fetch_all = |s: &dyn Service| -> Result<Vec<ChunkResponse>, DynError> {
        let mut chunks = Vec::new();
        let mut idx = 0;
        loop {
            let resp = s.fetch(&req.at_chunk(idx))?;
            let more = resp.has_more();
            chunks.push(resp);
            if !more {
                return Ok(chunks);
            }
            idx += 1;
        }
    };
    let chunks_x = fetch_all(sx.as_ref())?;
    let chunks_y = fetch_all(sy.as_ref())?;
    let tuples_per_iter: usize = chunks_x.iter().map(|c| c.len()).sum::<usize>()
        + chunks_y.iter().map(|c| c.len()).sum::<usize>();

    // Zero-copy plane: composites hold handles, merging bumps Arcs,
    // only the emitted pair materializes (ranked output).
    let mut zc_bytes = 0u64;
    let mut zc_pairs = 0u64;
    let start = Instant::now();
    for _ in 0..iters {
        let build = |chunks: &[ChunkResponse], atom: Symbol| -> Vec<Vec<CompositeTuple>> {
            chunks
                .iter()
                .map(|c| {
                    c.tuples()
                        .iter()
                        .map(|t| CompositeTuple::single(atom, t.clone()))
                        .collect()
                })
                .collect()
        };
        let cx = build(&chunks_x, Symbol::from("X"));
        let cy = build(&chunks_y, Symbol::from("Y"));
        for tx in &cx {
            for ty in &cy {
                for a in tx {
                    for b in ty {
                        if let Some(pair) = a.merge(b) {
                            zc_pairs += 1;
                            // Final output is the one deep copy.
                            if zc_pairs.is_multiple_of(1000) {
                                for (_, row) in pair.materialize() {
                                    zc_bytes += chunk_wire_size(std::slice::from_ref(&row)) as u64;
                                }
                            }
                        }
                    }
                }
            }
        }
    }
    let zc_ms = start.elapsed().as_secs_f64() * 1e3;

    // Legacy emulation: the same traversal with the pre-change
    // representation — a deep copy per chunk-serve handoff, an owned
    // `String` + deep copy per composite, and deep copies per merge.
    let mut legacy_bytes = 0u64;
    let mut legacy_pairs = 0u64;
    let start = Instant::now();
    for _ in 0..iters {
        let build =
            |chunks: &[ChunkResponse], atom: &str, bytes: &mut u64| -> Vec<Vec<LegacyComposite>> {
                chunks
                    .iter()
                    .map(|c| {
                        c.tuples()
                            .iter()
                            .map(|t| {
                                // Chunk serving handed out an owned copy…
                                let served = legacy_copy(t, bytes);
                                // …and composite construction copied again.
                                LegacyComposite {
                                    atoms: vec![atom.to_owned()],
                                    components: vec![legacy_copy(&served, bytes)],
                                }
                            })
                            .collect()
                    })
                    .collect()
            };
        let cx = build(&chunks_x, "X", &mut legacy_bytes);
        let cy = build(&chunks_y, "Y", &mut legacy_bytes);
        for tx in &cx {
            for ty in &cy {
                for a in tx {
                    for b in ty {
                        // Merging owned composites copied every
                        // component row of both sides.
                        let mut atoms = a.atoms.clone();
                        atoms.extend(b.atoms.iter().cloned());
                        let mut components: Vec<Tuple> = a
                            .components
                            .iter()
                            .map(|t| legacy_copy(t, &mut legacy_bytes))
                            .collect();
                        components.extend(
                            b.components
                                .iter()
                                .map(|t| legacy_copy(t, &mut legacy_bytes)),
                        );
                        let pair = LegacyComposite { atoms, components };
                        if !pair.components.is_empty() {
                            legacy_pairs += 1;
                        }
                    }
                }
            }
        }
    }
    let legacy_ms = start.elapsed().as_secs_f64() * 1e3;

    assert_eq!(
        zc_pairs, legacy_pairs,
        "both planes must traverse identical candidate pairs"
    );
    let tuples_handled = (tuples_per_iter * iters) as f64;
    let zc_tps = tuples_handled / (zc_ms / 1e3);
    let legacy_tps = tuples_handled / (legacy_ms / 1e3);
    let speedup = zc_tps / legacy_tps;
    let bytes_reduction = legacy_bytes as f64 / (zc_bytes.max(1)) as f64;
    println!(
        "data-plane ({iters} iters, {total}x2 tuples, chunk {chunk}): \
         zero-copy {zc_ms:.1} ms ({zc_tps:.0} tuples/s, {zc_bytes} B cloned), \
         legacy {legacy_ms:.1} ms ({legacy_tps:.0} tuples/s, {legacy_bytes} B cloned), \
         {speedup:.1}x throughput, {bytes_reduction:.0}x fewer bytes"
    );
    Ok(serde_json::json!({
        "iters": iters,
        "tuples_per_side": total,
        "chunk_size": chunk,
        "candidate_pairs": zc_pairs,
        "zero_copy": {
            "wall_ms": zc_ms,
            "tuples_per_sec": zc_tps,
            "bytes_cloned": zc_bytes,
            "deep_tuple_allocations_per_combination": 0,
        },
        "legacy_emulation": {
            "wall_ms": legacy_ms,
            "tuples_per_sec": legacy_tps,
            "bytes_cloned": legacy_bytes,
            "deep_tuple_allocations_per_combination": 2,
        },
        "speedup_tuples_per_sec": speedup,
        "bytes_cloned_reduction": bytes_reduction,
        "meets_2x_throughput_target": speedup >= 2.0,
        "meets_10x_bytes_target": bytes_reduction >= 10.0,
    }))
}

/// N hits against a warm cache: the zero-copy plane serves handle
/// bumps (0 clone events), the legacy emulation deep-copied the stored
/// response on every hit.
fn bench_cache_hits(hits: usize) -> Result<serde_json::Value, DynError> {
    let (inner, _) = join_pair(ScoreDecay::Linear, ScoreDecay::Linear, 50, 10, 9);
    let recorder = CallRecorder::new(inner);
    let cache = CachingService::sharded(recorder.clone(), 64, 4);
    let req = Request::unbound().bind(AttributePath::atomic("Key"), Value::text("hot"));
    let warm = cache.fetch(&req)?; // miss: populate
    let start = Instant::now();
    for _ in 0..hits {
        let resp = cache.fetch(&req)?;
        assert!(std::sync::Arc::ptr_eq(resp.body(), warm.body()));
    }
    let zc_ms = start.elapsed().as_secs_f64() * 1e3;
    let stats = recorder.stats();
    assert_eq!(
        (stats.clone_events, stats.bytes_cloned),
        (0, 0),
        "cache hits must not clone tuple data"
    );

    // Legacy emulation: each hit deep-copies the stored chunk.
    let mut legacy_bytes = 0u64;
    let start = Instant::now();
    for _ in 0..hits {
        let copied: Vec<Tuple> = warm
            .tuples()
            .iter()
            .map(|t| legacy_copy(t, &mut legacy_bytes))
            .collect();
        let copied: Vec<SharedTuple> = copied.into_iter().map(SharedTuple::new).collect();
        std::hint::black_box(&copied);
    }
    let legacy_ms = start.elapsed().as_secs_f64() * 1e3;
    println!(
        "cache-hits ({hits} hits, {}-tuple chunk): zero-copy {zc_ms:.2} ms / 0 B, \
         legacy {legacy_ms:.2} ms / {legacy_bytes} B",
        warm.len()
    );
    Ok(serde_json::json!({
        "hits": hits,
        "chunk_tuples": warm.len(),
        "zero_copy_wall_ms": zc_ms,
        "zero_copy_bytes_cloned": stats.bytes_cloned,
        "zero_copy_clone_events": stats.clone_events,
        "legacy_wall_ms": legacy_ms,
        "legacy_bytes_cloned": legacy_bytes,
    }))
}

/// The E1 travel plan (Fig. 2/3) end-to-end, twice: wall clock and
/// byte-identical seeded output through the zero-copy plane.
fn bench_e1() -> Result<serde_json::Value, DynError> {
    let run = || -> Result<(f64, usize, String, usize), DynError> {
        let registry = travel::build_registry(5)?;
        let query = QueryBuilder::new()
            .atom("C", "Conference1")
            .atom("W", "Weather1")
            .atom("F", "Flight1")
            .atom("H", "Hotel1")
            .pattern("Forecast", "C", "W")
            .pattern("ReachedBy", "C", "F")
            .pattern("StayAt", "C", "H")
            .pattern("SameTrip", "F", "H")
            .select_const("C", "Topic", Comparator::Eq, Value::text("databases"))
            .select_const("W", "AvgTemp", Comparator::Gt, Value::Int(26))
            .build()?;
        let joins = query.expanded_joins(&registry)?;
        let same_trip: Vec<_> = joins
            .iter()
            .filter(|j| j.connects("F", "H"))
            .cloned()
            .collect();
        let mut plan = QueryPlan::new(query.clone());
        let c = plan.add(PlanNode::Service(seco_plan::ServiceNode::new(
            "C",
            "Conference1",
        )));
        let w = plan.add(PlanNode::Service(seco_plan::ServiceNode::new(
            "W", "Weather1",
        )));
        let sel = plan.add(PlanNode::Selection(
            seco_plan::SelectionNode::new(vec![query.selections[1].clone()]).with_selectivity(0.25),
        ));
        let f = plan.add(PlanNode::Service(
            seco_plan::ServiceNode::new("F", "Flight1").with_fetches(2),
        ));
        let h = plan.add(PlanNode::Service(
            seco_plan::ServiceNode::new("H", "Hotel1").with_fetches(2),
        ));
        let j = plan.add(PlanNode::ParallelJoin(seco_plan::JoinSpec {
            invocation: Invocation::merge_scan_even(),
            completion: Completion::Rectangular,
            predicates: same_trip,
            selectivity: 1.0,
        }));
        plan.connect(plan.input(), c)?;
        plan.connect(c, w)?;
        plan.connect(w, sel)?;
        plan.connect(sel, f)?;
        plan.connect(sel, h)?;
        plan.connect(f, j)?;
        plan.connect(h, j)?;
        plan.connect(j, plan.output())?;
        let start = Instant::now();
        let outcome = execute_plan(
            &plan,
            &registry,
            EngineConfig {
                join_k: 10,
                ..Default::default()
            },
        )?;
        let ms = start.elapsed().as_secs_f64() * 1e3;
        let render: String = outcome
            .results
            .iter()
            .map(|c| format!("{:?};", c.materialize()))
            .collect();
        Ok((ms, outcome.results.len(), render, outcome.total_calls))
    };
    let (ms_a, n_a, render_a, calls) = run()?;
    let (ms_b, n_b, render_b, _) = run()?;
    let identical = render_a == render_b;
    assert!(identical, "seeded E1 runs must be byte-identical");
    println!(
        "e1 (travel plan, k=10): {n_a} combinations, {calls} calls, \
         {ms_a:.1} / {ms_b:.1} ms, byte-identical={identical}"
    );
    Ok(serde_json::json!({
        "combinations": n_a,
        "combinations_second_run": n_b,
        "total_calls": calls,
        "wall_ms_first": ms_a,
        "wall_ms_second": ms_b,
        "byte_identical_seeded_output": identical,
    }))
}

/// One tile-space join over a seeded service pair, under the given
/// join-kernel options. Returns the outcome and the wall time in ms.
fn run_indexed_join(
    total: usize,
    chunk: usize,
    width: usize,
    options: JoinIndexOptions,
    columnar: ColumnarOptions,
) -> Result<(JoinOutcome, f64), DynError> {
    run_pooled_join(total, chunk, width, options, columnar, None)
}

/// [`run_indexed_join`] with an optional morsel pool: the kernel fans
/// each tile's row loop across the pool's workers and the ordered
/// reducer reassembles the output in row order.
fn run_pooled_join(
    total: usize,
    chunk: usize,
    width: usize,
    options: JoinIndexOptions,
    columnar: ColumnarOptions,
    pool: Option<std::sync::Arc<seco_exec::ExecPool>>,
) -> Result<(JoinOutcome, f64), DynError> {
    let (sx, sy) = join_pair_with_width(
        ScoreDecay::Linear,
        ScoreDecay::Quadratic,
        total,
        chunk,
        17,
        width,
    );
    let req = Request::unbound().bind(AttributePath::atomic("Key"), Value::text("q"));
    let mut x = ServiceStream::new("X", sx.as_ref(), req.clone());
    let mut y = ServiceStream::new("Y", sy.as_ref(), req);
    let predicates = vec![ResolvedPredicate::Join(seco_query::JoinPredicate {
        left: seco_query::QualifiedPath::new("X", AttributePath::atomic("Link")),
        op: Comparator::Eq,
        right: seco_query::QualifiedPath::new("Y", AttributePath::atomic("Link")),
    })];
    let mut schemas = SchemaMap::new();
    schemas.insert("X".into(), &sx.interface().schema);
    schemas.insert("Y".into(), &sy.interface().schema);
    let exec = ParallelJoinExecutor {
        predicates: &predicates,
        schemas: &schemas,
        invocation: Invocation::merge_scan_even(),
        completion: Completion::Rectangular,
        h: 1,
        k: 0,
        options,
        columnar,
        pool,
    };
    let start = Instant::now();
    let out = exec.run(&mut x, &mut y)?;
    let ms = start.elapsed().as_secs_f64() * 1e3;
    Ok((out, ms))
}

/// The morsel executor vs the serial kernel on large-chunk configs:
/// workers ∈ {1, 2, 4, 8} over the same tile-space join,
/// byte-identical output asserted at every count.
///
/// Speedup accounting: this is a wall-clock sweep on a machine that
/// may have a single core, where real parallel speedup is physically
/// impossible. The pool therefore keeps two duration counters from
/// the *measured* per-morsel execution times: `serial_micros` (their
/// sum — the one-thread cost of exactly the work that ran) and
/// `makespan_micros` (per batch, `max(longest morsel, sum/workers)` —
/// the greedy-scheduling lower bound on the batch's completion time
/// at the configured worker count). Their ratio is the modeled
/// speedup an N-core host gets from this exact morsel decomposition;
/// measured wall clock is reported alongside so nothing hides.
fn bench_parallel_vs_serial(
    total: usize,
    chunk: usize,
    target: f64,
) -> Result<serde_json::Value, DynError> {
    let configs = [
        // Nested loop + batch predicate eval: every row scans the
        // whole Y tile through the vectorized kernels — the heaviest
        // per-row work, decomposed as row-segment morsels.
        ("batch-scan", JoinIndexMode::Off, 10usize),
        // Hash probe: per-row index probes on a sparse link domain.
        ("hash-probe", JoinIndexMode::Hash, 50usize),
    ];
    let mut out_configs = Vec::new();
    let mut speedup_at_4 = f64::INFINITY;
    for (label, mode, width) in configs {
        let options = JoinIndexOptions {
            mode,
            ..JoinIndexOptions::default()
        };
        let columnar = ColumnarOptions::default();
        let (reference, serial_ms) = run_indexed_join(total, chunk, width, options, columnar)?;
        let mut sweeps = vec![serde_json::json!({
            "workers": 1usize,
            "wall_ms": serial_ms,
            "serial_us": serde_json::Value::Null,
            "makespan_us": serde_json::Value::Null,
            "modeled_speedup": 1.0,
            "morsels": 0u64,
            "steals": 0u64,
            "identical": true,
        })];
        for workers in [2usize, 4, 8] {
            let pool = std::sync::Arc::new(seco_exec::ExecPool::new(workers));
            let (out, wall_ms) =
                run_pooled_join(total, chunk, width, options, columnar, Some(pool.clone()))?;
            let stats = pool.stats();
            pool.shutdown();
            assert_eq!(
                out.results, reference.results,
                "{label}: pooled output diverged at {workers} workers"
            );
            assert!(
                stats.morsels > 0,
                "{label}: the sweep must actually engage the morsel path"
            );
            let modeled = stats.serial_micros as f64 / (stats.makespan_micros.max(1)) as f64;
            if workers == 4 {
                speedup_at_4 = speedup_at_4.min(modeled);
            }
            sweeps.push(serde_json::json!({
                "workers": workers,
                "wall_ms": wall_ms,
                "serial_us": stats.serial_micros,
                "makespan_us": stats.makespan_micros,
                "modeled_speedup": modeled,
                "morsels": stats.morsels,
                "steals": stats.steals,
                "identical": true,
            }));
            println!(
                "  parallel-vs-serial {label} workers={workers}: wall {wall_ms:.1} ms \
                 (serial {serial_ms:.1} ms), modeled speedup {modeled:.2}x \
                 ({} morsels, {} steals)",
                stats.morsels, stats.steals
            );
        }
        out_configs.push(serde_json::json!({
            "config": label,
            "mode": format!("{mode:?}"),
            "total": total,
            "chunk": chunk,
            "width": width,
            "results": reference.results.len(),
            "sweep": sweeps,
        }));
    }
    let pass = speedup_at_4 >= target;
    assert!(
        pass,
        "modeled speedup at 4 workers {speedup_at_4:.2}x misses the {target:.1}x target"
    );
    Ok(serde_json::json!({
        "host_cores": std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
        "note": "wall clock is measured on this host; modeled speedup is \
                 serial_micros/makespan_micros from measured per-morsel times \
                 under the greedy-scheduling bound (see DESIGN.md)",
        "configs": out_configs,
        "modeled_speedup_at_4_workers": speedup_at_4,
        "target": target,
        "pass": pass,
    }))
}

/// The hash-index kernel vs the nested loop at varying selectivity and
/// chunk size: byte-identical answers, fewer evaluated candidate pairs.
fn bench_index_vs_nested(total: usize) -> Result<serde_json::Value, DynError> {
    let mut cases = Vec::new();
    for &width in &[2usize, 10, 50] {
        for &chunk in &[5usize, 20] {
            let selectivity = 1.0 / width as f64;
            let (nested, nested_ms) = run_indexed_join(
                total,
                chunk,
                width,
                JoinIndexOptions {
                    mode: JoinIndexMode::Off,
                    tile_prune: false,
                },
                ColumnarOptions::default(),
            )?;
            let (hashed, hashed_ms) = run_indexed_join(
                total,
                chunk,
                width,
                JoinIndexOptions {
                    mode: JoinIndexMode::Hash,
                    tile_prune: true,
                },
                ColumnarOptions::default(),
            )?;
            let render = |out: &JoinOutcome| -> String {
                out.results
                    .iter()
                    .map(|c| format!("{:?};", c.materialize()))
                    .collect()
            };
            assert_eq!(
                render(&nested),
                render(&hashed),
                "hash kernel must be byte-identical at width {width}, chunk {chunk}"
            );
            assert_eq!(nested.tiles, hashed.tiles);
            assert_eq!(nested.tile_representatives, hashed.tile_representatives);
            // The nested loop evaluates the predicates on every
            // candidate pair; the index only on surviving candidates.
            let reduction =
                nested.stats.predicate_evals as f64 / hashed.stats.predicate_evals.max(1) as f64;
            if selectivity <= 0.1 {
                assert!(
                    reduction >= 3.0,
                    "expected ≥3x fewer evaluated pairs at selectivity {selectivity} \
                     (chunk {chunk}), got {reduction:.1}x"
                );
            }
            println!(
                "index-vs-nested (sel {selectivity:.2}, chunk {chunk:>2}): \
                 nested {} evals / {nested_ms:.1} ms, \
                 hash {} evals / {hashed_ms:.1} ms ({} probes, {} pairs skipped, \
                 {} tiles pruned), {reduction:.1}x fewer evals",
                nested.stats.predicate_evals,
                hashed.stats.predicate_evals,
                hashed.stats.probes,
                hashed.stats.pairs_skipped,
                hashed.stats.tiles_pruned,
            );
            cases.push(serde_json::json!({
                "selectivity": selectivity,
                "link_domain_width": width,
                "chunk_size": chunk,
                "tuples_per_side": total,
                "combinations": hashed.results.len(),
                "byte_identical_to_nested_loop": true,
                "nested_loop": {
                    "wall_ms": nested_ms,
                    "predicate_evals": nested.stats.predicate_evals,
                },
                "hash_index": {
                    "wall_ms": hashed_ms,
                    "predicate_evals": hashed.stats.predicate_evals,
                    "index_builds": hashed.stats.index_builds,
                    "probes": hashed.stats.probes,
                    "pairs_skipped": hashed.stats.pairs_skipped,
                    "tiles_pruned": hashed.stats.tiles_pruned,
                },
                "candidate_pair_reduction": reduction,
                "meets_3x_reduction_at_low_selectivity": selectivity > 0.1 || reduction >= 3.0,
            }));
        }
    }
    Ok(serde_json::Value::Array(cases))
}

/// The vectorized batch kernels vs the scalar row loop.
///
/// Two measurements per selectivity (`Link` domain width 2/10/50, i.e.
/// 0.5/0.1/0.02):
///
/// * a **kernel microbenchmark** — one probe composite evaluated
///   against a resident chunk of `rows` composites, repeatedly, once
///   through `BatchPlan::eval_mask` over typed columns and once
///   through the scalar merge-and-evaluate loop the row plane runs per
///   candidate. Reports predicate evaluations per second for both and
///   checks the ≥2× batch speedup target at selectivity 0.02;
/// * a **full tile-space join** under both data planes
///   (`ColumnarOptions::default()` vs `row_plane()`): byte-identical
///   outcomes are asserted and the columnar counters
///   (`batch_evals`, `columns_scanned`, `rows_materialized`) reported.
fn bench_columnar_vs_row(total: usize, evals_target: u64) -> Result<serde_json::Value, DynError> {
    use seco_model::{Adornment, AttributeDef, BitMask, DataType, ServiceSchema};
    use seco_query::{CompiledPredicates, EvalScratch};

    let schema = ServiceSchema::new(
        "S",
        vec![AttributeDef::atomic(
            "Link",
            DataType::Int,
            Adornment::Output,
        )],
    )?;
    let mut cases = Vec::new();
    for &width in &[2usize, 10, 50] {
        let selectivity = 1.0 / width as f64;

        // --- kernel microbenchmark ---------------------------------
        let rows = 4_096usize;
        let mk = |alias: &str, link: i64, rank: usize| -> CompositeTuple {
            CompositeTuple::single(
                alias,
                Tuple::builder(&schema)
                    .set("Link", Value::Int(link))
                    .score(1.0 - rank as f64 / rows as f64)
                    .source_rank(rank)
                    .build()
                    .expect("valid tuple"),
            )
        };
        let probe = mk("X", 0, 0);
        let chunk: Vec<CompositeTuple> =
            (0..rows).map(|i| mk("Y", (i % width) as i64, i)).collect();
        let predicates = vec![ResolvedPredicate::Join(seco_query::JoinPredicate {
            left: seco_query::QualifiedPath::new("X", AttributePath::atomic("Link")),
            op: Comparator::Eq,
            right: seco_query::QualifiedPath::new("Y", AttributePath::atomic("Link")),
        })];
        let mut schemas = SchemaMap::new();
        schemas.insert("X".into(), &schema);
        schemas.insert("Y".into(), &schema);
        let compiled =
            CompiledPredicates::compile(&predicates, &schemas).ok_or("predicates must compile")?;
        let plan = compiled
            .batch_plan(&[Symbol::intern("X")], &[Symbol::intern("Y")])
            .ok_or("equi-join must have a batch plan")?;
        let columns = plan
            .gather_columns(&chunk)
            .ok_or("uniform chunk must gather")?;
        let refs: Vec<_> = columns.iter().map(|c| c.as_ref()).collect();
        let reps = (evals_target / rows as u64).max(1);

        let mut mask = BitMask::default();
        let mut batch_selected = 0u64;
        let batch_start = Instant::now();
        for _ in 0..reps {
            mask.reset_ones(rows);
            assert!(plan.eval_mask(Some(&probe), &refs, &mut mask));
            batch_selected += mask.count_ones() as u64;
        }
        let batch_secs = batch_start.elapsed().as_secs_f64();

        let mut scratch = EvalScratch::default();
        let mut scalar_selected = 0u64;
        let scalar_start = Instant::now();
        for _ in 0..reps {
            for y in &chunk {
                let candidate = probe.merge(y).expect("disjoint atoms merge");
                if compiled.eval(&candidate, &mut scratch)? {
                    scalar_selected += 1;
                }
            }
        }
        let scalar_secs = scalar_start.elapsed().as_secs_f64();
        assert_eq!(
            batch_selected, scalar_selected,
            "kernel and scalar loop must select the same rows at width {width}"
        );
        let evals = reps * rows as u64;
        let batch_eps = evals as f64 / batch_secs.max(1e-9);
        let scalar_eps = evals as f64 / scalar_secs.max(1e-9);
        let speedup = batch_eps / scalar_eps;

        // --- full tile-space join under both planes ----------------
        let (col, col_ms) = run_indexed_join(
            total,
            10,
            width,
            JoinIndexOptions::default(),
            ColumnarOptions::default(),
        )?;
        let (row, row_ms) = run_indexed_join(
            total,
            10,
            width,
            JoinIndexOptions::default(),
            ColumnarOptions::row_plane(),
        )?;
        let render = |out: &JoinOutcome| -> String {
            out.results
                .iter()
                .map(|c| format!("{:?};", c.materialize()))
                .collect()
        };
        assert_eq!(
            render(&col),
            render(&row),
            "columnar plane must be byte-identical at width {width}"
        );
        assert_eq!(col.stats.predicate_evals, row.stats.predicate_evals);
        assert_eq!(row.stats.batch_evals, 0);
        assert_eq!(row.stats.columns_scanned, 0);

        println!(
            "columnar-vs-row (sel {selectivity:.2}): kernel {batch_eps:.2e} evals/s vs \
             scalar {scalar_eps:.2e} ({speedup:.1}x); full join {col_ms:.1} ms vs \
             {row_ms:.1} ms, {} batch evals, {} columns scanned, {} rows materialized",
            col.stats.batch_evals, col.stats.columns_scanned, col.stats.rows_materialized
        );
        cases.push(serde_json::json!({
            "selectivity": selectivity,
            "kernel": {
                "rows_per_batch": rows,
                "predicate_evals": evals,
                "batch_evals_per_sec": batch_eps,
                "scalar_evals_per_sec": scalar_eps,
                "batch_speedup": speedup,
                "meets_2x_at_low_selectivity": selectivity > 0.02 || speedup >= 2.0,
            },
            "full_join": {
                "byte_identical_to_row_plane": true,
                "predicate_evals": col.stats.predicate_evals,
                "columnar": {
                    "wall_ms": col_ms,
                    "batch_evals": col.stats.batch_evals,
                    "columns_scanned": col.stats.columns_scanned,
                    "rows_materialized": col.stats.rows_materialized,
                },
                "row_plane": {
                    "wall_ms": row_ms,
                    "batch_evals": row.stats.batch_evals,
                    "columns_scanned": row.stats.columns_scanned,
                    "rows_materialized": row.stats.rows_materialized,
                },
            },
        }));
    }
    Ok(serde_json::Value::Array(cases))
}

/// The rank-join operator vs enumerate-then-sort on the deep-chain
/// scenario (equi-join selectivity 0.02, chunk 20): the threshold
/// bound must cut chunk fetches ≥3× at k=5 and reach the provably
/// final k-th result ≥2× sooner than full enumeration can.
fn bench_rank_vs_full(total: usize) -> Result<serde_json::Value, DynError> {
    use seco_join::{score_order, RankJoin, TileSpace};
    use seco_model::ScoringFunction;

    let width = 50usize; // selectivity 1/50 = 0.02
    let chunk = 20usize;
    let k = 5usize;
    let (sx, sy) = join_pair_with_width(
        ScoreDecay::Linear,
        ScoreDecay::Quadratic,
        total,
        chunk,
        17,
        width,
    );
    let req = Request::unbound().bind(AttributePath::atomic("Key"), Value::text("q"));
    let predicates = vec![ResolvedPredicate::Join(seco_query::JoinPredicate {
        left: seco_query::QualifiedPath::new("X", AttributePath::atomic("Link")),
        op: Comparator::Eq,
        right: seco_query::QualifiedPath::new("Y", AttributePath::atomic("Link")),
    })];
    let mut schemas = SchemaMap::new();
    schemas.insert("X".into(), &sx.interface().schema);
    schemas.insert("Y".into(), &sy.interface().schema);

    // Full enumeration: fetch everything, join, sort, truncate. The
    // k-th result is only known once the whole answer is in hand, so
    // its time-to-kth is the entire run.
    let full_exec = ParallelJoinExecutor {
        predicates: &predicates,
        schemas: &schemas,
        invocation: Invocation::merge_scan_even(),
        completion: Completion::Rectangular,
        h: 1,
        k: 0,
        options: JoinIndexOptions::default(),
        columnar: ColumnarOptions::default(),
        pool: None,
    };
    let mut x = ServiceStream::new("X", sx.as_ref(), req.clone());
    let mut y = ServiceStream::new("Y", sy.as_ref(), req.clone());
    let start = Instant::now();
    let full = full_exec.run(&mut x, &mut y)?;
    let mut prefix = full.results.clone();
    prefix.sort_by(score_order);
    prefix.truncate(k);
    let full_kth_us = (start.elapsed().as_micros() as u64).max(1);

    // Rank join: frontier-driven pulls under the threshold bound. The
    // tile space gives it the total chunk counts, so it can also
    // report how many fetches the bound provably saved.
    let rank_exec = ParallelJoinExecutor {
        predicates: &predicates,
        schemas: &schemas,
        invocation: Invocation::merge_scan_even(),
        completion: Completion::Rectangular,
        h: 1,
        k,
        options: JoinIndexOptions::default(),
        columnar: ColumnarOptions::default(),
        pool: None,
    };
    let space = TileSpace::new(
        ScoringFunction::new(ScoreDecay::Linear, total, chunk)?,
        ScoringFunction::new(ScoreDecay::Quadratic, total, chunk)?,
    );
    let rank = RankJoin {
        join: rank_exec,
        space: Some(space),
    };
    let mut x = ServiceStream::new("X", sx.as_ref(), req.clone());
    let mut y = ServiceStream::new("Y", sy.as_ref(), req);
    let start = Instant::now();
    let ranked = rank.run(&mut x, &mut y)?;
    let rank_us = (start.elapsed().as_micros() as u64).max(1);

    let render = |rows: &[CompositeTuple]| -> String {
        rows.iter()
            .map(|c| format!("{:?};", c.materialize()))
            .collect()
    };
    assert_eq!(
        render(&ranked.results),
        render(&prefix),
        "rank-join top-{k} must be the sorted full-enumeration prefix"
    );
    let rank_kth_us = ranked.stats.time_to_kth_us.max(1);
    let chunk_reduction =
        full.stats.chunks_fetched as f64 / ranked.stats.chunks_fetched.max(1) as f64;
    let kth_speedup = full_kth_us as f64 / rank_kth_us as f64;
    assert!(
        chunk_reduction >= 3.0,
        "rank join must fetch ≥3x fewer chunks at k={k} (full {}, rank {})",
        full.stats.chunks_fetched,
        ranked.stats.chunks_fetched,
    );
    assert!(
        kth_speedup >= 2.0,
        "rank join must reach the k-th result ≥2x sooner \
         (full {full_kth_us} us, rank {rank_kth_us} us)"
    );
    println!(
        "rank-vs-full (sel 0.02, chunk {chunk}, k={k}): \
         full {} chunks / kth at {full_kth_us} us, \
         rank {} chunks ({} saved, {} bound checks) / kth at {rank_kth_us} us, \
         {chunk_reduction:.1}x fewer chunks, {kth_speedup:.1}x faster to kth",
        full.stats.chunks_fetched,
        ranked.stats.chunks_fetched,
        ranked.stats.chunks_saved,
        ranked.stats.bound_checks,
    );
    Ok(serde_json::json!({
        "tuples_per_side": total,
        "chunk_size": chunk,
        "selectivity": 1.0 / width as f64,
        "k": k,
        "top_k_is_sorted_prefix": true,
        "full_enumeration": {
            "chunks_fetched": full.stats.chunks_fetched,
            "combinations": full.results.len(),
            "time_to_kth_us": full_kth_us,
        },
        "rank_join": {
            "chunks_fetched": ranked.stats.chunks_fetched,
            "chunks_saved": ranked.stats.chunks_saved,
            "bound_checks": ranked.stats.bound_checks,
            "time_to_kth_us": rank_kth_us,
            "wall_us": rank_us,
        },
        "chunk_fetch_reduction": chunk_reduction,
        "time_to_kth_speedup": kth_speedup,
        "meets_3x_chunk_target": chunk_reduction >= 3.0,
        "meets_2x_kth_target": kth_speedup >= 2.0,
    }))
}

/// The n-ary kernel vs the two-stage binary cascade over three
/// services: byte-identical answers, all intermediate composites
/// elided, and a faster join loop.
fn bench_nary_vs_cascade(rows: usize, iters: usize) -> Result<serde_json::Value, DynError> {
    use seco_join::executor::MemoryStream;
    use seco_join::{NaryJoin, NaryStage};
    use seco_model::{Adornment, AttributeDef, DataType, ScoringFunction, ServiceSchema};

    let width = 10usize;
    let chunk = 20usize;
    let schema = |name: &str| -> Result<ServiceSchema, DynError> {
        Ok(ServiceSchema::new(
            name,
            vec![
                AttributeDef::atomic("Link", DataType::Text, Adornment::Output),
                AttributeDef::atomic("Score", DataType::Float, Adornment::Ranked),
            ],
        )?)
    };
    let (sa, sb, sc) = (schema("A")?, schema("B")?, schema("C")?);
    let f = ScoringFunction::new(ScoreDecay::Linear, rows, chunk)?;
    let data =
        |atom: &str, s: &ServiceSchema, phase: usize| -> Result<Vec<CompositeTuple>, DynError> {
            (0..rows)
                .map(|i| {
                    let t = Tuple::builder(s)
                        .set(
                            "Link",
                            Value::Text(format!("hub-{}", (i * 7 + phase) % width)),
                        )
                        .set("Score", Value::float(f.score_at(i)))
                        .score(f.score_at(i))
                        .source_rank(i)
                        .build()?;
                    Ok(CompositeTuple::single(atom, t))
                })
                .collect()
        };
    let a = data("A", &sa, 0)?;
    let b = data("B", &sb, 1)?;
    let c = data("C", &sc, 2)?;
    let mut schemas = SchemaMap::new();
    schemas.insert("A".into(), &sa);
    schemas.insert("B".into(), &sb);
    schemas.insert("C".into(), &sc);
    let eq = |la: &str, ra: &str| -> ResolvedPredicate {
        ResolvedPredicate::Join(seco_query::JoinPredicate {
            left: seco_query::QualifiedPath::new(la, AttributePath::atomic("Link")),
            op: Comparator::Eq,
            right: seco_query::QualifiedPath::new(ra, AttributePath::atomic("Link")),
        })
    };
    let p1 = vec![eq("A", "B")];
    let p2 = vec![eq("A", "C")];
    let e1 = ParallelJoinExecutor {
        predicates: &p1,
        schemas: &schemas,
        invocation: Invocation::merge_scan_even(),
        completion: Completion::Rectangular,
        h: 1,
        k: 0,
        options: JoinIndexOptions::default(),
        columnar: ColumnarOptions::default(),
        pool: None,
    };
    let e2 = ParallelJoinExecutor {
        predicates: &p2,
        pool: None,
        ..e1
    };

    // Binary cascade: materialize A⋈B, then join the intermediates
    // against C through a second full tile-space pass.
    let mut cascade_out = Vec::new();
    let mut mid_rows = 0usize;
    let start = Instant::now();
    for _ in 0..iters {
        let mut x = MemoryStream::new(a.clone(), chunk);
        let mut yb = MemoryStream::new(b.clone(), chunk);
        let mid = e1.run(&mut x, &mut yb)?.results;
        mid_rows = mid.len();
        let mut m = MemoryStream::new(mid, chunk);
        let mut yc = MemoryStream::new(c.clone(), chunk);
        cascade_out = e2.run(&mut m, &mut yc)?.results;
    }
    let cascade_ms = start.elapsed().as_secs_f64() * 1e3;

    // N-ary kernel: one pass, prefix rows stay flat row-id tuples.
    let s1 = NaryStage {
        predicates: &p1,
        invocation: Invocation::merge_scan_even(),
        completion: Completion::Rectangular,
        h: 1,
        k: 0,
        left_chunk: chunk,
        right_chunk: chunk,
    };
    let s2 = NaryStage {
        predicates: &p2,
        ..s1
    };
    let nj = NaryJoin {
        schemas: &schemas,
        tile_prune: false,
        pool: None,
    };
    let groups = [a, b, c];
    let stages = [s1, s2];
    let mut nary_out = None;
    let start = Instant::now();
    for _ in 0..iters {
        nary_out = nj.run(&groups, &stages)?;
    }
    let nary_ms = start.elapsed().as_secs_f64() * 1e3;
    let nary_out = nary_out.ok_or("three uniform ranked services must be n-ary eligible")?;

    let render = |rows: &[CompositeTuple]| -> String {
        rows.iter()
            .map(|c| format!("{:?};", c.materialize()))
            .collect()
    };
    assert_eq!(
        render(&nary_out.results),
        render(&cascade_out),
        "n-ary kernel must be byte-identical to the binary cascade"
    );
    assert_eq!(
        nary_out.stats.intermediates_elided as usize, mid_rows,
        "every intermediate the cascade materialized must be elided"
    );
    let speedup = cascade_ms / nary_ms.max(1e-9);
    assert!(
        speedup >= 1.0,
        "n-ary kernel must beat the binary cascade on join-loop wall \
         clock (cascade {cascade_ms:.1} ms, nary {nary_ms:.1} ms)"
    );
    println!(
        "nary-vs-cascade ({rows}x3 tuples, {iters} iters): \
         cascade {cascade_ms:.1} ms ({mid_rows} intermediates), \
         nary {nary_ms:.1} ms ({} elided), {speedup:.2}x join-loop speedup",
        nary_out.stats.intermediates_elided,
    );
    Ok(serde_json::json!({
        "tuples_per_service": rows,
        "iters": iters,
        "chunk_size": chunk,
        "combinations": nary_out.results.len(),
        "byte_identical_to_cascade": true,
        "cascade": {
            "wall_ms": cascade_ms,
            "intermediates_materialized": mid_rows,
        },
        "nary": {
            "wall_ms": nary_ms,
            "intermediates_elided": nary_out.stats.intermediates_elided,
        },
        "join_loop_speedup": speedup,
        "nary_beats_cascade": speedup >= 1.0,
    }))
}

/// Tile representatives come off chunk headers: a quick self-check
/// that the real executor path reports them without rescans.
fn check_tile_representatives() -> Result<(), DynError> {
    let (sx, sy) = join_pair(ScoreDecay::Linear, ScoreDecay::Quadratic, 30, 5, 11);
    let req = Request::unbound().bind(AttributePath::atomic("Key"), Value::text("q"));
    let mut x = ServiceStream::new("X", sx.as_ref(), req.clone());
    let mut y = ServiceStream::new("Y", sy.as_ref(), req);
    let predicates = vec![ResolvedPredicate::Join(seco_query::JoinPredicate {
        left: seco_query::QualifiedPath::new("X", AttributePath::atomic("Link")),
        op: Comparator::Eq,
        right: seco_query::QualifiedPath::new("Y", AttributePath::atomic("Link")),
    })];
    let mut schemas = SchemaMap::new();
    schemas.insert("X".into(), &sx.interface().schema);
    schemas.insert("Y".into(), &sy.interface().schema);
    let exec = ParallelJoinExecutor {
        predicates: &predicates,
        schemas: &schemas,
        invocation: Invocation::merge_scan_even(),
        completion: Completion::Rectangular,
        h: 1,
        k: 0,
        options: JoinIndexOptions::default(),
        columnar: ColumnarOptions::default(),
        pool: None,
    };
    let out = exec.run(&mut x, &mut y)?;
    assert_eq!(out.tiles.len(), out.tile_representatives.len());
    assert!(out
        .tile_representatives
        .iter()
        .all(|r| (0.0..=1.0).contains(r)));
    Ok(())
}

fn main() -> Result<(), DynError> {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (iters, total, hits) = if smoke {
        (3, 60, 2_000)
    } else {
        (20, 200, 50_000)
    };
    println!("join_bench ({} mode)", if smoke { "smoke" } else { "full" });
    check_tile_representatives()?;
    let value = serde_json::json!({
        "mode": if smoke { "smoke" } else { "full" },
        "data_plane": bench_data_plane(iters, total, 10)?,
        "cache_hits": bench_cache_hits(hits)?,
        "e1": bench_e1()?,
        "index_vs_nested": bench_index_vs_nested(total)?,
        "columnar_vs_row": bench_columnar_vs_row(total, if smoke { 500_000 } else { 5_000_000 })?,
        "rank_vs_full": bench_rank_vs_full(if smoke { 400 } else { 1_000 })?,
        "nary_vs_cascade": bench_nary_vs_cascade(
            if smoke { 100 } else { 200 },
            if smoke { 3 } else { 10 },
        )?,
        "parallel_vs_serial": if smoke {
            // CI floor: the modeled speedup must clear 1.3x at 4
            // workers even on the small smoke shapes.
            bench_parallel_vs_serial(240, 120, 1.3)?
        } else {
            bench_parallel_vs_serial(1_200, 400, 2.0)?
        },
    });
    std::fs::create_dir_all("results")?;
    std::fs::write(
        "results/BENCH_join.json",
        serde_json::to_string_pretty(&value)?,
    )?;
    println!("wrote results/BENCH_join.json");
    Ok(())
}
