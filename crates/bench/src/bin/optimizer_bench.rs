//! `optimizer_bench` — benchmarks of the parallel branch-and-bound
//! optimizer (shared-incumbent search, incremental annotation, plan
//! cache), emitting `results/BENCH_optimizer.json`.
//!
//! Usage:
//!   cargo run --release -p seco-bench --bin optimizer_bench            # full
//!   cargo run --release -p seco-bench --bin optimizer_bench -- --smoke # CI
//!
//! Three benchmarks over the chapter's three-service E10 running
//! example (Movie ⋈ Theatre ⋈ Restaurant):
//!
//! * **parallel-scaling** — optimization wall time at 1/2/4/8 workers
//!   with incremental annotation, against the pre-change baseline
//!   (serial search, full re-annotation per fetch trial). Every
//!   configuration must produce a byte-identical winner for all five
//!   cost metrics; the headline speedup compares 4 workers +
//!   incremental annotation end-to-end against the baseline (on a
//!   single-core host the win is algorithmic — the thread fan-out
//!   itself cannot beat serial there, so `host_cpus` is recorded
//!   alongside);
//! * **delta-annotation** — full-annotation counts of the legacy
//!   phase 3 vs the incremental annotator (greedy heuristic, where
//!   every round probes each candidate), checking the ≥5× reduction;
//! * **plan-cache** — cold optimization vs warm fingerprint hits.

use std::sync::Arc;
use std::time::Instant;

use seco_optimizer::{CostMetric, Optimizer, Phase3Heuristic, PlanCache};
use seco_query::builder::running_example;
use seco_query::Query;
use seco_services::domains::entertainment;
use seco_services::ServiceRegistry;

type DynError = Box<dyn std::error::Error>;

fn e10() -> Result<(ServiceRegistry, Query), DynError> {
    let registry = entertainment::build_registry(1)?;
    let query = running_example();
    Ok((registry, query))
}

/// An optimizer in this PR's default configuration (incremental
/// annotation) with the greedy phase-3 heuristic, which exercises the
/// annotation path hardest.
fn optimizer(registry: &ServiceRegistry, workers: usize, incremental: bool) -> Optimizer<'_> {
    let mut opt = Optimizer::new(registry, CostMetric::RequestCount);
    opt.heuristics.phase3 = Phase3Heuristic::Greedy;
    opt.workers = workers;
    opt.incremental = incremental;
    opt
}

fn time_repeats<F: FnMut() -> Result<(), DynError>>(
    reps: usize,
    mut f: F,
) -> Result<f64, DynError> {
    let start = Instant::now();
    for _ in 0..reps {
        f()?;
    }
    Ok(start.elapsed().as_secs_f64() * 1e3)
}

/// Fastest single run out of `reps` — the standard estimator of the
/// true cost on a noisy shared host (outliers are scheduler
/// interference, never genuine speed).
fn time_best_of<F: FnMut() -> Result<(), DynError>>(
    reps: usize,
    mut f: F,
) -> Result<f64, DynError> {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        f()?;
        best = best.min(start.elapsed().as_secs_f64() * 1e3);
    }
    Ok(best)
}

/// Wall time across worker counts + the byte-identity check.
fn bench_parallel_scaling(reps: usize) -> Result<serde_json::Value, DynError> {
    let (registry, mut query) = e10()?;

    // Determinism first: every metric, every worker count, one winner.
    for metric in CostMetric::all() {
        let mut reference: Option<(u64, String)> = None;
        for workers in [1usize, 2, 4, 8] {
            let mut opt = Optimizer::new(&registry, metric);
            opt.workers = workers;
            let best = opt.optimize(&query)?;
            let got = (best.cost.to_bits(), best.plan.canonical_key());
            match &reference {
                None => reference = Some(got),
                Some(want) => assert_eq!(
                    &got, want,
                    "{metric} workers={workers}: winner must be byte-identical"
                ),
            }
        }
    }

    // Timed runs ask for the top 80 — a deep result page that gives
    // phase 3 enough increment rounds to dominate planning time.
    query.k = 80;

    // Pre-change baseline: serial search, full re-annotation phase 3.
    let baseline_ms = time_best_of(reps, || {
        optimizer(&registry, 1, false).optimize(&query)?;
        Ok(())
    })?;

    let mut walls: Vec<(usize, f64)> = Vec::new();
    let mut parallel4_ms = f64::NAN;
    for workers in [1usize, 2, 4, 8] {
        let ms = time_best_of(reps, || {
            optimizer(&registry, workers, true).optimize(&query)?;
            Ok(())
        })?;
        if workers == 4 {
            parallel4_ms = ms;
        }
        walls.push((workers, ms));
    }

    let host_cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let speedup = baseline_ms / parallel4_ms;
    let walls_str = walls
        .iter()
        .map(|(w, ms)| format!("w={w}: {ms:.2}"))
        .collect::<Vec<_>>()
        .join(", ");
    println!(
        "parallel-scaling (best of {reps} reps): baseline (serial, full \
         annotation) {baseline_ms:.2} ms/opt; incremental {walls_str} ms/opt; \
         4-worker end-to-end speedup {speedup:.1}x (host has {host_cpus} cpu)"
    );
    assert!(
        speedup >= 2.0,
        "end-to-end speedup at 4 workers must be >= 2x, got {speedup:.2}x"
    );
    Ok(serde_json::json!({
        "reps": reps,
        "timing": "best-of-reps per configuration",
        "baseline_serial_full_ms_per_opt": baseline_ms,
        "incremental_ms_per_opt": {
            "workers_1": walls[0].1,
            "workers_2": walls[1].1,
            "workers_4": walls[2].1,
            "workers_8": walls[3].1,
        },
        "speedup_at_4_workers_vs_baseline": speedup,
        "host_cpus": host_cpus,
        "note": "winner byte-identical across workers for all 5 metrics; \
                 on a 1-cpu host thread fan-out cannot add wall-clock, \
                 the speedup is the incremental-annotation win",
        "byte_identical_across_workers": true,
    }))
}

/// Full vs incremental annotation work (counters, not wall time).
fn bench_delta_annotation() -> Result<serde_json::Value, DynError> {
    let (registry, query) = e10()?;
    let mut out: Vec<serde_json::Value> = Vec::new();
    for (label, k) in [("k10", 10usize), ("k50", 50)] {
        let mut q = query.clone();
        q.k = k;
        let full = optimizer(&registry, 1, false).optimize(&q)?;
        let inc = optimizer(&registry, 1, true).optimize(&q)?;
        assert_eq!(
            full.cost.to_bits(),
            inc.cost.to_bits(),
            "{label}: both annotation modes must pick the same winner"
        );
        let ratio = full.stats.annotate_full as f64 / inc.stats.annotate_full.max(1) as f64;
        println!(
            "delta-annotation {label}: full mode {} full annotations; incremental \
             {} full + {} delta ({} memo hits) — {ratio:.1}x fewer full annotations",
            full.stats.annotate_full,
            inc.stats.annotate_full,
            inc.stats.annotate_delta,
            inc.stats.memo_hits,
        );
        assert!(
            ratio >= 5.0,
            "{label}: delta annotation must cut full annotations >= 5x, got {ratio:.1}x"
        );
        out.push(serde_json::json!({
            "workload": label,
            "full_mode_annotate_full": full.stats.annotate_full,
            "incremental_annotate_full": inc.stats.annotate_full,
            "incremental_annotate_delta": inc.stats.annotate_delta,
            "incremental_memo_hits": inc.stats.memo_hits,
            "full_annotation_reduction": ratio,
        }));
    }
    Ok(serde_json::json!(out))
}

/// Cold optimization vs warm plan-cache hits.
fn bench_plan_cache(warm_lookups: usize) -> Result<serde_json::Value, DynError> {
    let (registry, query) = e10()?;
    let cache = Arc::new(PlanCache::new());
    let mut opt = optimizer(&registry, 1, true);
    opt.cache = Some(Arc::clone(&cache));

    let start = Instant::now();
    let cold = opt.optimize(&query)?;
    let cold_ms = start.elapsed().as_secs_f64() * 1e3;
    assert_eq!(cold.stats.cache_misses, 1);
    assert_eq!(cold.stats.cache_inserts, 1);

    let warm_ms = time_repeats(warm_lookups, || {
        let hit = opt.optimize(&query)?;
        assert_eq!(hit.stats.cache_hits, 1, "warm lookups must hit");
        assert_eq!(
            hit.cost.to_bits(),
            cold.cost.to_bits(),
            "cached winner must equal the searched one"
        );
        Ok(())
    })?;
    let warm_per = warm_ms / warm_lookups as f64;
    let speedup = cold_ms / warm_per;
    println!(
        "plan-cache: cold optimize {cold_ms:.2} ms; warm hit {warm_per:.4} ms \
         ({warm_lookups} lookups) — {speedup:.0}x"
    );
    assert!(
        speedup > 1.0,
        "a cache hit must be faster than planning from scratch"
    );
    Ok(serde_json::json!({
        "cold_ms": cold_ms,
        "warm_ms_per_lookup": warm_per,
        "warm_lookups": warm_lookups,
        "hit_speedup": speedup,
    }))
}

fn main() -> Result<(), DynError> {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (reps, warm_lookups) = if smoke { (20, 200) } else { (200, 5_000) };
    println!(
        "optimizer_bench ({} mode)",
        if smoke { "smoke" } else { "full" }
    );

    let scaling = bench_parallel_scaling(reps)?;
    let delta = bench_delta_annotation()?;
    let cache = bench_plan_cache(warm_lookups)?;

    let report = serde_json::json!({
        "mode": if smoke { "smoke" } else { "full" },
        "workload": "E10 running example (Movie x Theatre x Restaurant), request-count metric, greedy phase 3",
        "parallel_scaling": scaling,
        "delta_annotation": delta,
        "plan_cache": cache,
    });
    std::fs::create_dir_all("results")?;
    std::fs::write(
        "results/BENCH_optimizer.json",
        serde_json::to_string_pretty(&report)?,
    )?;
    println!("wrote results/BENCH_optimizer.json");
    Ok(())
}
