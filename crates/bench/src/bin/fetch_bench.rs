//! `fetch_bench` — benchmarks of the fetch layer (sharded response
//! cache, request coalescing, speculative chunk prefetch), emitting the
//! `results/BENCH_fetch.json` baseline that seeds the perf trajectory.
//!
//! Usage:
//!   cargo run --release -p seco-bench --bin fetch_bench            # full
//!   cargo run --release -p seco-bench --bin fetch_bench -- --smoke # CI
//!
//! Four benchmarks:
//!
//! * **call-reduction** — the e21-style faulted chain workload, with
//!   and without the sharded cache: underlying service calls must drop
//!   by ≥ 30% (chains re-ask the same bound questions, §5.3);
//! * **shard-contention** — 8 threads hammering a hot cache at 1 shard
//!   vs 8 shards: wall time per hit under contention;
//! * **coalescing** — 8 threads racing one cold key on a slow service:
//!   exactly one underlying call reaches the service;
//! * **prefetch** — the deterministic executor with speculation on and
//!   off: byte-identical results, counters recorded; plus a pipelined
//!   8-service run exercising the batched output path.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::time::Instant;

use seco_bench::{chain_scenario, chain_scenario_with_faults, link_service};
use seco_engine::{execute_parallel, execute_plan, EngineConfig, FailureMode, FetchOptions};
use seco_model::{AttributePath, ScoreDecay, ServiceInterface, Value};
use seco_optimizer::{optimize, CostMetric};
use seco_services::cache::CachingService;
use seco_services::invocation::{ChunkResponse, Request, Service};
use seco_services::synthetic::FaultProfile;
use seco_services::{ClientConfig, ServiceError};

type DynError = Box<dyn std::error::Error>;

/// The e21-style transient-fault profile: every service flakes, the
/// client's retries recover every fault, and the fetch layer's job is
/// to stop the retry storm from multiplying I/O.
fn flaky() -> FaultProfile {
    FaultProfile {
        seed: 21,
        transient_rate: 0.25,
        ..FaultProfile::none()
    }
}

fn client() -> ClientConfig {
    ClientConfig {
        retries: 8,
        seed: 9,
        ..Default::default()
    }
}

/// Chain workload, cache on/off: underlying calls and issued requests.
fn bench_call_reduction(n: usize) -> Result<serde_json::Value, DynError> {
    let run = |fetch: FetchOptions| -> Result<(u64, usize, usize, u64, u64), DynError> {
        let (reg, query) = chain_scenario_with_faults(n, 7, flaky());
        let best = optimize(&query, &reg, CostMetric::RequestCount)?;
        reg.reset_stats();
        let opts = EngineConfig {
            failure_mode: FailureMode::Degrade,
            client: Some(client()),
            fetch,
            ..Default::default()
        };
        let out = execute_plan(&best.plan, &reg, opts)?;
        let stats = reg.total_stats();
        Ok((
            stats.calls,
            out.total_calls,
            out.results.len(),
            stats.cache_hits,
            stats.retries,
        ))
    };
    let (base_calls, base_issued, base_results, _, base_retries) = run(FetchOptions::default())?;
    let (cached_calls, cached_issued, cached_results, hits, cached_retries) =
        run(FetchOptions::cached(8))?;
    let reduction = 100.0 * (base_calls as f64 - cached_calls as f64) / base_calls as f64;
    println!(
        "call-reduction (chain n={n}, flaky): {base_calls} -> {cached_calls} underlying calls \
         ({reduction:.1}% fewer), {hits} hits, retries {base_retries} -> {cached_retries}"
    );
    assert_eq!(
        base_results, cached_results,
        "the cache must not change the answer"
    );
    Ok(serde_json::json!({
        "chain_n": n,
        "baseline_underlying_calls": base_calls,
        "cached_underlying_calls": cached_calls,
        "reduction_pct": reduction,
        "meets_30pct_target": reduction >= 30.0,
        "baseline_issued_requests": base_issued,
        "cached_issued_requests": cached_issued,
        "cache_hits": hits,
        "baseline_retries": base_retries,
        "cached_retries": cached_retries,
        "results": base_results,
    }))
}

/// A service whose calls really block, to open a coalescing window; at
/// `delay_ms: 0` it is a zero-cost call counter for contention runs.
struct SlowService {
    iface: ServiceInterface,
    calls: AtomicU64,
    delay_ms: u64,
}

impl Service for SlowService {
    fn interface(&self) -> &ServiceInterface {
        &self.iface
    }
    fn fetch(&self, _request: &Request) -> Result<ChunkResponse, ServiceError> {
        self.calls.fetch_add(1, Ordering::SeqCst);
        if self.delay_ms > 0 {
            std::thread::sleep(std::time::Duration::from_millis(self.delay_ms));
        }
        Ok(ChunkResponse::empty(self.delay_ms as f64))
    }
}

/// 8 threads hammering pre-warmed keys: wall time and contended lock
/// acquisitions at 1 shard (one global lock, the old layout) vs 8
/// shards. The service returns empty chunks so the shard lock, not
/// tuple cloning, dominates; the contended-acquisition count is the
/// host-independent signal (on a single-core box the wall times only
/// measure overhead, since threads never truly run in parallel).
fn bench_shard_contention(iters: usize) -> Result<serde_json::Value, DynError> {
    const THREADS: usize = 8;
    const KEYS: usize = 64;
    let time_shards = |shards: usize| -> Result<(f64, u64), DynError> {
        let inner = Arc::new(SlowService {
            iface: link_service("Hot1", 20.0, 5, 1.0, ScoreDecay::Linear),
            calls: AtomicU64::new(0),
            delay_ms: 0,
        });
        let cache = Arc::new(CachingService::sharded(inner, 4096, shards));
        // Integer keys keep the per-call hash cheap, so the shard lock
        // is the dominant cost being measured.
        let reqs: Vec<Request> = (0..KEYS)
            .map(|i| Request::unbound().bind(AttributePath::atomic("Key"), Value::Int(i as i64)))
            .collect();
        for r in &reqs {
            cache.fetch(r)?;
        }
        let barrier = Barrier::new(THREADS);
        let start = Instant::now();
        std::thread::scope(|scope| {
            for t in 0..THREADS {
                let cache = &cache;
                let reqs = &reqs;
                let barrier = &barrier;
                scope.spawn(move || {
                    barrier.wait();
                    for i in 0..iters {
                        let _ = cache.fetch(&reqs[(t + i) % KEYS]);
                    }
                });
            }
        });
        let elapsed = start.elapsed().as_secs_f64() * 1e3;
        assert_eq!(cache.hits(), (THREADS * iters + KEYS) as u64 - KEYS as u64);
        Ok((elapsed, cache.lock_contentions()))
    };
    let (one_ms, one_contended) = time_shards(1)?;
    let (eight_ms, eight_contended) = time_shards(8)?;
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "shard-contention ({THREADS} threads x {iters} hits, {cores} core(s)): \
         1 shard {one_ms:.1} ms / {one_contended} contended, \
         8 shards {eight_ms:.1} ms / {eight_contended} contended"
    );
    Ok(serde_json::json!({
        "threads": THREADS,
        "hits_per_thread": iters,
        "host_cores": cores,
        "one_shard_ms": one_ms,
        "eight_shards_ms": eight_ms,
        "one_shard_contended_acquisitions": one_contended,
        "eight_shards_contended_acquisitions": eight_contended,
        "speedup": one_ms / eight_ms,
    }))
}

/// 8 threads racing one cold key: singleflight admits one call.
fn bench_coalescing() -> Result<serde_json::Value, DynError> {
    const THREADS: usize = 8;
    let slow = Arc::new(SlowService {
        iface: link_service("Slow1", 20.0, 5, 30.0, ScoreDecay::Linear),
        calls: AtomicU64::new(0),
        delay_ms: 30,
    });
    let cache = Arc::new(CachingService::sharded(slow.clone(), 64, 8));
    let req = Request::unbound().bind(AttributePath::atomic("Key"), Value::text("contested"));
    let barrier = Barrier::new(THREADS);
    std::thread::scope(|scope| {
        for _ in 0..THREADS {
            let cache = &cache;
            let req = &req;
            let barrier = &barrier;
            scope.spawn(move || {
                barrier.wait();
                cache.fetch(req).unwrap();
            });
        }
    });
    let underlying = slow.calls.load(Ordering::SeqCst);
    println!(
        "coalescing ({THREADS} racing threads, 30 ms call): {underlying} underlying call(s), \
         {} coalesced, {} hits",
        cache.coalesced(),
        cache.hits()
    );
    assert_eq!(underlying, 1, "singleflight must admit exactly one call");
    Ok(serde_json::json!({
        "racing_threads": THREADS,
        "underlying_calls": underlying,
        "coalesced_waits": cache.coalesced(),
        "late_hits": cache.hits(),
    }))
}

/// Prefetch on/off under the deterministic executor (byte-identical
/// answers) and a pipelined 8-service run over the batched channels.
/// Bumps service nodes' chunk budgets (all atoms, or just `atom`): the
/// request-count optimizer budgets a single chunk per call, which
/// leaves speculation with nothing to run ahead of.
fn widen_fetches(plan: &mut seco_plan::QueryPlan, fetches: u32, atom: Option<&str>) {
    for id in plan.node_ids().collect::<Vec<_>>() {
        if let Ok(seco_plan::PlanNode::Service(s)) = plan.node_mut(id) {
            if atom.is_none_or(|a| s.atom == a) {
                s.fetches = fetches;
            }
        }
    }
}

fn bench_prefetch(n_parallel: usize) -> Result<serde_json::Value, DynError> {
    let (reg, query) = chain_scenario(4, 7);
    let best = optimize(&query, &reg, CostMetric::RequestCount)?;
    let mut plan = best.plan;
    widen_fetches(&mut plan, 3, None);
    let opts = |fetch: FetchOptions| EngineConfig {
        fetch,
        ..Default::default()
    };
    reg.reset_stats();
    let off = execute_plan(&plan, &reg, opts(FetchOptions::cached(8)))?;
    let calls_off = reg.total_stats().calls;
    reg.reset_stats();
    let on = execute_plan(&plan, &reg, opts(FetchOptions::cached(8).with_prefetch()))?;
    let stats_on = reg.total_stats();
    let identical = format!("{:?}", off.results) == format!("{:?}", on.results);
    println!(
        "prefetch (chain n=4): identical={identical}, {} prefetches, \
         underlying calls {calls_off} -> {}",
        stats_on.prefetches, stats_on.calls
    );
    assert!(identical, "prefetch must not change the answer");
    assert!(stats_on.prefetches > 0, "speculation must have triggered");

    // Pipelined executor, n services, batched output path.
    let (preg, pquery) = chain_scenario(n_parallel, 7);
    let pbest = optimize(&pquery, &preg, CostMetric::RequestCount)?;
    let mut pplan = pbest.plan;
    // Widening every stage of a deep chain multiplies intermediate
    // tuples exponentially; the head alone is enough to keep the
    // background prefetcher busy.
    widen_fetches(&mut pplan, 3, Some("A1"));
    let start = Instant::now();
    let seq = execute_plan(&pplan, &preg, opts(FetchOptions::cached(8)))?;
    let seq_ms = start.elapsed().as_secs_f64() * 1e3;
    let start = Instant::now();
    let par = execute_parallel(&pplan, &preg, opts(FetchOptions::cached(8).with_prefetch()))?;
    let par_ms = start.elapsed().as_secs_f64() * 1e3;
    println!(
        "pipelined (chain n={n_parallel}, batched channels): {} results in {par_ms:.1} ms \
         (sequential {seq_ms:.1} ms)",
        par.len()
    );
    assert_eq!(par.len(), seq.results.len(), "executors must agree");
    Ok(serde_json::json!({
        "deterministic_identical_with_prefetch": identical,
        "prefetches": stats_on.prefetches,
        "underlying_calls_prefetch_off": calls_off,
        "underlying_calls_prefetch_on": stats_on.calls,
        "parallel_chain_n": n_parallel,
        "parallel_results": par.len(),
        "parallel_wall_ms": par_ms,
        "sequential_wall_ms": seq_ms,
    }))
}

fn main() -> Result<(), DynError> {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (chain_n, contention_iters, par_n) = if smoke {
        (3, 5_000, 4)
    } else {
        (4, 100_000, 6)
    };
    println!(
        "fetch_bench ({} mode)",
        if smoke { "smoke" } else { "full" }
    );
    let value = serde_json::json!({
        "mode": if smoke { "smoke" } else { "full" },
        "call_reduction": bench_call_reduction(chain_n)?,
        "shard_contention": bench_shard_contention(contention_iters)?,
        "coalescing": bench_coalescing()?,
        "prefetch": bench_prefetch(par_n)?,
    });
    std::fs::create_dir_all("results")?;
    std::fs::write(
        "results/BENCH_fetch.json",
        serde_json::to_string_pretty(&value)?,
    )?;
    println!("wrote results/BENCH_fetch.json");
    Ok(())
}
