//! `repro` — regenerates every experiment behind EXPERIMENTS.md.
//!
//! Usage:
//!   cargo run -p seco-bench --bin repro            # all experiments
//!   cargo run -p seco-bench --bin repro e6 e8      # selected ones
//!
//! Each experiment prints a human-readable table and appends a JSON
//! record to `results/<id>.json` so the numbers in EXPERIMENTS.md are
//! diffable against re-runs.

use std::fmt::Write as _;

use seco_bench::{chain_scenario, join_pair, star_scenario};
use seco_engine::{execute_parallel, execute_plan, EngineConfig, ResultSet};
use seco_join::completion::explore;
use seco_join::executor::{ParallelJoinExecutor, ServiceStream};
use seco_join::optimality::{
    inversion_rate, is_globally_extraction_optimal, is_locally_extraction_optimal,
};
use seco_join::tile::TileSpace;
use seco_join::JoinMethod;
use seco_model::{AttributePath, Comparator, ScoreDecay, ScoringFunction, Value};
use seco_optimizer::exhaustive::optimize_exhaustive_with_costs;
use seco_optimizer::phase1::enumerate_assignments;
use seco_optimizer::phase2::enumerate_topologies;
use seco_optimizer::phase3::assign_fetches;
use seco_optimizer::{
    optimize, CostMetric, HeuristicSet, Optimizer, Phase1Heuristic, Phase2Heuristic,
    Phase3Heuristic,
};
use seco_plan::{annotate, display, AnnotationConfig, Completion, Invocation, PlanNode};
use seco_query::builder::running_example;
use seco_query::feasibility::analyze;
use seco_query::predicate::{ResolvedPredicate, SchemaMap};
use seco_query::{evaluate_oracle, QueryBuilder};
use seco_services::domains::{entertainment, travel};
use seco_services::invocation::Request;
use seco_services::Service;

type DynError = Box<dyn std::error::Error>;

fn save_json(id: &str, value: serde_json::Value) -> Result<(), DynError> {
    std::fs::create_dir_all("results")?;
    std::fs::write(
        format!("results/{id}.json"),
        serde_json::to_string_pretty(&value)?,
    )?;
    Ok(())
}

fn banner(id: &str, title: &str) {
    println!("\n================================================================");
    println!("{id}: {title}");
    println!("================================================================");
}

/// E1 — Fig. 2/3: the travel plan, annotated.
fn e1() -> Result<(), DynError> {
    banner(
        "E1",
        "Fig. 2/3 — annotated Conference/Weather/Flight/Hotel plan",
    );
    let registry = travel::build_registry(5)?;
    let query = QueryBuilder::new()
        .atom("C", "Conference1")
        .atom("W", "Weather1")
        .atom("F", "Flight1")
        .atom("H", "Hotel1")
        .pattern("Forecast", "C", "W")
        .pattern("ReachedBy", "C", "F")
        .pattern("StayAt", "C", "H")
        .pattern("SameTrip", "F", "H")
        .select_const("C", "Topic", Comparator::Eq, Value::text("databases"))
        .select_const("W", "AvgTemp", Comparator::Gt, Value::Int(26))
        .build()?;
    let joins = query.expanded_joins(&registry)?;
    let same_trip: Vec<_> = joins
        .iter()
        .filter(|j| j.connects("F", "H"))
        .cloned()
        .collect();
    let mut plan = seco_plan::QueryPlan::new(query.clone());
    let c = plan.add(PlanNode::Service(seco_plan::ServiceNode::new(
        "C",
        "Conference1",
    )));
    let w = plan.add(PlanNode::Service(seco_plan::ServiceNode::new(
        "W", "Weather1",
    )));
    let sel = plan.add(PlanNode::Selection(
        seco_plan::SelectionNode::new(vec![query.selections[1].clone()]).with_selectivity(0.25),
    ));
    let f = plan.add(PlanNode::Service(
        seco_plan::ServiceNode::new("F", "Flight1").with_fetches(2),
    ));
    let h = plan.add(PlanNode::Service(
        seco_plan::ServiceNode::new("H", "Hotel1").with_fetches(2),
    ));
    let j = plan.add(PlanNode::ParallelJoin(seco_plan::JoinSpec {
        invocation: Invocation::merge_scan_even(),
        completion: Completion::Rectangular,
        predicates: same_trip,
        selectivity: 1.0,
    }));
    plan.connect(plan.input(), c)?;
    plan.connect(c, w)?;
    plan.connect(w, sel)?;
    plan.connect(sel, f)?;
    plan.connect(sel, h)?;
    plan.connect(f, j)?;
    plan.connect(h, j)?;
    plan.connect(j, plan.output())?;
    let ann = annotate(&plan, &registry, &AnnotationConfig::default())?;
    println!("{}", display::ascii(&plan, Some(&ann))?);
    let outcome = execute_plan(
        &plan,
        &registry,
        EngineConfig {
            join_k: 10,
            ..Default::default()
        },
    )?;
    println!(
        "measured: {} calls, {} combinations",
        outcome.total_calls,
        outcome.results.len()
    );
    save_json(
        "e1",
        serde_json::json!({
            "estimated": {
                "conference_out": ann.annotation(c).tout,
                "weather_calls": ann.annotation(w).calls,
                "selection_out": ann.annotation(sel).tout,
                "flight_calls": ann.annotation(f).calls,
                "total_calls": ann.total_calls(),
            },
            "measured": {
                "total_calls": outcome.total_calls,
                "combinations": outcome.results.len(),
            },
        }),
    )
}

/// E2 — Fig. 4: the tile space and its representatives.
fn e2() -> Result<(), DynError> {
    banner("E2", "Fig. 4 — tile space and ranking representatives");
    let fx = ScoringFunction::new(ScoreDecay::Linear, 40, 10)?;
    let fy = ScoringFunction::new(ScoreDecay::Quadratic, 40, 10)?;
    let space = TileSpace::new(fx, fy);
    println!("tile representatives (ρX·ρY at the tile's top-left point):");
    let mut grid = String::new();
    for y in 0..space.ny {
        for x in 0..space.nx {
            write!(
                grid,
                "{:>7.3}",
                space.representative(seco_join::Tile::new(x, y))
            )?;
        }
        grid.push('\n');
    }
    println!("{grid}");
    let order = space.optimal_order();
    println!(
        "globally extraction-optimal order starts: {:?}",
        &order[..6.min(order.len())]
    );
    save_json(
        "e2",
        serde_json::json!({
            "nx": space.nx, "ny": space.ny,
            "first_tiles": order.iter().take(6).map(|t| [t.x, t.y]).collect::<Vec<_>>(),
        }),
    )
}

fn order_grid(order: &[seco_join::Tile], nx: usize, ny: usize) -> String {
    let mut cells = vec![vec![0usize; ny]; nx];
    for (rank, t) in order.iter().enumerate() {
        cells[t.x][t.y] = rank;
    }
    let mut out = String::new();
    for y in 0..ny {
        for col in cells.iter().take(nx) {
            let _ = write!(out, "{:>4}", col[y]);
        }
        out.push('\n');
    }
    out
}

/// E3 — Fig. 5: nested-loop vs merge-scan exploration orders.
fn e3() -> Result<(), DynError> {
    banner(
        "E3",
        "Fig. 5 — nested-loop (a) vs merge-scan (b) exploration orders",
    );
    let nl = explore(Invocation::NestedLoop, Completion::Rectangular, 3, 6, 6)?;
    println!(
        "(a) nested-loop, h = 3 (tile processing ranks):\n{}",
        order_grid(&nl.order, 6, 6)
    );
    let ms = explore(
        Invocation::merge_scan_even(),
        Completion::Triangular,
        1,
        6,
        6,
    )?;
    println!(
        "(b) merge-scan, triangular:\n{}",
        order_grid(&ms.order, 6, 6)
    );
    save_json(
        "e3",
        serde_json::json!({
            "nested_loop_first_10": nl.order.iter().take(10).map(|t| [t.x, t.y]).collect::<Vec<_>>(),
            "merge_scan_first_10": ms.order.iter().take(10).map(|t| [t.x, t.y]).collect::<Vec<_>>(),
        }),
    )
}

/// E4 — Fig. 6: rectangular completions and the degenerate thin case.
fn e4() -> Result<(), DynError> {
    banner(
        "E4",
        "Fig. 6 — rectangular completion; degenerate thin rectangles",
    );
    let mut rows = Vec::new();
    for (label, h, nx, ny) in [
        ("balanced 6×6, h=3", 3usize, 6usize, 6usize),
        ("thin 8×1 (all calls to one service)", 8, 8, 1),
        ("thin 1×8", 1, 1, 8),
    ] {
        let e = explore(Invocation::NestedLoop, Completion::Rectangular, h, nx, ny)?;
        let ones = e.tiles_per_call.iter().filter(|&&n| n == 1).count();
        println!(
            "{label:<38} tiles/call = {:?}  (calls adding exactly 1 tile: {ones}/{})",
            e.tiles_per_call,
            e.tiles_per_call.len()
        );
        rows.push(serde_json::json!({
            "case": label, "tiles_per_call": e.tiles_per_call, "single_tile_calls": ones,
        }));
    }
    save_json("e4", serde_json::json!(rows))
}

/// E5 — Fig. 7: merge-scan rectangular r=1 grows squares.
fn e5() -> Result<(), DynError> {
    banner(
        "E5",
        "Fig. 7 — merge-scan (r = 1/1) with rectangular completion",
    );
    let e = explore(
        Invocation::merge_scan_even(),
        Completion::Rectangular,
        1,
        4,
        4,
    )?;
    println!("{}", order_grid(&e.order, 4, 4));
    // After 2m calls the explored region is the m×m square.
    let mut squares_ok = true;
    for m in 1..=4usize {
        let upto: std::collections::BTreeSet<_> =
            e.order.iter().take(m * m).map(|t| (t.x, t.y)).collect();
        let expected: std::collections::BTreeSet<_> =
            (0..m).flat_map(|x| (0..m).map(move |y| (x, y))).collect();
        let ok = upto == expected;
        squares_ok &= ok;
        println!(
            "after {:>2} tiles: explored region is the {m}×{m} square: {ok}",
            m * m
        );
    }
    save_json(
        "e5",
        serde_json::json!({ "squares_of_increasing_size": squares_ok }),
    )
}

/// Runs one parallel join of two synthetic services to `k` results
/// (`k = 0` explores everything). Returns `(calls, results)`.
fn run_join(
    decay_x: ScoreDecay,
    decay_y: ScoreDecay,
    invocation: Invocation,
    completion: Completion,
    k: usize,
    seed: u64,
) -> Result<(usize, Vec<seco_model::CompositeTuple>), DynError> {
    let (sx, sy) = join_pair(decay_x, decay_y, 60, 5, seed);
    let req = Request::unbound().bind(AttributePath::atomic("Key"), Value::text("q"));
    let mut x = ServiceStream::new("X", sx.as_ref(), req.clone());
    let mut y = ServiceStream::new("Y", sy.as_ref(), req);
    let predicates = vec![ResolvedPredicate::Join(seco_query::JoinPredicate {
        left: seco_query::QualifiedPath::new("X", AttributePath::atomic("Link")),
        op: Comparator::Eq,
        right: seco_query::QualifiedPath::new("Y", AttributePath::atomic("Link")),
    })];
    let mut schemas = SchemaMap::new();
    schemas.insert("X".into(), &sx.interface().schema);
    schemas.insert("Y".into(), &sy.interface().schema);
    let h = decay_x.step_chunks().unwrap_or(1);
    let exec = ParallelJoinExecutor {
        predicates: &predicates,
        schemas: &schemas,
        invocation,
        completion,
        h,
        k,
        options: seco_join::JoinIndexOptions::default(),
        columnar: seco_join::ColumnarOptions::default(),
        pool: None,
    };
    let out = exec.run(&mut x, &mut y)?;
    Ok((out.calls_x + out.calls_y, out.results))
}

/// Identity of a joined pair, for recall computation.
fn pair_id(c: &seco_model::CompositeTuple) -> (usize, usize) {
    (c.components[0].source_rank, c.components[1].source_rank)
}

/// E6 — §4 claim: NL suits step scoring, MS suits progressive scoring.
fn e6() -> Result<(), DynError> {
    banner(
        "E6",
        "§4.3 — reaching k=30 joined results: NL vs MS, step vs progressive",
    );
    println!(
        "{:<26} {:<10} {:>7} {:>12} {:>12}",
        "scoring of X", "method", "calls", "top-k recall", "inversions"
    );
    let k = 30usize;
    let mut rows = Vec::new();
    for (slabel, dx) in [
        (
            "step(h=2)",
            ScoreDecay::Step {
                h: 2,
                high: 0.95,
                low: 0.05,
            },
        ),
        ("linear", ScoreDecay::Linear),
    ] {
        for (mlabel, inv, comp) in [
            ("NL/rect", Invocation::NestedLoop, Completion::Rectangular),
            (
                "MS/rect",
                Invocation::merge_scan_even(),
                Completion::Rectangular,
            ),
            (
                "MS/tri",
                Invocation::merge_scan_even(),
                Completion::Triangular,
            ),
        ] {
            // Average over a few seeds to smooth data luck.
            let (mut calls, mut recall, mut invr) = (0.0, 0.0, 0.0);
            let seeds = [3u64, 11, 17, 29];
            for &s in &seeds {
                // Ground truth: the exhaustive join sorted by the score
                // product — the reference of extraction-optimality.
                let (_, mut all) = run_join(dx, ScoreDecay::Linear, inv, comp, 0, s)?;
                all.sort_by(|a, b| {
                    b.score_product()
                        .partial_cmp(&a.score_product())
                        .unwrap_or(std::cmp::Ordering::Equal)
                });
                let truth: std::collections::BTreeSet<(usize, usize)> =
                    all.iter().take(k).map(pair_id).collect();
                let (c, emitted) = run_join(dx, ScoreDecay::Linear, inv, comp, k, s)?;
                let hits = emitted
                    .iter()
                    .filter(|e| truth.contains(&pair_id(e)))
                    .count();
                calls += c as f64;
                recall += hits as f64 / k.min(truth.len().max(1)) as f64;
                invr += inversion_rate(&emitted);
            }
            let n = seeds.len() as f64;
            println!(
                "{slabel:<26} {mlabel:<10} {:>7.1} {:>12.3} {:>12.3}",
                calls / n,
                recall / n,
                invr / n
            );
            rows.push(serde_json::json!({
                "scoring": slabel, "method": mlabel, "k": k,
                "mean_calls": calls / n, "mean_topk_recall": recall / n,
                "mean_inversion_rate": invr / n,
            }));
        }
    }
    save_json("e6", serde_json::json!(rows))
}

/// E7 — §4.4: extraction-optimality of the strategy grid.
fn e7() -> Result<(), DynError> {
    banner(
        "E7",
        "§4.4 — local/global extraction-optimality of the method grid",
    );
    println!(
        "{:<30} {:<10} {:>7} {:>8}",
        "scoring of X (Y linear)", "strategy", "local", "global"
    );
    let mut rows = Vec::new();
    for (slabel, dx) in [
        (
            "step(h=2, 1→0) ideal",
            ScoreDecay::Step {
                h: 2,
                high: 1.0,
                low: 0.0,
            },
        ),
        (
            "step(h=2, 0.95→0.1)",
            ScoreDecay::Step {
                h: 2,
                high: 0.95,
                low: 0.1,
            },
        ),
        ("linear", ScoreDecay::Linear),
        ("quadratic", ScoreDecay::Quadratic),
    ] {
        let fx = ScoringFunction::new(dx, 60, 10)?;
        let fy = ScoringFunction::new(ScoreDecay::Linear, 60, 10)?;
        let space = TileSpace::new(fx, fy);
        for (mlabel, inv, comp, hh) in [
            (
                "NL/rect",
                Invocation::NestedLoop,
                Completion::Rectangular,
                dx.step_chunks().unwrap_or(2),
            ),
            (
                "MS/rect",
                Invocation::merge_scan_even(),
                Completion::Rectangular,
                1,
            ),
            (
                "MS/tri",
                Invocation::merge_scan_even(),
                Completion::Triangular,
                1,
            ),
        ] {
            let e = explore(inv, comp, hh, space.nx, space.ny)?;
            let local = is_locally_extraction_optimal(&e.calls, &e.order, &space);
            let global = is_globally_extraction_optimal(&e.order, &space);
            println!("{slabel:<30} {mlabel:<10} {local:>7} {global:>8}");
            rows.push(serde_json::json!({
                "scoring": slabel, "strategy": mlabel, "local": local, "global": global,
            }));
        }
    }
    println!(
        "\njoin-method grid (§4.5): {} methods, {} practically sensible",
        JoinMethod::all().len(),
        JoinMethod::all().iter().filter(|m| m.makes_sense()).count()
    );
    save_json("e7", serde_json::json!(rows))
}

/// E8 — Fig. 8: branch-and-bound pruning and scaling.
fn e8() -> Result<(), DynError> {
    banner(
        "E8",
        "Fig. 8 — branch-and-bound vs exhaustive; scaling with query size",
    );
    let registry = entertainment::build_registry(1)?;
    let query = running_example();
    println!("running example (3 services):");
    println!(
        "{:<16} {:>9} {:>13} {:>8} {:>12} {:>12}",
        "metric", "optimum", "instantiated", "pruned", "exhaustive", "same optimum"
    );
    let mut rows = Vec::new();
    for metric in CostMetric::all() {
        let bnb = optimize(&query, &registry, metric)?;
        let (ex, costs) = optimize_exhaustive_with_costs(&query, &registry, metric)?;
        println!(
            "{:<16} {:>9.1} {:>13} {:>8} {:>12} {:>12}",
            metric.to_string(),
            bnb.cost,
            bnb.stats.instantiated,
            bnb.stats.pruned,
            costs.len(),
            (bnb.cost - ex.cost).abs() < 1e-9
        );
        rows.push(serde_json::json!({
            "metric": metric.to_string(), "optimum": bnb.cost,
            "bnb_instantiated": bnb.stats.instantiated, "bnb_pruned": bnb.stats.pruned,
            "exhaustive_plans": costs.len(),
            "same_optimum": (bnb.cost - ex.cost).abs() < 1e-9,
        }));
    }
    println!("\nscaling over chain queries (request-count metric):");
    println!("(§5.4: \"if the access patterns determine a total order, then there is only one possible DAG\")");
    println!(
        "{:>3} {:>12} {:>13} {:>8} {:>10}",
        "n", "topologies", "instantiated", "pruned", "optimum"
    );
    let mut scaling = Vec::new();
    for n in 2..=6 {
        let (reg, q) = chain_scenario(n, 7);
        let best = optimize(&q, &reg, CostMetric::RequestCount)?;
        println!(
            "{n:>3} {:>12} {:>13} {:>8} {:>10.1}",
            best.stats.topologies, best.stats.instantiated, best.stats.pruned, best.cost
        );
        scaling.push(serde_json::json!({
            "n": n, "topologies": best.stats.topologies,
            "instantiated": best.stats.instantiated, "pruned": best.stats.pruned,
            "optimum": best.cost,
        }));
    }
    println!(
        "\nscaling over star queries (all atoms independently reachable — the space explodes):"
    );
    println!(
        "{:>3} {:>12} {:>13} {:>8} {:>13}",
        "n", "topologies", "instantiated", "pruned", "pruned %"
    );
    let mut star_scaling = Vec::new();
    for n in 2..=5 {
        let (reg, q) = star_scenario(n, 7);
        let best = optimize(&q, &reg, CostMetric::RequestCount)?;
        let pruned_pct = 100.0 * best.stats.pruned as f64 / best.stats.topologies.max(1) as f64;
        println!(
            "{n:>3} {:>12} {:>13} {:>8} {:>12.1}%",
            best.stats.topologies, best.stats.instantiated, best.stats.pruned, pruned_pct
        );
        star_scaling.push(serde_json::json!({
            "n": n, "topologies": best.stats.topologies,
            "instantiated": best.stats.instantiated, "pruned": best.stats.pruned,
        }));
    }
    save_json(
        "e8",
        serde_json::json!({
            "running_example": rows,
            "chain_scaling": scaling,
            "star_scaling": star_scaling,
        }),
    )
}

/// E9 — Fig. 9: the running example's topologies.
fn e9() -> Result<(), DynError> {
    banner(
        "E9",
        "Fig. 9 — admissible topologies of the running example",
    );
    let registry = entertainment::build_registry(1)?;
    let query = running_example();
    let report = analyze(&query, &registry)?;
    let plans = enumerate_topologies(
        &query,
        &registry,
        &report,
        Phase2Heuristic::ParallelIsBetter,
        64,
    )?;
    let mut listed = Vec::new();
    for (i, p) in plans.iter().enumerate() {
        let line = display::summary_line(p)?;
        println!("  ({}) {line}", (b'a' + i as u8) as char);
        listed.push(line);
    }
    println!(
        "\n{} structures enumerated; the chapter draws 4 (three chains + (M∥T)→R) and\n\
         continues with the parallel one; ours adds the undrawn M∥(T→R) variant.",
        plans.len()
    );
    save_json(
        "e9",
        serde_json::json!({ "count": plans.len(), "topologies": listed }),
    )
}

/// E10 — Fig. 10 / §5.6: the instantiation arithmetic.
fn e10() -> Result<(), DynError> {
    banner(
        "E10",
        "Fig. 10 / §5.6 — fully instantiated running example (K = 10)",
    );
    let registry = entertainment::build_registry(1)?;
    let query = running_example();
    let joins = query.expanded_joins(&registry)?;
    let shows: Vec<_> = joins
        .iter()
        .filter(|j| j.connects("M", "T"))
        .cloned()
        .collect();
    let mut plan = seco_plan::QueryPlan::new(query);
    let m = plan.add(PlanNode::Service(
        seco_plan::ServiceNode::new("M", "Movie1").with_fetches(5),
    ));
    let t = plan.add(PlanNode::Service(
        seco_plan::ServiceNode::new("T", "Theatre1").with_fetches(5),
    ));
    let j = plan.add(PlanNode::ParallelJoin(seco_plan::JoinSpec {
        invocation: Invocation::merge_scan_even(),
        completion: Completion::Triangular,
        predicates: shows,
        selectivity: entertainment::SHOWS_SELECTIVITY,
    }));
    let r = plan.add(PlanNode::Service(
        seco_plan::ServiceNode::new("R", "Restaurant1").with_keep_first(),
    ));
    plan.connect(plan.input(), m)?;
    plan.connect(plan.input(), t)?;
    plan.connect(m, j)?;
    plan.connect(t, j)?;
    plan.connect(j, r)?;
    plan.connect(r, plan.output())?;
    let ann = annotate(&plan, &registry, &AnnotationConfig::default())?;
    println!("{}", display::ascii(&plan, Some(&ann))?);
    let pairs = [
        ("tMovie_out (paper: 100)", ann.annotation(m).tout, 100.0),
        ("tTheatre_out (paper: 25)", ann.annotation(t).tout, 25.0),
        (
            "join candidates (paper: 1250)",
            ann.annotation(j).tin,
            1250.0,
        ),
        ("tMS_out (paper: 25)", ann.annotation(j).tout, 25.0),
        ("tRestaurant_in (paper: 25)", ann.annotation(r).tin, 25.0),
        (
            "tRestaurant_out = K (paper: 10)",
            ann.annotation(r).tout,
            10.0,
        ),
    ];
    let mut ok = true;
    for (label, ours, paper) in pairs {
        let agree = (ours - paper).abs() < 1e-9;
        ok &= agree;
        println!("{label:<36} ours = {ours:<8.1} match: {agree}");
    }
    // Execute the instantiated plan with the hash-indexed join kernel
    // (byte-identical to the nested loop; tests/join_index.rs proves
    // it) and report the kernel's work counters.
    let result = execute_plan(
        &plan,
        &registry,
        EngineConfig {
            join_k: 10,
            ..Default::default()
        },
    )?;
    let js = result.join_stats;
    println!(
        "executed: {} combinations; join: {} index builds, {} probes, \
         {} pairs skipped, {} tiles pruned, {} predicate evals",
        result.results.len(),
        js.index_builds,
        js.probes,
        js.pairs_skipped,
        js.tiles_pruned,
        js.predicate_evals
    );
    println!(
        "columnar plane: {} columns scanned, {} batch evals, {} rows materialized",
        js.columns_scanned, js.batch_evals, js.rows_materialized
    );
    save_json(
        "e10",
        serde_json::json!({
            "all_numbers_match": ok,
            "combinations": result.results.len(),
            "join_stats": {
                "index_builds": js.index_builds,
                "probes": js.probes,
                "pairs_skipped": js.pairs_skipped,
                "tiles_pruned": js.tiles_pruned,
                "predicate_evals": js.predicate_evals,
                "columns_scanned": js.columns_scanned,
                "batch_evals": js.batch_evals,
                "rows_materialized": js.rows_materialized,
            },
        }),
    )
}

/// E11 — §5.3: phase-1 heuristics.
fn e11() -> Result<(), DynError> {
    banner(
        "E11",
        "§5.3 — access-pattern heuristics: bound-is-better vs unbound-is-easier",
    );
    // Build a registry where the Movie mart has two interfaces: the
    // chapter's four-input Movie1 and a one-input title lookup Movie9.
    use seco_model::{
        Adornment, AttributeDef, DataType, ServiceInterface, ServiceKind, ServiceSchema,
        ServiceStats,
    };
    use seco_services::synthetic::{DomainMap, SyntheticService};
    use std::sync::Arc;
    let mut registry = entertainment::build_registry(1)?;
    let schema = ServiceSchema::new(
        "Movie9",
        vec![
            AttributeDef::atomic("Title", DataType::Text, Adornment::Input),
            AttributeDef::atomic("Director", DataType::Text, Adornment::Output),
            AttributeDef::atomic("Score", DataType::Float, Adornment::Ranked),
        ],
    )?;
    let iface = ServiceInterface::new(
        "Movie9",
        "Movie",
        schema,
        ServiceKind::Search,
        ServiceStats::new(1000.0, 10, 100.0, 1.0)?,
        ScoreDecay::Linear,
    )?;
    registry.register_service(Arc::new(SyntheticService::new(iface, DomainMap::new(), 99)))?;

    let query = QueryBuilder::new()
        .atom("M", "Movie") // mart-level: both interfaces are candidates
        .select_const("M", "Genres.Genre", Comparator::Eq, Value::text("comedy"))
        .select_const("M", "Language", Comparator::Eq, Value::text("en"))
        .select_const(
            "M",
            "Openings.Country",
            Comparator::Eq,
            Value::text("country-0"),
        )
        .select_const(
            "M",
            "Openings.Date",
            Comparator::Gt,
            Value::Date(seco_model::Date::new(2009, 3, 1)),
        )
        .select_const("M", "Title", Comparator::Eq, Value::text("title-7"))
        .build()?;
    let mut rows = Vec::new();
    for h in [
        Phase1Heuristic::BoundIsBetter,
        Phase1Heuristic::UnboundIsEasier,
    ] {
        let assignments = enumerate_assignments(&query, &registry, h)?;
        let order: Vec<&str> = assignments
            .iter()
            .map(|a| a.query.atom("M").unwrap().service.as_str())
            .collect();
        // The answer-set-size intuition: estimate the first choice's
        // expected result size (smaller = better bound).
        let first = registry.interface(order[0])?;
        println!(
            "{h:<20} tries {order:?} first (expected answers of first choice: {})",
            first.stats.avg_cardinality
        );
        rows.push(serde_json::json!({
            "heuristic": h.to_string(), "order": order,
            "first_choice_expected_answers": first.stats.avg_cardinality,
        }));
    }
    save_json("e11", serde_json::json!(rows))
}

/// E12 — §5.4: phase-2 heuristics under time vs call-count metrics.
fn e12() -> Result<(), DynError> {
    banner(
        "E12",
        "§5.4 — selective-first vs parallel-is-better (first-plan quality)",
    );
    println!(
        "{:<20} {:<16} {:>12} {:>10} {:>8}",
        "phase-2 heuristic", "metric", "first plan", "optimum", "gap %"
    );
    let registry = entertainment::build_registry(3)?;
    let query = running_example();
    let mut rows = Vec::new();
    for h in [
        Phase2Heuristic::ParallelIsBetter,
        Phase2Heuristic::SelectiveFirst,
    ] {
        for metric in [
            CostMetric::ExecutionTime,
            CostMetric::RequestCount,
            CostMetric::Sum,
        ] {
            let mut opt = Optimizer::new(&registry, metric);
            opt.heuristics = HeuristicSet {
                phase2: h,
                ..HeuristicSet::default()
            };
            opt.budget = Some(1);
            let first = opt.optimize(&query)?;
            opt.budget = None;
            let full = opt.optimize(&query)?;
            let gap = (first.cost / full.cost - 1.0) * 100.0;
            println!(
                "{:<20} {:<16} {:>12.1} {:>10.1} {:>8.1}",
                h.to_string(),
                metric.to_string(),
                first.cost,
                full.cost,
                gap
            );
            rows.push(serde_json::json!({
                "heuristic": h.to_string(), "metric": metric.to_string(),
                "first_plan_cost": first.cost, "optimum": full.cost, "gap_percent": gap,
            }));
        }
    }
    save_json("e12", serde_json::json!(rows))
}

/// E13 — §5.5: phase-3 heuristics.
fn e13() -> Result<(), DynError> {
    banner("E13", "§5.5 — fetch assignment: greedy vs square-is-better");
    let registry = entertainment::build_registry(1)?;
    let query = running_example();
    let report = analyze(&query, &registry)?;
    let topologies = enumerate_topologies(
        &query,
        &registry,
        &report,
        Phase2Heuristic::ParallelIsBetter,
        64,
    )?;
    let parallel = topologies
        .into_iter()
        .find(|p| {
            p.node_ids()
                .any(|id| matches!(p.node(id), Ok(PlanNode::ParallelJoin(_))))
        })
        .expect("a parallel topology exists");
    println!(
        "{:>4} {:<18} {:>12} {:>22}",
        "k", "heuristic", "calls", "fetch vector (M,T,R)"
    );
    let mut rows = Vec::new();
    for k in [1usize, 10, 25, 50] {
        for h in [Phase3Heuristic::Greedy, Phase3Heuristic::SquareIsBetter] {
            let mut plan = parallel.clone();
            match assign_fetches(&mut plan, &registry, k, h, CostMetric::RequestCount) {
                Ok(ann) => {
                    let f = |atom: &str| {
                        let id = plan.service_node_of(atom).unwrap();
                        match plan.node(id) {
                            Ok(PlanNode::Service(s)) => s.fetches,
                            _ => 0,
                        }
                    };
                    println!(
                        "{k:>4} {:<18} {:>12.1} {:>22}",
                        h.to_string(),
                        ann.total_calls(),
                        format!("({}, {}, {})", f("M"), f("T"), f("R"))
                    );
                    rows.push(serde_json::json!({
                        "k": k, "heuristic": h.to_string(), "calls": ann.total_calls(),
                        "fetches": { "M": f("M"), "T": f("T"), "R": f("R") },
                    }));
                }
                Err(e) => println!("{k:>4} {:<18} unreachable: {e}", h.to_string()),
            }
        }
    }
    save_json("e13", serde_json::json!(rows))
}

/// E14 — §5.1: metric comparison on one query.
fn e14() -> Result<(), DynError> {
    banner("E14", "§5.1 — optimal plan and cost under each metric");
    let registry = entertainment::build_registry(3)?;
    let query = running_example();
    println!("{:<16} {:>10}  plan", "metric", "cost");
    let mut rows = Vec::new();
    for metric in CostMetric::all() {
        let best = optimize(&query, &registry, metric)?;
        let line = display::summary_line(&best.plan)?;
        println!("{:<16} {:>10.1}  {line}", metric.to_string(), best.cost);
        rows.push(serde_json::json!({
            "metric": metric.to_string(), "cost": best.cost, "plan": line,
        }));
    }
    save_json("e14", serde_json::json!(rows))
}

/// E15 — §3.1: the Q1/Q2 repeating-group semantics.
fn e15() -> Result<(), DynError> {
    banner("E15", "§3.1 — Q1/Q2 repeating-group mapping semantics");
    use seco_services::table::chapter_semantics_example;
    use std::sync::Arc;
    let (s1, s2) = chapter_semantics_example();
    let mut registry = seco_services::ServiceRegistry::new();
    registry.register_service(Arc::new(s1))?;
    registry.register_service(Arc::new(s2))?;
    let q1 = QueryBuilder::new()
        .atom("S1", "S1")
        .select_const("S1", "R.A", Comparator::Eq, Value::Int(1))
        .select_const("S1", "R.B", Comparator::Eq, Value::text("x"))
        .build()?;
    let r1 = evaluate_oracle(&q1, &registry)?;
    println!(
        "Q1 (select S1 where S1.R.A=1 and S1.R.B=x): {} result (paper: {{t1}})",
        r1.len()
    );
    let q2 = QueryBuilder::new()
        .atom("S1", "S1")
        .atom("S2", "S2")
        .join("S1", "R.A", Comparator::Eq, "S2", "R.A")
        .join("S1", "R.B", Comparator::Eq, "S2", "R.B")
        .build()?;
    let r2 = evaluate_oracle(&q2, &registry)?;
    println!(
        "Q2 (join on R.A, R.B): {} results (paper: {{t1·t3, t1·t4, t2·t4}})",
        r2.len()
    );
    save_json(
        "e15",
        serde_json::json!({ "q1_results": r1.len(), "q2_results": r2.len() }),
    )
}

/// E16 — end-to-end: optimized execution vs the oracle.
fn e16() -> Result<(), DynError> {
    banner(
        "E16",
        "end-to-end — optimized plans vs the declarative oracle",
    );
    let registry = entertainment::build_registry(9)?;
    let query = running_example();
    let oracle = evaluate_oracle(&query, &registry)?;
    println!("oracle answers: {}", oracle.len());
    let mut rows = Vec::new();
    for metric in [CostMetric::RequestCount, CostMetric::ExecutionTime] {
        let best = optimize(&query, &registry, metric)?;
        let outcome = execute_plan(&best.plan, &registry, EngineConfig::default())?;
        let sound = outcome.results.iter().all(|c| {
            oracle.iter().any(|o| {
                query
                    .atoms
                    .iter()
                    .all(|a| o.component(&a.alias) == c.component(&a.alias))
            })
        });
        let rs = ResultSet::new(outcome.results.clone(), query.ranking.clone());
        let par = execute_parallel(&best.plan, &registry, EngineConfig::default())?;
        println!(
            "{:<16} emitted {:>3} / sound: {sound} / calls {:>3} / inversion rate {:.3} / parallel executor agrees: {}",
            metric.to_string(),
            outcome.results.len(),
            outcome.total_calls,
            rs.ranking_inversion_rate(),
            par.len() == outcome.results.len(),
        );
        rows.push(serde_json::json!({
            "metric": metric.to_string(), "emitted": outcome.results.len(),
            "oracle": oracle.len(), "sound": sound, "calls": outcome.total_calls,
            "inversion_rate": rs.ranking_inversion_rate(),
            "parallel_agrees": par.len() == outcome.results.len(),
        }));
    }
    save_json("e16", serde_json::json!(rows))
}

/// E17 — ablation: fixed vs cost-based merge-scan inter-service ratio.
///
/// The services are genuinely asymmetric (different chunk sizes and
/// response times); the metric is the total *service time* spent to
/// produce k joined results — the quantity the cost-based ratio is
/// designed to minimize.
fn e17() -> Result<(), DynError> {
    banner(
        "E17",
        "ablation — fixed r=1/1 vs cost-based inter-service ratio (§4.3.2)",
    );
    use seco_bench::link_service;
    use seco_join::cost_based_ratio;
    use seco_services::synthetic::{DomainMap, SyntheticService, ValueDomain};
    use std::sync::Arc;

    let run = |cx: usize,
               tx: f64,
               cy: usize,
               ty: f64,
               inv: Invocation,
               k: usize,
               seed: u64|
     -> Result<(usize, usize, f64), DynError> {
        let total = 60usize;
        let linkdom = ValueDomain::new("pairlink", 10);
        let sx = Arc::new(SyntheticService::new(
            link_service("AsymX1", total as f64, cx, tx, ScoreDecay::Linear),
            DomainMap::new().with(AttributePath::atomic("Link"), linkdom.clone()),
            seed ^ 0xA,
        ));
        let sy = Arc::new(SyntheticService::new(
            link_service("AsymY1", total as f64, cy, ty, ScoreDecay::Linear),
            DomainMap::new().with(AttributePath::atomic("Link"), linkdom),
            seed ^ 0xB,
        ));
        let req = Request::unbound().bind(AttributePath::atomic("Key"), Value::text("q"));
        let mut x = ServiceStream::new("X", sx.as_ref(), req.clone());
        let mut y = ServiceStream::new("Y", sy.as_ref(), req);
        let predicates = vec![ResolvedPredicate::Join(seco_query::JoinPredicate {
            left: seco_query::QualifiedPath::new("X", AttributePath::atomic("Link")),
            op: Comparator::Eq,
            right: seco_query::QualifiedPath::new("Y", AttributePath::atomic("Link")),
        })];
        let mut schemas = SchemaMap::new();
        schemas.insert("X".into(), &sx.interface().schema);
        schemas.insert("Y".into(), &sy.interface().schema);
        let exec = ParallelJoinExecutor {
            predicates: &predicates,
            schemas: &schemas,
            invocation: inv,
            completion: Completion::Triangular,
            h: 1,
            k,
            options: seco_join::JoinIndexOptions::default(),
            columnar: seco_join::ColumnarOptions::default(),
            pool: None,
        };
        let out = exec.run(&mut x, &mut y)?;
        let service_ms = out.calls_x as f64 * tx + out.calls_y as f64 * ty;
        Ok((out.calls_x, out.calls_y, service_ms))
    };

    println!(
        "{:<34} {:<24} {:>9} {:>14}",
        "service pair (chunk@ms vs chunk@ms)", "ratio", "calls x/y", "service time"
    );
    let k = 30usize;
    let mut rows = Vec::new();
    for (label, cx, tx, cy, ty) in [
        ("5@50 vs 5@50 (symmetric)", 5usize, 50.0, 5usize, 50.0),
        ("5@150 vs 10@50 (Y cheap+rich)", 5, 150.0, 10, 50.0),
        ("10@50 vs 5@150 (X cheap+rich)", 10, 50.0, 5, 150.0),
    ] {
        let derived = cost_based_ratio(cx, tx, cy, ty);
        for (rlabel, inv) in [
            ("fixed 1/1", Invocation::merge_scan_even()),
            ("cost-based", derived),
        ] {
            let (mut axc, mut ayc, mut ams) = (0.0, 0.0, 0.0);
            let seeds = [3u64, 11, 17, 29];
            for &s in &seeds {
                let (xc, yc, ms) = run(cx, tx, cy, ty, inv, k, s)?;
                axc += xc as f64;
                ayc += yc as f64;
                ams += ms;
            }
            let n = seeds.len() as f64;
            println!(
                "{label:<34} {:<24} {:>9} {:>12.0}ms",
                format!("{rlabel} ({inv})"),
                format!("{:.1}/{:.1}", axc / n, ayc / n),
                ams / n
            );
            rows.push(serde_json::json!({
                "pair": label, "ratio": format!("{inv}"),
                "mean_calls_x": axc / n, "mean_calls_y": ayc / n,
                "mean_service_ms": ams / n,
            }));
        }
    }
    save_json("e17", serde_json::json!(rows))
}

/// E18 — calibration: the annotation's estimates vs measured execution.
fn e18() -> Result<(), DynError> {
    banner(
        "E18",
        "calibration — estimated (annotation) vs measured (execution)",
    );
    println!(
        "{:>5} {:<22} {:>12} {:>12} {:>9}",
        "seed", "quantity", "estimated", "measured", "ratio"
    );
    let query = running_example();
    let mut rows = Vec::new();
    for seed in [1u64, 9, 21, 33] {
        let registry = entertainment::build_registry(seed)?;
        let best = optimize(&query, &registry, CostMetric::RequestCount)?;
        let est_calls = best.annotated.total_calls();
        let est_time =
            CostMetric::ExecutionTime.evaluate(&best.plan, &best.annotated, &registry)?;
        let outcome = execute_plan(&best.plan, &registry, EngineConfig::default())?;
        for (q, e, m) in [
            ("request-responses", est_calls, outcome.total_calls as f64),
            ("critical path (ms)", est_time, outcome.critical_ms),
            (
                "answers",
                best.annotated.output_tuples,
                outcome.results.len() as f64,
            ),
        ] {
            println!(
                "{seed:>5} {q:<22} {e:>12.1} {m:>12.1} {:>9.2}",
                m / e.max(1e-9)
            );
            rows.push(serde_json::json!({
                "seed": seed, "quantity": q, "estimated": e, "measured": m,
            }));
        }
    }
    save_json("e18", serde_json::json!(rows))
}

/// E19 — §2.3: query augmentation with off-query services.
fn e19() -> Result<(), DynError> {
    banner(
        "E19",
        "§2.3 — query augmentation (off-query services bind missing inputs)",
    );
    use seco_model::{
        Adornment, AttributeDef, DataType, ServiceInterface, ServiceKind, ServiceSchema,
        ServiceStats,
    };
    use seco_query::augment::{augment_query, AugmentOptions};
    use seco_services::synthetic::{DomainMap, SyntheticService, ValueDomain};
    use std::sync::Arc;
    let mut registry = seco_services::ServiceRegistry::new();
    let flight_schema = ServiceSchema::new(
        "Flight1",
        vec![
            AttributeDef::atomic("To", DataType::Text, Adornment::Input).with_domain("city"),
            AttributeDef::atomic("Date", DataType::Date, Adornment::Input).with_domain("date"),
            AttributeDef::atomic("Price", DataType::Float, Adornment::Output),
            AttributeDef::atomic("Convenience", DataType::Float, Adornment::Ranked),
        ],
    )?;
    let flight = ServiceInterface::new(
        "Flight1",
        "Flight",
        flight_schema,
        ServiceKind::Search,
        ServiceStats::new(30.0, 10, 100.0, 1.0)?,
        ScoreDecay::Linear,
    )?;
    let dir_schema = ServiceSchema::new(
        "CityDirectory1",
        vec![AttributeDef::atomic("City", DataType::Text, Adornment::Output).with_domain("city")],
    )?;
    let dir = ServiceInterface::new(
        "CityDirectory1",
        "CityDirectory",
        dir_schema,
        ServiceKind::Exact { chunked: false },
        ServiceStats::new(12.0, 12, 30.0, 1.0)?,
        ScoreDecay::Constant(1.0),
    )?;
    let city = ValueDomain::new("city", 12);
    registry.register_service(Arc::new(SyntheticService::new(
        flight,
        DomainMap::new().with(AttributePath::atomic("To"), city.clone()),
        1,
    )))?;
    registry.register_service(Arc::new(SyntheticService::new(
        dir,
        DomainMap::new().with(AttributePath::atomic("City"), city),
        2,
    )))?;

    let query = QueryBuilder::new()
        .atom("F", "Flight1")
        .select_const(
            "F",
            "Date",
            Comparator::Eq,
            Value::Date(seco_model::Date::new(2009, 7, 1)),
        )
        .build()?;
    println!("original query: {query}");
    println!("feasible: {}", analyze(&query, &registry).is_ok());
    let augmented = augment_query(&query, &registry, AugmentOptions::default())?;
    println!(
        "augmented with off-query atoms {:?}: {}",
        augmented.added, augmented.query
    );
    let answers = evaluate_oracle(&augmented.query, &registry)?;
    println!(
        "approximation yields {} answers (every flight to a directory city)",
        answers.len()
    );
    save_json(
        "e19",
        serde_json::json!({
            "added": augmented.added,
            "answers": answers.len(),
        }),
    )
}

/// E20 — client-side caching makes chain topologies competitive.
fn e20() -> Result<(), DynError> {
    banner(
        "E20",
        "ablation — response caching on the chain topology (§5.3 intuition)",
    );
    use seco_services::cache::CachingService;
    use seco_services::synthetic::{DomainMap, SyntheticService, ValueDomain};
    use seco_services::ServiceRegistry;
    use std::sync::Arc;

    // Two registries over identical services: one raw, one with the
    // Movie service wrapped in a response cache. The selective-first
    // chain is T → M: every theatre tuple re-issues the same
    // constant-bound movie request, so the cache absorbs all but the
    // first fetch of each chunk.
    let build = |cached: bool| -> Result<ServiceRegistry, DynError> {
        let mut reg = ServiceRegistry::new();
        let title = ValueDomain::new("title", entertainment::TITLE_DOMAIN);
        let movie: Arc<dyn Service> = Arc::new(SyntheticService::new(
            entertainment::movie_interface(),
            DomainMap::new().with(AttributePath::atomic("Title"), title.clone()),
            1,
        ));
        if cached {
            reg.register_service(Arc::new(CachingService::new(movie, 1024)))?;
        } else {
            reg.register_service(movie)?;
        }
        let theatre = SyntheticService::new(
            entertainment::theatre_interface(),
            DomainMap::new().with(AttributePath::sub("Movie", "Title"), title),
            2,
        )
        .with_rows_per_group(1)
        .with_mirror(
            AttributePath::atomic("TCity"),
            AttributePath::atomic("UCity"),
        )
        .with_mirror(
            AttributePath::atomic("TCountry"),
            AttributePath::atomic("UCountry"),
        );
        reg.register_service(Arc::new(theatre))?;
        reg.register_pattern(entertainment::shows_pattern())?;
        Ok(reg)
    };

    let query = QueryBuilder::new()
        .atom("M", "Movie1")
        .atom("T", "Theatre1")
        .pattern("Shows", "M", "T")
        .select_const("M", "Genres.Genre", Comparator::Eq, Value::text("comedy"))
        .select_const("M", "Language", Comparator::Eq, Value::text("en"))
        .select_const(
            "M",
            "Openings.Country",
            Comparator::Eq,
            Value::text("country-0"),
        )
        .select_const(
            "M",
            "Openings.Date",
            Comparator::Gt,
            Value::Date(seco_model::Date::new(2009, 3, 1)),
        )
        .select_const("T", "UAddress", Comparator::Eq, Value::text("via Golgi 42"))
        .select_const("T", "UCity", Comparator::Eq, Value::text("Milano"))
        .select_const("T", "UCountry", Comparator::Eq, Value::text("country-0"))
        .k(5)
        .build()?;

    // Force the chain topology M → T (the topology the cache helps).
    let mut rows = Vec::new();
    for cached in [false, true] {
        let reg = build(cached)?;
        let report = analyze(&query, &reg)?;
        let chains =
            enumerate_topologies(&query, &reg, &report, Phase2Heuristic::SelectiveFirst, 64)?;
        let chain = chains
            .into_iter()
            .find(|p| {
                p.node_ids()
                    .all(|id| !matches!(p.node(id), Ok(PlanNode::ParallelJoin(_))))
            })
            .expect("a chain topology exists");
        let mut plan = chain;
        // Movie fetches 2 chunks so the chain re-invokes Theatre 40×.
        for id in plan.node_ids().collect::<Vec<_>>() {
            if let Ok(PlanNode::Service(s)) = plan.node_mut(id) {
                if s.atom == "M" {
                    s.fetches = 2;
                }
            }
        }
        reg.reset_stats();
        let outcome = execute_plan(&plan, &reg, EngineConfig::default())?;
        // Distinguish wire calls (inner service) from engine-issued
        // requests: the recorder sits outside the cache, so its count
        // is what actually crossed to the provider only when uncached;
        // the engine's own count is always the issued requests.
        println!(
            "{:<10} issued {:>4} requests; {:>3} combinations; movie service busy {:>7.0} ms",
            if cached { "cached" } else { "uncached" },
            outcome.total_calls,
            outcome.results.len(),
            reg.all_stats()["Movie1"].busy_ms,
        );
        rows.push(serde_json::json!({
            "cached": cached,
            "issued_requests": outcome.total_calls,
            "combinations": outcome.results.len(),
            "movie_busy_ms": reg.all_stats()["Movie1"].busy_ms,
        }));
    }
    println!("(cache hits cost 0 ms: the chain's repeated constant-bound movie");
    println!(" requests collapse, which is the §5.3 cache-size intuition quantified)");
    save_json("e20", serde_json::json!(rows))
}

/// E21 — resilience: deterministic faults, retries, degradation.
fn e21() -> Result<(), DynError> {
    banner(
        "E21",
        "resilience — fault injection, retry/backoff, graceful degradation",
    );
    use seco_engine::FailureMode;
    use seco_services::{ClientConfig, FaultProfile};

    let query = running_example();
    let clean = entertainment::build_registry(1)?;
    let best = optimize(&query, &clean, CostMetric::RequestCount)?;
    let baseline = execute_plan(&best.plan, &clean, EngineConfig::default())?;
    println!(
        "clean baseline: {} combinations, {} calls",
        baseline.results.len(),
        baseline.total_calls
    );

    let opts = EngineConfig {
        failure_mode: FailureMode::Degrade,
        client: Some(ClientConfig {
            deadline_ms: Some(200.0),
            retries: 3,
            seed: 42,
            ..Default::default()
        }),
        ..Default::default()
    };
    println!(
        "{:<8} {:>6} {:>7} {:>8} {:>6} {:>8} {:>6} {:>13} {:>13}",
        "profile",
        "combos",
        "calls",
        "retries",
        "t/outs",
        "trips",
        "s/circ",
        "deterministic",
        "rank-subset"
    );
    let mut rows = Vec::new();
    for profile in ["flaky", "outage"] {
        let faults = FaultProfile::by_name(profile).expect("known profile");
        type FaultRun = (
            Vec<seco_model::CompositeTuple>,
            Vec<String>,
            f64,
            usize,
            seco_services::CallStats,
        );
        let run = || -> Result<FaultRun, DynError> {
            let reg = entertainment::build_registry_with_faults(1, faults)?;
            let out = execute_plan(&best.plan, &reg, opts)?;
            let stats = reg.total_stats();
            Ok((
                out.results,
                out.degraded,
                out.critical_ms,
                out.total_calls,
                stats,
            ))
        };
        // Two runs with the same seeds must be byte-identical, and the
        // degraded answer must be a rank-ordered subset of the clean one.
        let (results_a, degraded_a, crit_a, calls_a, stats_a) = run()?;
        let (results_b, degraded_b, crit_b, calls_b, stats_b) = run()?;
        let deterministic = results_a == results_b
            && degraded_a == degraded_b
            && crit_a == crit_b
            && calls_a == calls_b
            && (
                stats_a.retries,
                stats_a.timeouts,
                stats_a.breaker_trips,
                stats_a.short_circuits,
            ) == (
                stats_b.retries,
                stats_b.timeouts,
                stats_b.breaker_trips,
                stats_b.short_circuits,
            );
        let rank_subset = {
            let mut clean_iter = baseline.results.iter();
            results_a.iter().all(|c| clean_iter.any(|b| b == c))
        };
        println!(
            "{profile:<8} {:>6} {:>7} {:>8} {:>6} {:>8} {:>6} {:>13} {:>13}",
            results_a.len(),
            calls_a,
            stats_a.retries,
            stats_a.timeouts,
            stats_a.breaker_trips,
            stats_a.short_circuits,
            deterministic,
            rank_subset
        );
        rows.push(serde_json::json!({
            "profile": profile,
            "run": {
                "combinations": results_a.len(),
                "degraded": degraded_a,
                "critical_ms": crit_a,
                "calls": calls_a,
                "retries": stats_a.retries,
                "timeouts": stats_a.timeouts,
                "breaker_trips": stats_a.breaker_trips,
                "short_circuits": stats_a.short_circuits,
            },
            "deterministic": deterministic,
            "rank_ordered_subset_of_clean": rank_subset,
        }));
    }
    save_json(
        "e21",
        serde_json::json!({
            "baseline_combinations": baseline.results.len(),
            "deadline_ms": 200.0,
            "profiles": rows,
        }),
    )
}

fn main() -> Result<(), DynError> {
    let args: Vec<String> = std::env::args()
        .skip(1)
        .map(|a| a.to_lowercase())
        .map(|a| if a == "faults" { "e21".to_owned() } else { a })
        .collect();
    let all = args.is_empty() || args.iter().any(|a| a == "--all" || a == "all");
    let want = |id: &str| all || args.iter().any(|a| a == id);

    type Experiment = fn() -> Result<(), DynError>;
    let experiments: Vec<(&str, Experiment)> = vec![
        ("e1", e1),
        ("e2", e2),
        ("e3", e3),
        ("e4", e4),
        ("e5", e5),
        ("e6", e6),
        ("e7", e7),
        ("e8", e8),
        ("e9", e9),
        ("e10", e10),
        ("e11", e11),
        ("e12", e12),
        ("e13", e13),
        ("e14", e14),
        ("e15", e15),
        ("e16", e16),
        ("e17", e17),
        ("e18", e18),
        ("e19", e19),
        ("e20", e20),
        ("e21", e21),
    ];
    let mut ran = 0;
    for (id, f) in experiments {
        if want(id) {
            f()?;
            ran += 1;
        }
    }
    // Star scenarios exercise the parallel-heavy path; touch them so
    // regressions there surface in repro runs too.
    if all {
        let (reg, q) = star_scenario(3, 5);
        let best = optimize(&q, &reg, CostMetric::ExecutionTime)?;
        println!(
            "\nstar(3) sanity: optimum {:.1} ms over {} topologies",
            best.cost, best.stats.topologies
        );
    }
    println!("\n{ran} experiments regenerated; JSON written to results/");
    Ok(())
}
