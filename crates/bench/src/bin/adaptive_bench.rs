//! `adaptive_bench` — the adaptive re-optimization experiment,
//! emitting `results/BENCH_adaptive.json`.
//!
//! Usage:
//!   cargo run --release -p seco-bench --bin adaptive_bench            # full
//!   cargo run --release -p seco-bench --bin adaptive_bench -- --smoke # CI
//!
//! The workload is [`seco_bench::adaptive_registry`]: a hub whose
//! declared cardinality understates the truth by 10×, and a `Leaf` mart
//! with a cheap-per-call pipe access pattern (optimal under the lie)
//! and a bulk scan (optimal under the truth). Three configurations run
//! on the execution-time metric:
//!
//! * **informed** — optimizer and engine under the *true* statistics:
//!   the unbeatable reference (parallel scan plan, 150 virtual ms);
//! * **baseline** — optimizer misled, engine non-adaptive: stays on the
//!   bad pipe plan for the whole run (1220 virtual ms, ~8× worse);
//! * **adaptive** — optimizer misled, engine adaptive: the first hub
//!   stage observes 10× the estimated cardinality, promotes the
//!   observed statistics into the registry, re-plans the suffix
//!   mid-flight, and finishes on the scan plan.
//!
//! Asserted: the adaptive run converges to the informed optimizer's
//! plan (canonical keys equal), its virtual critical path is within
//! 1.2× of the informed run, the non-adaptive baseline is ≥ 2× worse,
//! and a post-run re-optimization on the (now promoted) registry also
//! lands on the informed plan.

use seco_bench::{adaptive_query, adaptive_registry};
use seco_engine::{execute_plan, EngineConfig};
use seco_optimizer::{optimize, CostMetric};

type DynError = Box<dyn std::error::Error>;

const SEED: u64 = 7;
const MISESTIMATE: f64 = 10.0;

fn main() -> Result<(), DynError> {
    let smoke = std::env::args().any(|a| a == "--smoke");
    println!(
        "adaptive_bench ({} mode)",
        if smoke { "smoke" } else { "full" }
    );
    let query = adaptive_query();
    let metric = CostMetric::ExecutionTime;

    // Informed reference: true statistics end to end.
    let informed_reg = adaptive_registry(SEED, 1.0);
    let informed = optimize(&query, &informed_reg, metric)?;
    let informed_run = execute_plan(&informed.plan, &informed_reg, EngineConfig::default())?;
    assert!(!informed_run.results.is_empty(), "informed run must answer");

    // Baseline: misled optimizer, non-adaptive engine.
    let baseline_reg = adaptive_registry(SEED, MISESTIMATE);
    let misled = optimize(&query, &baseline_reg, metric)?;
    assert_ne!(
        misled.plan.canonical_key(),
        informed.plan.canonical_key(),
        "the 10x misestimate must change the winning plan"
    );
    let baseline_run = execute_plan(&misled.plan, &baseline_reg, EngineConfig::default())?;
    assert!(!baseline_run.results.is_empty(), "baseline run must answer");

    // Adaptive: the same misled plan on a fresh registry, engine
    // checkpoints on.
    let adaptive_reg = adaptive_registry(SEED, MISESTIMATE);
    let adaptive_cfg = EngineConfig::default()
        .adaptive(true)
        .adaptive_metric(metric);
    let adaptive_run = execute_plan(&misled.plan, &adaptive_reg, adaptive_cfg)?;
    assert!(!adaptive_run.results.is_empty(), "adaptive run must answer");
    assert!(
        adaptive_run.replans >= 1,
        "the deviation checkpoint must have re-planned"
    );
    let final_plan = adaptive_run
        .replanned
        .as_ref()
        .expect("a re-plan happened, so the final plan is recorded");
    let converged = final_plan.canonical_key() == informed.plan.canonical_key();
    assert!(
        converged,
        "adaptive must converge to the informed plan:\n  adaptive: {}\n  informed: {}",
        final_plan.canonical_key(),
        informed.plan.canonical_key()
    );

    let adaptive_ratio = adaptive_run.critical_ms / informed_run.critical_ms;
    let baseline_ratio = baseline_run.critical_ms / informed_run.critical_ms;
    assert!(
        adaptive_ratio <= 1.2,
        "adaptive must finish within 1.2x of informed, got {adaptive_ratio:.3}"
    );
    assert!(
        baseline_ratio >= 2.0,
        "the non-adaptive baseline must stay on the bad plan, got {baseline_ratio:.3}"
    );

    // The promoted statistics outlive the run: a cold re-optimization
    // on the once-misled registry now finds the informed plan.
    let reoptimized = optimize(&query, &adaptive_reg, metric)?;
    assert_eq!(
        reoptimized.plan.canonical_key(),
        informed.plan.canonical_key(),
        "post-run re-optimization must agree with the informed optimizer"
    );

    println!(
        "informed {:.0} ms | baseline {:.0} ms ({baseline_ratio:.2}x) | adaptive {:.0} ms ({adaptive_ratio:.2}x, {} replan(s), {} epoch invalidation(s))",
        informed_run.critical_ms,
        baseline_run.critical_ms,
        adaptive_run.critical_ms,
        adaptive_run.replans,
        adaptive_reg.epoch_invalidations(),
    );

    let report = serde_json::json!({
        "mode": if smoke { "smoke" } else { "full" },
        "workload": "hub (declared avg 2, true avg 20) x Leaf mart {pipe, scan}, execution-time metric, k=1",
        "misestimate": MISESTIMATE,
        "informed": {
            "plan": informed.plan.canonical_key(),
            "cost": informed.cost,
            "critical_ms": informed_run.critical_ms,
            "total_calls": informed_run.total_calls,
        },
        "baseline": {
            "plan": misled.plan.canonical_key(),
            "cost": misled.cost,
            "critical_ms": baseline_run.critical_ms,
            "total_calls": baseline_run.total_calls,
            "ratio_vs_informed": baseline_ratio,
        },
        "adaptive": {
            "initial_plan": misled.plan.canonical_key(),
            "final_plan": final_plan.canonical_key(),
            "critical_ms": adaptive_run.critical_ms,
            "total_calls": adaptive_run.total_calls,
            "replans": adaptive_run.replans,
            "epoch_invalidations": adaptive_reg.epoch_invalidations(),
            "ratio_vs_informed": adaptive_ratio,
            "converged": converged,
        },
    });
    std::fs::create_dir_all("results")?;
    std::fs::write(
        "results/BENCH_adaptive.json",
        serde_json::to_string_pretty(&report)?,
    )?;
    println!("wrote results/BENCH_adaptive.json");
    Ok(())
}
