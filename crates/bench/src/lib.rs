//! Shared workload generators for the benchmark and experiment harness.
//!
//! Experiments need service topologies beyond the two chapter domains:
//! parameterized *chains* (S1 → S2 → … → Sn, each piping into the
//! next) and *stars* (one hub, n − 1 independently reachable services
//! joined in parallel). Both are built from the same synthetic service
//! substrate so every experiment remains deterministic.

use std::sync::Arc;

use seco_model::{
    Adornment, AttributeDef, AttributePath, Comparator, ConnectionPattern, DataType, JoinPair,
    ScoreDecay, ServiceInterface, ServiceKind, ServiceSchema, ServiceStats, Value,
};
use seco_query::{Query, QueryBuilder};
use seco_services::synthetic::{DomainMap, FaultProfile, SyntheticService, ValueDomain};
use seco_services::{MisdeclaredService, ServiceRegistry};

/// Builds one search-service interface `name` with a `Key` input, a
/// `Link` output (shared `link` domain for joins), and a ranked score.
pub fn link_service(
    name: &str,
    avg: f64,
    chunk: usize,
    response_ms: f64,
    decay: ScoreDecay,
) -> ServiceInterface {
    let schema = ServiceSchema::new(
        name,
        vec![
            AttributeDef::atomic("Key", DataType::Text, Adornment::Input),
            AttributeDef::atomic("Link", DataType::Text, Adornment::Output),
            AttributeDef::atomic("Payload", DataType::Text, Adornment::Output),
            AttributeDef::atomic("Score", DataType::Float, Adornment::Ranked),
        ],
    )
    .expect("static schema is valid");
    ServiceInterface::new(
        name,
        name.trim_end_matches(|c: char| c.is_ascii_digit()),
        schema,
        ServiceKind::Search,
        ServiceStats::new(avg, chunk, response_ms, 1.0).expect("static stats are valid"),
        decay,
    )
    .expect("static interface is valid")
    .with_hint(AttributePath::atomic("Link"), 16)
}

/// A chain scenario: `Chain1 → Chain2 → … → Chainn`, where each
/// service's `Link` output pipes into the next one's `Key` input.
///
/// Returns the registry and a feasible query over all `n` services with
/// `ChainLinki` connection patterns.
pub fn chain_scenario(n: usize, seed: u64) -> (ServiceRegistry, Query) {
    chain_scenario_with_faults(n, seed, FaultProfile::none())
}

/// [`chain_scenario`] with every service injecting deterministic
/// faults from `faults` (each service's schedule is decorrelated by
/// mixing its index into the profile's seed). The e21-style workload
/// for exercising the fetch layer under retry storms.
pub fn chain_scenario_with_faults(
    n: usize,
    seed: u64,
    faults: FaultProfile,
) -> (ServiceRegistry, Query) {
    assert!(n >= 1);
    let mut reg = ServiceRegistry::new();
    let link = ValueDomain::new("link", 16);
    for i in 1..=n {
        let iface = link_service(
            &format!("Chain{i}"),
            20.0,
            5,
            50.0 + 20.0 * i as f64,
            if i % 2 == 0 {
                ScoreDecay::Step {
                    h: 2,
                    high: 0.9,
                    low: 0.1,
                }
            } else {
                ScoreDecay::Linear
            },
        );
        let service = SyntheticService::new(
            iface,
            DomainMap::new().with(AttributePath::atomic("Link"), link.clone()),
            seed ^ ((i as u64) << 8),
        )
        .with_fault_profile(FaultProfile {
            seed: faults.seed.wrapping_add(i as u64),
            ..faults
        });
        reg.register_service(Arc::new(service))
            .expect("unique names");
    }
    for i in 1..n {
        reg.register_pattern(
            ConnectionPattern::new(
                format!("ChainLink{i}"),
                format!("Chain{i}"),
                format!("Chain{}", i + 1),
                vec![JoinPair::eq(
                    AttributePath::atomic("Link"),
                    AttributePath::atomic("Key"),
                )],
                0.5,
            )
            .expect("static pattern is valid"),
        )
        .expect("unique names");
    }
    let mut qb = QueryBuilder::new().atom("A1", "Chain1").select_const(
        "A1",
        "Key",
        Comparator::Eq,
        Value::text("start"),
    );
    for i in 2..=n {
        qb = qb.atom(&format!("A{i}"), &format!("Chain{i}")).pattern(
            &format!("ChainLink{}", i - 1),
            &format!("A{}", i - 1),
            &format!("A{i}"),
        );
    }
    let query = qb.k(5).build().expect("chain query is valid");
    (reg, query)
}

/// A star scenario: `n` independently reachable search services whose
/// `Link` outputs all join pairwise through a shared domain; the query
/// joins service 1 with each of the others.
pub fn star_scenario(n: usize, seed: u64) -> (ServiceRegistry, Query) {
    assert!(n >= 1);
    let mut reg = ServiceRegistry::new();
    let link = ValueDomain::new("hub", 8);
    for i in 1..=n {
        let iface = link_service(
            &format!("Star{i}"),
            16.0,
            4,
            40.0 + 10.0 * i as f64,
            ScoreDecay::Linear,
        );
        let service = SyntheticService::new(
            iface,
            DomainMap::new().with(AttributePath::atomic("Link"), link.clone()),
            seed ^ ((i as u64) << 4),
        );
        reg.register_service(Arc::new(service))
            .expect("unique names");
    }
    let mut qb = QueryBuilder::new();
    for i in 1..=n {
        qb = qb.atom(&format!("A{i}"), &format!("Star{i}")).select_const(
            &format!("A{i}"),
            "Key",
            Comparator::Eq,
            Value::Text(format!("k{i}")),
        );
    }
    for i in 2..=n {
        qb = qb.join("A1", "Link", Comparator::Eq, &format!("A{i}"), "Link");
    }
    let query = qb.k(5).build().expect("star query is valid");
    (reg, query)
}

/// The adaptive-optimization scenario: a hub service whose *declared*
/// cardinality understates the truth by `misestimate`, and a `Leaf`
/// mart offering two access patterns for the same data — a
/// cheap-per-call pipe (`LeafPipe1`, exact lookup by the hub's link)
/// that wins under the lie, and a single bulk scan (`LeafScan1`) that
/// wins under the truth.
///
/// With `misestimate = 1.0` the registry is *informed* (declared =
/// true); with `misestimate = 10.0` the declared-optimal plan (hub →
/// pipe, est. 140 virtual ms) really costs 1220 virtual ms, while the
/// scan-based parallel plan stays at 150 — exactly the situation
/// mid-flight re-planning exists for.
pub fn adaptive_registry(seed: u64, misestimate: f64) -> ServiceRegistry {
    assert!(misestimate >= 1.0);
    let mut reg = ServiceRegistry::new();
    let link = ValueDomain::new("leaflink", 2);

    // Hub: Key (const input) → ~20 links, 20 ms per chunk. Declared
    // cardinality is the truth divided by `misestimate`.
    let hub_schema = ServiceSchema::new(
        "Hub1",
        vec![
            AttributeDef::atomic("Key", DataType::Text, Adornment::Input),
            AttributeDef::atomic("Link", DataType::Text, Adornment::Output),
            AttributeDef::atomic("Score", DataType::Float, Adornment::Ranked),
        ],
    )
    .expect("static schema is valid");
    let hub_true = ServiceInterface::new(
        "Hub1",
        "Hub",
        hub_schema,
        ServiceKind::Search,
        ServiceStats::new(20.0, 20, 20.0, 1.0).expect("static stats are valid"),
        ScoreDecay::Linear,
    )
    .expect("static interface is valid")
    .with_hint(AttributePath::atomic("Link"), 2);
    let hub_inner = Arc::new(SyntheticService::new(
        hub_true,
        DomainMap::new().with(AttributePath::atomic("Link"), link.clone()),
        seed ^ 0x107,
    ));
    let declared =
        ServiceStats::new(20.0 / misestimate, 20, 20.0, 1.0).expect("static stats are valid");
    reg.register_service(Arc::new(MisdeclaredService::new(hub_inner, declared)))
        .expect("unique names");

    // LeafPipe1: exact lookup piped from Hub.Link — 60 ms per call.
    let pipe_schema = ServiceSchema::new(
        "LeafPipe1",
        vec![
            AttributeDef::atomic("LKey", DataType::Text, Adornment::Input),
            AttributeDef::atomic("Cat", DataType::Text, Adornment::Input),
            AttributeDef::atomic("Payload", DataType::Text, Adornment::Output),
            AttributeDef::atomic("Score", DataType::Float, Adornment::Ranked),
        ],
    )
    .expect("static schema is valid");
    let pipe = ServiceInterface::new(
        "LeafPipe1",
        "Leaf",
        pipe_schema,
        ServiceKind::Search,
        ServiceStats::new(1.0, 1, 60.0, 1.0).expect("static stats are valid"),
        ScoreDecay::Linear,
    )
    .expect("static interface is valid");
    reg.register_service(Arc::new(SyntheticService::new(
        pipe,
        DomainMap::new(),
        seed ^ 0x209,
    )))
    .expect("unique names");

    // LeafScan1: one bulk scan of the whole mart — 150 ms for the lot.
    let scan_schema = ServiceSchema::new(
        "LeafScan1",
        vec![
            AttributeDef::atomic("Cat", DataType::Text, Adornment::Input),
            AttributeDef::atomic("LKey", DataType::Text, Adornment::Output),
            AttributeDef::atomic("Payload", DataType::Text, Adornment::Output),
            AttributeDef::atomic("Score", DataType::Float, Adornment::Ranked),
        ],
    )
    .expect("static schema is valid");
    let scan = ServiceInterface::new(
        "LeafScan1",
        "Leaf",
        scan_schema,
        ServiceKind::Search,
        ServiceStats::new(30.0, 30, 150.0, 1.0).expect("static stats are valid"),
        ScoreDecay::Linear,
    )
    .expect("static interface is valid")
    .with_hint(AttributePath::atomic("LKey"), 2);
    reg.register_service(Arc::new(SyntheticService::new(
        scan,
        DomainMap::new().with(AttributePath::atomic("LKey"), link),
        seed ^ 0x30B,
    )))
    .expect("unique names");

    reg.register_pattern(
        ConnectionPattern::new(
            "Hop",
            "Hub",
            "Leaf",
            vec![JoinPair::eq(
                AttributePath::atomic("Link"),
                AttributePath::atomic("LKey"),
            )],
            0.5,
        )
        .expect("static pattern is valid"),
    )
    .expect("unique names");
    reg
}

/// The query over [`adaptive_registry`]: the `L` atom names the mart
/// (`Leaf`), so the optimizer — and the mid-flight re-planner — choose
/// between the pipe and scan access patterns.
pub fn adaptive_query() -> Query {
    QueryBuilder::new()
        .atom("H", "Hub1")
        .atom("L", "Leaf")
        .pattern("Hop", "H", "L")
        .select_const("H", "Key", Comparator::Eq, Value::text("start"))
        .select_const("L", "Cat", Comparator::Eq, Value::text("c"))
        .k(1)
        .build()
        .expect("adaptive query is valid")
}

/// Builds a pair of standalone search services for join-method
/// experiments, with configurable decays.
pub fn join_pair(
    decay_x: ScoreDecay,
    decay_y: ScoreDecay,
    total: usize,
    chunk: usize,
    seed: u64,
) -> (Arc<SyntheticService>, Arc<SyntheticService>) {
    join_pair_with_width(decay_x, decay_y, total, chunk, seed, 10)
}

/// [`join_pair`] with an explicit `Link` domain width: the equi-join
/// selectivity is ~`1/width`, so wide domains make sparse joins (few
/// matching pairs) and narrow domains dense ones.
pub fn join_pair_with_width(
    decay_x: ScoreDecay,
    decay_y: ScoreDecay,
    total: usize,
    chunk: usize,
    seed: u64,
    width: usize,
) -> (Arc<SyntheticService>, Arc<SyntheticService>) {
    let link = ValueDomain::new("pairlink", width as u64);
    let make = |name: &str, decay: ScoreDecay, s: u64| {
        Arc::new(SyntheticService::new(
            link_service(name, total as f64, chunk, 50.0, decay),
            DomainMap::new().with(AttributePath::atomic("Link"), link.clone()),
            s,
        ))
    };
    (
        make("PairX1", decay_x, seed ^ 0xA),
        make("PairY1", decay_y, seed ^ 0xB),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use seco_optimizer::{optimize, CostMetric};

    #[test]
    fn chain_scenarios_are_feasible_and_optimizable() {
        for n in 1..=4 {
            let (reg, query) = chain_scenario(n, 7);
            let best = optimize(&query, &reg, CostMetric::RequestCount)
                .unwrap_or_else(|e| panic!("chain n={n}: {e}"));
            assert!(best.cost > 0.0);
        }
    }

    #[test]
    fn star_scenarios_are_feasible_and_optimizable() {
        for n in 1..=3 {
            let (reg, query) = star_scenario(n, 7);
            let best = optimize(&query, &reg, CostMetric::ExecutionTime)
                .unwrap_or_else(|e| panic!("star n={n}: {e}"));
            assert!(best.cost > 0.0);
        }
    }

    #[test]
    fn adaptive_scenario_flips_the_optimum_with_the_truth() {
        let q = adaptive_query();
        let informed = adaptive_registry(7, 1.0);
        let lied = adaptive_registry(7, 10.0);
        let best_i = optimize(&q, &informed, CostMetric::ExecutionTime).unwrap();
        let best_l = optimize(&q, &lied, CostMetric::ExecutionTime).unwrap();
        assert_ne!(
            best_i.plan.canonical_key(),
            best_l.plan.canonical_key(),
            "the misdeclared statistics must change the winning plan"
        );
        assert!(
            best_l.plan.canonical_key().contains("LeafPipe1"),
            "under the lie the cheap-per-call pipe wins: {}",
            best_l.plan.canonical_key()
        );
        assert!(
            best_i.plan.canonical_key().contains("LeafScan1"),
            "under the truth the bulk scan wins: {}",
            best_i.plan.canonical_key()
        );
    }

    #[test]
    fn join_pair_services_answer() {
        use seco_services::invocation::Request;
        use seco_services::Service;
        let (x, y) = join_pair(ScoreDecay::Linear, ScoreDecay::Quadratic, 20, 5, 3);
        let req = Request::unbound().bind(AttributePath::atomic("Key"), Value::text("q"));
        assert_eq!(x.fetch(&req).unwrap().len(), 5);
        assert_eq!(y.fetch(&req).unwrap().len(), 5);
    }
}
