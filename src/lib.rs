//! # search-computing — multi-domain query optimization over search services
//!
//! A faithful, from-scratch reproduction of the Search Computing (SeCo)
//! join-method and query-optimization framework (Braga, Ceri,
//! Grossniklaus: *Join Methods and Query Optimization*, in “Search
//! Computing: Challenges and Directions”, Springer LNCS 5950 — the
//! technical core of the system announced in the ICDE 2009 “Search
//! Computing” paper).
//!
//! The workspace is organized bottom-up; this crate re-exports every
//! layer under one roof:
//!
//! * [`model`] — service marts, adorned interfaces, repeating groups,
//!   tuples, scoring functions;
//! * [`services`] — the simulated Web-service substrate (deterministic
//!   synthetic services, registries, call recording, the running
//!   example and travel scenarios);
//! * [`query`] — the conjunctive query language, parser,
//!   repeating-group semantics, feasibility analysis, oracle evaluator;
//! * [`plan`] — query-plan DAGs and cardinality annotation;
//! * [`join`] — the tile-space join methods (nested-loop / merge-scan ×
//!   rectangular / triangular × pipe / parallel) and
//!   extraction-optimality measurement;
//! * [`optimizer`] — the three-phase branch-and-bound optimizer with
//!   its five cost metrics and six heuristics;
//! * [`engine`] — deterministic and pipelined plan executors.
//!
//! ## Quickstart
//!
//! ```
//! use search_computing::prelude::*;
//!
//! // 1. A registry with the chapter's running-example services.
//! let registry = search_computing::services::domains::entertainment::build_registry(42)?;
//!
//! // 2. The running-example query (§3.1), in the chapter's syntax.
//! let mut query = parse_query(
//!     "Select Movie1 As M, Theatre1 as T, Restaurant1 as R \
//!      where Shows(M,T) and DinnerPlace(T,R) and \
//!      M.Genres.Genre=\"comedy\" and M.Openings.Country=\"country-0\" and \
//!      M.Openings.Date>2009-03-01 and M.Language=\"en\" and \
//!      T.UAddress=\"via Golgi 42\" and T.UCity=\"Milano\" and \
//!      T.UCountry=\"country-0\" and T.TCountry=\"country-0\" and \
//!      R.Category.Name=\"pizzeria\" ranking (0.3, 0.5, 0.2) top 10",
//! )?;
//! query.k = 10;
//!
//! // 3. Optimize under the request-count metric and execute.
//! let best = optimize(&query, &registry, CostMetric::RequestCount)?;
//! let outcome = execute_plan(&best.plan, &registry, EngineConfig::default())?;
//! println!("{} combinations with {} service calls", outcome.results.len(), outcome.total_calls);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod error;

pub use seco_engine as engine;
pub use seco_join as join;
pub use seco_model as model;
pub use seco_optimizer as optimizer;
pub use seco_plan as plan;
pub use seco_query as query;
pub use seco_server as server;
pub use seco_services as services;

pub use error::{Retryable, SecoError};

/// The most common imports in one place.
pub mod prelude {
    pub use crate::error::{Retryable, SecoError};
    pub use seco_engine::{
        execute_parallel, execute_parallel_session, execute_parallel_with, execute_plan,
        execute_plan_shared, EngineConfig, FailureMode, FetchOptions, ParallelOutcome, ResultSet,
        SharedState,
    };
    pub use seco_join::{
        ColumnarOptions, JoinIndexMode, JoinIndexOptions, JoinMethod, JoinStats, Topology,
    };
    pub use seco_model::{
        Adornment, AttributePath, Comparator, CompositeTuple, Date, ScoreDecay, ServiceInterface,
        ServiceKind, Value,
    };
    pub use seco_optimizer::{optimize, CostMetric, Optimizer};
    pub use seco_plan::{annotate, AnnotationConfig, Completion, Invocation, QueryPlan};
    pub use seco_query::{evaluate_oracle, parse_query, Query, QueryBuilder};
    pub use seco_services::{ClientConfig, FaultProfile, Service, ServiceClient, ServiceRegistry};
}

#[cfg(test)]
mod tests {
    #[test]
    fn facade_re_exports_compile() {
        use crate::prelude::*;
        let _ = EngineConfig::default().columnar(true).batch_eval(true);
        let _ = ColumnarOptions::default();
        let _ = CostMetric::RequestCount;
        let _ = Comparator::Eq;
        let _ = Completion::Triangular;
        let _ = Invocation::NestedLoop;
    }
}
