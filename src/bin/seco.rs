//! `seco` — command-line front end to the Search Computing engine.
//!
//! ```text
//! seco services  [--domain entertainment|travel] [--seed N]
//! seco explain   [--domain D] [--metric M] [--seed N] [--workers N] <query…>
//! seco optimize  [--domain D] [--metric M] [--seed N] [--workers N] <query…>
//! seco run       [--domain D] [--metric M] [--seed N] [--parallel]
//!                [--exec-workers N]
//!                [--fault-profile none|flaky|outage] [--deadline-ms N]
//!                [--cache-shards N] [--prefetch]
//!                [--join-index off|hash] [--tile-prune]
//!                [--rank-join] [--nary-join]
//!                [--adaptive] [--adaptive-threshold N]
//!                [--columnar on|off] [--batch-eval on|off] <query…>
//! seco stats     [--domain D] [--metric M] [--seed N] [--adaptive] <query…>
//! seco oracle    [--domain D] [--seed N] <query…>
//! seco serve     [--domain D] [--metric M] [--seed N] [--addr HOST:PORT]
//!                [--max-sessions N] [--max-concurrent N] [--tenant-budget N]
//!                [engine flags as for `run`]
//! ```
//!
//! `optimize` (and `explain`, its superset) runs the parallel
//! branch-and-bound: `--workers N` fans phase-2 topologies across N
//! threads sharing the incumbent bound — the winning plan is
//! byte-identical at every worker count. Both print the search,
//! annotation, and plan-cache counters after the cost line.
//!
//! `--cache-shards N` routes every service call through a sharded,
//! request-coalescing response cache; `--prefetch` additionally warms
//! the next chunk speculatively (implying a cache at the default
//! width). Both report hit / coalesced / prefetch counters after the
//! answers.
//!
//! `--join-index` selects the join kernel: `hash` (the default) builds
//! per-chunk hash indexes over equi-join keys and probes them instead
//! of scanning every candidate pair; `off` runs the plain nested loop.
//! Both produce byte-identical answers. `--tile-prune` additionally
//! skips tiles whose score-product representative cannot reach the
//! current top-k frontier. A `join:` counter line is printed after the
//! answers.
//!
//! `--rank-join` turns parallel joins into true top-k rank joins: the
//! inputs are score-sorted and chunk pulls stop as soon as the
//! threshold bound proves the buffered top `k` final (the query's
//! `top k` supplies the target). `--nary-join` fuses chains of
//! parallel joins into one n-ary pass that skips the intermediate
//! composites; answers stay byte-identical to the binary cascade. A
//! `rank:` counter line is printed after the answers.
//!
//! `--exec-workers N` sets the morsel-executor worker count (default:
//! the machine's core count). Above 1, tile joins, n-ary
//! intersections, and batch predicate evaluation decompose into
//! morsels on a shared work-stealing pool; a deterministic ordered
//! reducer keeps the answers byte-identical to serial at any worker
//! count. `--exec-workers 1` takes the exact serial code path. `seco
//! stats` prints the scheduler counters (queue depth, steals, morsels,
//! worker busy time) after the service statistics; `seco serve` sizes
//! the daemon-wide shared pool with the same flag.
//!
//! `--columnar` toggles column-wise consumption of chunk bodies
//! (columnar hash-key extraction, zero-copy kernel inputs) and
//! `--batch-eval` toggles the vectorized predicate kernels built on
//! top of it; both default to `on` and are byte-identical to the
//! row-at-a-time plane. Every flag default is taken from
//! `EngineConfig::default()`, and each flag maps 1:1 to an
//! `EngineConfig` builder method.
//!
//! `--adaptive` turns on mid-flight re-optimization: after every fresh
//! service or join stage, the engine compares the observed output
//! cardinality against the plan-time estimate and, past the deviation
//! threshold (`--adaptive-threshold`, default from
//! `EngineConfig::default()`), promotes the observed statistics into
//! the registry and re-plans the unexecuted suffix. Completed stages
//! replay from a memo, so each call is still charged exactly once. The
//! run reports its replan and epoch-invalidation counts after the
//! answers. With the flag off, execution is byte-identical to the
//! non-adaptive engine.
//!
//! `stats` runs the query like `run` and then dumps, per service, the
//! declared (registration-time) statistics next to what the
//! accumulators actually observed — cardinality, latency EWMA, chunk
//! fetches, promotion state — plus observed join selectivities per
//! connection pattern.
//!
//! `serve` starts the long-running daemon: every query session shares
//! one registry, plan cache, fetch cache, and statistics accumulator,
//! so later sessions plan and fetch against state earlier sessions
//! warmed. Sessions are liquid — `POST /session/<id>/more`, `/rerank`,
//! and `/expand` continue a kept cursor — and `POST /admin/shutdown`
//! drains in-flight work before the process exits. `--addr` picks the
//! listen address (default `127.0.0.1:7361`; port 0 lets the OS pick),
//! and the admission knobs map 1:1 onto `ServerConfig`.
//!
//! `--fault-profile` makes every service inject deterministic faults
//! (seeded from `--seed`, so two identical invocations produce
//! byte-identical output) and switches the executor to graceful
//! degradation: failed branches contribute partial results and are
//! listed after the answers instead of aborting the run.
//! `--deadline-ms` bounds each service call; both flags route calls
//! through the resilient `ServiceClient` (retry with backoff and a
//! per-service circuit breaker) and report its counters.
//!
//! The query is given in the chapter's syntax, e.g.:
//!
//! ```text
//! seco run --domain entertainment 'Select Movie1 As M, Theatre1 as T, Restaurant1 as R
//!   where Shows(M,T) and DinnerPlace(T,R) and M.Genres.Genre="comedy" and
//!   M.Openings.Country="country-0" and M.Openings.Date>2009-03-01 and
//!   M.Language="en" and T.UAddress="via Golgi 42" and T.UCity="Milano" and
//!   T.UCountry="country-0" and T.TCountry="country-0" and
//!   R.Category.Name="pizzeria" ranking (0.3, 0.5, 0.2) top 10'
//! ```

use std::process::ExitCode;

use search_computing::plan::display;
use search_computing::prelude::*;
use search_computing::query::feasibility::analyze;
use search_computing::services::domains::{entertainment, travel};

struct Args {
    command: String,
    domain: String,
    metric: CostMetric,
    seed: u64,
    parallel: bool,
    fault_profile: String,
    deadline_ms: Option<f64>,
    cache_shards: usize,
    prefetch: bool,
    join_index: JoinIndexMode,
    tile_prune: bool,
    rank_join: bool,
    nary_join: bool,
    adaptive: bool,
    adaptive_threshold: f64,
    columnar: bool,
    batch_eval: bool,
    workers: usize,
    exec_workers: usize,
    addr: String,
    max_sessions: usize,
    max_concurrent: usize,
    tenant_budget: u64,
    query: String,
}

fn parse_args() -> Result<Args, String> {
    let mut argv = std::env::args().skip(1);
    let command = argv.next().ok_or_else(usage)?;
    // Every flag default comes from the engine's own defaults, so the
    // CLI can never drift from `EngineConfig::default()`.
    let defaults = EngineConfig::default();
    let mut domain = "entertainment".to_owned();
    let mut metric = CostMetric::RequestCount;
    let mut seed = 42u64;
    let mut parallel = false;
    let mut fault_profile = "none".to_owned();
    let mut deadline_ms = None;
    let mut cache_shards = defaults.fetch.cache_shards;
    let mut prefetch = defaults.fetch.prefetch;
    let mut join_index = defaults.join_index.mode;
    let mut tile_prune = defaults.join_index.tile_prune;
    let mut rank_join = defaults.rank_join;
    let mut nary_join = defaults.nary_join;
    let mut adaptive = defaults.adaptive;
    let mut adaptive_threshold = defaults.adaptive_threshold;
    let mut columnar = defaults.columnar.columnar;
    let mut batch_eval = defaults.columnar.batch_eval;
    let mut workers = 1usize;
    // Morsel parallelism defaults to the machine's core count; the
    // library default (1) stays serial so embedding stays byte-stable.
    let mut exec_workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    // Serving defaults come from `ServerConfig::default()` so the CLI
    // cannot drift from the server crate's own admission defaults.
    let server_defaults = search_computing::server::ServerConfig::default();
    let mut addr = "127.0.0.1:7361".to_owned();
    let mut max_sessions = server_defaults.max_sessions;
    let mut max_concurrent = server_defaults.max_concurrent;
    let mut tenant_budget = server_defaults.tenant_budget;
    let mut query_parts: Vec<String> = Vec::new();
    let parse_join_index = |mode: &str| match mode {
        "off" | "nested" => Ok(JoinIndexMode::Off),
        "hash" => Ok(JoinIndexMode::Hash),
        other => Err(format!("unknown join index `{other}` (use off or hash)")),
    };
    let parse_switch = |flag: &str, value: &str| match value {
        "on" | "true" => Ok(true),
        "off" | "false" => Ok(false),
        other => Err(format!(
            "unknown value `{other}` for {flag} (use on or off)"
        )),
    };
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--domain" => domain = argv.next().ok_or("--domain needs a value")?,
            "--fault-profile" => {
                fault_profile = argv.next().ok_or("--fault-profile needs a value")?;
            }
            "--deadline-ms" => {
                deadline_ms = Some(
                    argv.next()
                        .ok_or("--deadline-ms needs a value")?
                        .parse()
                        .map_err(|e| format!("bad deadline: {e}"))?,
                );
            }
            "--seed" => {
                seed = argv
                    .next()
                    .ok_or("--seed needs a value")?
                    .parse()
                    .map_err(|e| format!("bad seed: {e}"))?;
            }
            "--parallel" => parallel = true,
            "--prefetch" => prefetch = true,
            "--tile-prune" => tile_prune = true,
            "--rank-join" => rank_join = true,
            "--nary-join" => nary_join = true,
            "--adaptive" => adaptive = true,
            "--adaptive-threshold" => {
                adaptive_threshold = argv
                    .next()
                    .ok_or("--adaptive-threshold needs a value")?
                    .parse()
                    .map_err(|e| format!("bad threshold: {e}"))?;
                if adaptive_threshold < 1.0 {
                    return Err("--adaptive-threshold must be at least 1.0".into());
                }
            }
            "--join-index" => {
                join_index = parse_join_index(&argv.next().ok_or("--join-index needs a value")?)?;
            }
            "--columnar" => {
                columnar = parse_switch(
                    "--columnar",
                    &argv.next().ok_or("--columnar needs a value")?,
                )?;
            }
            "--batch-eval" => {
                batch_eval = parse_switch(
                    "--batch-eval",
                    &argv.next().ok_or("--batch-eval needs a value")?,
                )?;
            }
            "--cache-shards" => {
                cache_shards = argv
                    .next()
                    .ok_or("--cache-shards needs a value")?
                    .parse()
                    .map_err(|e| format!("bad shard count: {e}"))?;
            }
            "--addr" => addr = argv.next().ok_or("--addr needs a value")?,
            "--max-sessions" => {
                max_sessions = argv
                    .next()
                    .ok_or("--max-sessions needs a value")?
                    .parse()
                    .map_err(|e| format!("bad session cap: {e}"))?;
            }
            "--max-concurrent" => {
                max_concurrent = argv
                    .next()
                    .ok_or("--max-concurrent needs a value")?
                    .parse()
                    .map_err(|e| format!("bad concurrency cap: {e}"))?;
            }
            "--tenant-budget" => {
                tenant_budget = argv
                    .next()
                    .ok_or("--tenant-budget needs a value")?
                    .parse()
                    .map_err(|e| format!("bad budget: {e}"))?;
            }
            "--workers" => {
                workers = argv
                    .next()
                    .ok_or("--workers needs a value")?
                    .parse()
                    .map_err(|e| format!("bad worker count: {e}"))?;
                if workers == 0 {
                    return Err("--workers must be at least 1".into());
                }
            }
            "--exec-workers" => {
                exec_workers = argv
                    .next()
                    .ok_or("--exec-workers needs a value")?
                    .parse()
                    .map_err(|e| format!("bad exec worker count: {e}"))?;
                if exec_workers == 0 {
                    return Err("--exec-workers must be at least 1".into());
                }
            }
            "--metric" => {
                let m = argv.next().ok_or("--metric needs a value")?;
                metric = match m.as_str() {
                    "execution-time" | "time" => CostMetric::ExecutionTime,
                    "sum" => CostMetric::Sum,
                    "request-count" | "calls" => CostMetric::RequestCount,
                    "bottleneck" => CostMetric::Bottleneck,
                    "time-to-screen" | "tts" => CostMetric::TimeToScreen,
                    other => return Err(format!("unknown metric `{other}`")),
                };
            }
            other => {
                if let Some(mode) = other.strip_prefix("--join-index=") {
                    join_index = parse_join_index(mode)?;
                } else if let Some(value) = other.strip_prefix("--columnar=") {
                    columnar = parse_switch("--columnar", value)?;
                } else if let Some(value) = other.strip_prefix("--batch-eval=") {
                    batch_eval = parse_switch("--batch-eval", value)?;
                } else {
                    query_parts.push(other.to_owned());
                }
            }
        }
    }
    Ok(Args {
        command,
        domain,
        metric,
        seed,
        parallel,
        fault_profile,
        deadline_ms,
        cache_shards,
        prefetch,
        join_index,
        tile_prune,
        rank_join,
        nary_join,
        adaptive,
        adaptive_threshold,
        columnar,
        batch_eval,
        workers,
        exec_workers,
        addr,
        max_sessions,
        max_concurrent,
        tenant_budget,
        query: query_parts.join(" "),
    })
}

fn usage() -> String {
    "usage: seco <services|explain|optimize|run|stats|oracle|serve> \
     [--domain entertainment|travel] \
     [--metric execution-time|sum|request-count|bottleneck|time-to-screen] \
     [--seed N] [--workers N] [--exec-workers N] [--parallel] \
     [--fault-profile none|flaky|outage] \
     [--deadline-ms N] [--cache-shards N] [--prefetch] \
     [--join-index off|hash] [--tile-prune] [--rank-join] [--nary-join] \
     [--adaptive] [--adaptive-threshold N] \
     [--columnar on|off] [--batch-eval on|off] \
     [--addr HOST:PORT] [--max-sessions N] [--max-concurrent N] \
     [--tenant-budget N] <query>"
        .to_owned()
}

fn build_registry(
    domain: &str,
    seed: u64,
    faults: FaultProfile,
) -> Result<ServiceRegistry, String> {
    match domain {
        "entertainment" => {
            entertainment::build_registry_with_faults(seed, faults).map_err(|e| e.to_string())
        }
        "travel" => travel::build_registry_with_faults(seed, faults).map_err(|e| e.to_string()),
        other => Err(format!(
            "unknown domain `{other}` (use entertainment or travel)"
        )),
    }
}

fn cmd_services(registry: &ServiceRegistry) {
    println!("service interfaces:");
    for name in registry.service_names() {
        if let Ok(iface) = registry.interface(name) {
            println!("  {iface}");
        }
    }
    println!("\nconnection patterns:");
    for name in registry.pattern_names() {
        if let Ok(p) = registry.pattern(name) {
            println!("  {p}");
        }
    }
}

fn cmd_explain(
    registry: &ServiceRegistry,
    metric: CostMetric,
    workers: usize,
    show_dot: bool,
    query_src: &str,
) -> Result<(), String> {
    let query = parse_query(query_src).map_err(|e| e.to_string())?;
    println!("query: {query}\n");
    let report = analyze(&query, registry).map_err(|e| e.to_string())?;
    println!(
        "feasible; invocation order {:?}, pipe edges {:?}\n",
        report.order, report.pipe_edges
    );
    let mut optimizer = Optimizer::new(registry, metric);
    optimizer.workers = workers;
    let best = optimizer.optimize(&query).map_err(|e| e.to_string())?;
    let stats = &best.stats;
    println!(
        "optimized under {metric}: cost {:.1}; explored {} topologies ({} pruned)",
        best.cost, stats.topologies, stats.pruned
    );
    println!(
        "search: {} workers, {} assignments, {} instantiated, {} bound updates",
        workers, stats.assignments, stats.instantiated, stats.bound_updates
    );
    println!(
        "annotation: {} full, {} delta, {} memo hits",
        stats.annotate_full, stats.annotate_delta, stats.memo_hits
    );
    println!(
        "plan cache: {} hits, {} misses, {} inserts",
        stats.cache_hits, stats.cache_misses, stats.cache_inserts
    );
    println!(
        "adaptivity: {} epoch invalidations, {} replans\n",
        stats.epoch_invalidations, stats.replans
    );
    println!(
        "{}",
        display::ascii(&best.plan, Some(&best.annotated)).map_err(|e| e.to_string())?
    );
    if show_dot {
        println!(
            "DOT:\n{}",
            display::to_dot(&best.plan).map_err(|e| e.to_string())?
        );
    }
    Ok(())
}

fn cmd_run(
    registry: &ServiceRegistry,
    metric: CostMetric,
    parallel: bool,
    opts: EngineConfig,
    query_src: &str,
) -> Result<(), String> {
    let query = parse_query(query_src).map_err(|e| e.to_string())?;
    let mut opts = opts;
    if opts.rank_join && opts.join_k == 0 {
        // The rank join needs a top-k target; the query's `top k`
        // clause is the natural one.
        opts = opts.join_k(query.k);
    }
    let best = optimize(&query, registry, metric).map_err(|e| e.to_string())?;
    registry.reset_stats();
    let (results, degraded, join_stats, replans, replanned) = if parallel {
        let out = execute_parallel_with(&best.plan, registry, opts).map_err(|e| e.to_string())?;
        let replans = usize::from(out.replanned.is_some());
        (
            out.results,
            out.degraded,
            out.join_stats,
            replans,
            out.replanned,
        )
    } else {
        let out = execute_plan(&best.plan, registry, opts).map_err(|e| e.to_string())?;
        println!(
            "{} request-responses, {:.0} virtual ms critical path",
            out.total_calls, out.critical_ms
        );
        (
            out.results,
            out.degraded,
            out.join_stats,
            out.replans,
            out.replanned,
        )
    };
    let set = ResultSet::new(results, query.ranking.clone()).with_degraded(degraded);
    println!("{} combinations; top {}:", set.len(), query.k);
    for (i, combo) in set.top_k(query.k).iter().enumerate() {
        println!(
            "  #{:<3} score={:.3}  {combo}",
            i + 1,
            query.ranking.score(combo)
        );
    }
    if opts.client.is_some() || opts.failure_mode == FailureMode::Degrade {
        if set.is_degraded() {
            println!("degraded services: {}", set.degraded.join(", "));
        } else {
            println!("degraded services: none");
        }
        let stats = registry.total_stats();
        println!(
            "resilience: {} retries, {} timeouts, {} breaker trips, {} short-circuits",
            stats.retries, stats.timeouts, stats.breaker_trips, stats.short_circuits
        );
    }
    if opts.fetch.enabled() {
        let stats = registry.total_stats();
        println!(
            "fetch: {} underlying calls, {} cache hits, {} coalesced waits, {} prefetches",
            stats.calls, stats.cache_hits, stats.coalesced, stats.prefetches
        );
    }
    println!(
        "join: {} index builds, {} probes, {} pairs skipped, {} tiles pruned, {} predicate evals",
        join_stats.index_builds,
        join_stats.probes,
        join_stats.pairs_skipped,
        join_stats.tiles_pruned,
        join_stats.predicate_evals
    );
    println!(
        "columnar: {} columns scanned, {} batch evals, {} rows materialized",
        join_stats.columns_scanned, join_stats.batch_evals, join_stats.rows_materialized
    );
    println!(
        "rank: {} chunks fetched, {} chunks saved, {} bound checks, \
         {} intermediates elided, time-to-kth {} us",
        join_stats.chunks_fetched,
        join_stats.chunks_saved,
        join_stats.bound_checks,
        join_stats.intermediates_elided,
        join_stats.time_to_kth_us
    );
    if opts.adaptive {
        println!(
            "adaptive: {} replan(s), {} epoch invalidation(s), final plan {}",
            replans,
            registry.epoch_invalidations(),
            match &replanned {
                Some(plan) => format!("switched to {}", plan.canonical_key()),
                None => "unchanged".to_owned(),
            }
        );
    }
    Ok(())
}

fn cmd_stats(
    registry: &ServiceRegistry,
    metric: CostMetric,
    opts: EngineConfig,
    query_src: &str,
) -> Result<(), String> {
    let query = parse_query(query_src).map_err(|e| e.to_string())?;
    let best = optimize(&query, registry, metric).map_err(|e| e.to_string())?;
    registry.reset_stats();
    // Run against daemon-grade state so the scheduler counters below
    // describe the same shared pool a `seco serve` daemon would use.
    let shared = SharedState::for_daemon(opts.exec_workers);
    let out =
        execute_plan_shared(&best.plan, registry, opts, &shared).map_err(|e| e.to_string())?;
    println!(
        "{} combinations, {} request-responses, {:.0} virtual ms critical path\n",
        out.results.len(),
        out.total_calls,
        out.critical_ms
    );
    println!("declared vs. observed service statistics:");
    for (name, drift) in registry.service_drift() {
        let observed = match drift.observed_cardinality {
            Some(card) => format!(
                "{:.1}{} over {} binding(s)",
                card.value,
                if card.exact { "" } else { "+ (lower bound)" },
                card.samples
            ),
            None => "-".to_owned(),
        };
        let latency = match drift.observed_latency_ms {
            Some(ms) => format!("{ms:.1}"),
            None => "-".to_owned(),
        };
        println!(
            "  {name}: cardinality declared {:.1} observed {observed}; \
             latency ms declared {:.1} observed {latency}; {} fetch(es){}",
            drift.declared_cardinality,
            drift.declared_latency_ms,
            drift.fetches,
            if drift.promoted { "; promoted" } else { "" }
        );
    }
    println!("\ndeclared vs. observed join selectivities:");
    let observations = registry.join_observations();
    if observations.is_empty() {
        println!("  (no parallel join observed)");
    }
    for (pattern, obs) in observations {
        let declared = registry
            .pattern(&pattern)
            .map(|p| format!("{:.3}", p.selectivity))
            .unwrap_or_else(|_| "-".to_owned());
        let observed = obs
            .selectivity()
            .map(|s| format!("{s:.3}"))
            .unwrap_or_else(|| "-".to_owned());
        println!(
            "  {pattern}: declared {declared} observed {observed} ({} / {} pairs)",
            obs.matches, obs.pairs
        );
    }
    if opts.adaptive {
        println!(
            "\nadaptive: {} replan(s), {} epoch invalidation(s)",
            out.replans,
            registry.epoch_invalidations()
        );
    }
    if let Some(pool) = shared.exec_pool() {
        let e = pool.stats();
        println!(
            "\nscheduler: {} workers, {} morsels, {} steals, queue depth {}, \
             busy {} ms, serial-equivalent {} us, modeled makespan {} us",
            e.workers,
            e.morsels,
            e.steals,
            e.queue_depth,
            e.busy_ms,
            e.serial_micros,
            e.makespan_micros
        );
    }
    shared.shutdown();
    // The interner leaks distinct names by design: growth tracks the
    // workload's vocabulary, not its volume (see Symbol::table_bytes).
    println!(
        "\ninterner: {} symbols, {} bytes (grow-only, bounded by vocabulary)",
        search_computing::model::Symbol::table_len(),
        search_computing::model::Symbol::table_bytes()
    );
    Ok(())
}

fn cmd_oracle(registry: &ServiceRegistry, query_src: &str) -> Result<(), String> {
    let query = parse_query(query_src).map_err(|e| e.to_string())?;
    let answers = evaluate_oracle(&query, registry).map_err(|e| e.to_string())?;
    println!(
        "{} answers (exhaustive declarative semantics); first {}:",
        answers.len(),
        query.k
    );
    for combo in answers.iter().take(query.k) {
        println!("  score={:.3}  {combo}", query.ranking.score(combo));
    }
    Ok(())
}

fn cmd_serve(registry: ServiceRegistry, args: &Args, opts: EngineConfig) -> Result<(), String> {
    use search_computing::server::{Server, ServerConfig, ServerState};
    let config = ServerConfig {
        engine: opts,
        metric: args.metric,
        max_sessions: args.max_sessions,
        max_concurrent: args.max_concurrent,
        tenant_budget: args.tenant_budget,
        exec_workers: args.exec_workers,
    };
    let state = ServerState::new(registry, config);
    let server = Server::bind(&args.addr, state).map_err(|e| e.to_string())?;
    let addr = server.local_addr().map_err(|e| e.to_string())?;
    println!(
        "serving {} on http://{addr} — POST /query, POST /session/<id>/(more|rerank|expand), \
         GET /stats, POST /admin/(promote|shutdown)",
        args.domain
    );
    // Blocks until `POST /admin/shutdown` drains the daemon.
    server.run();
    println!("drained; bye");
    Ok(())
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let faults = match FaultProfile::by_name(&args.fault_profile) {
        // Fault decisions derive from the run's --seed so a fixed seed
        // reproduces the exact same failures, retries, and answers.
        Some(p) => p.with_seed(args.seed.wrapping_add(p.seed)),
        None => {
            eprintln!(
                "unknown fault profile `{}` (use none, flaky, or outage)",
                args.fault_profile
            );
            return ExitCode::FAILURE;
        }
    };
    let registry = match build_registry(&args.domain, args.seed, faults) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let resilient = !faults.is_inert() || args.deadline_ms.is_some();
    // Every flag maps 1:1 onto an `EngineConfig` builder method.
    let mut opts = EngineConfig::default()
        .cache_shards(args.cache_shards)
        .prefetch(args.prefetch)
        .join_index_mode(args.join_index)
        .tile_prune(args.tile_prune)
        .rank_join(args.rank_join)
        .nary_join(args.nary_join)
        .adaptive(args.adaptive)
        .adaptive_threshold(args.adaptive_threshold)
        .adaptive_metric(args.metric)
        .columnar(args.columnar)
        .batch_eval(args.batch_eval)
        .exec_workers(args.exec_workers);
    if resilient {
        opts = opts.degrade().client(ClientConfig {
            deadline_ms: args.deadline_ms,
            seed: args.seed,
            ..Default::default()
        });
    }
    let outcome = match args.command.as_str() {
        "services" => {
            cmd_services(&registry);
            Ok(())
        }
        "explain" => cmd_explain(&registry, args.metric, args.workers, true, &args.query),
        "optimize" => cmd_explain(&registry, args.metric, args.workers, false, &args.query),
        "run" => cmd_run(&registry, args.metric, args.parallel, opts, &args.query),
        "stats" => cmd_stats(&registry, args.metric, opts, &args.query),
        "oracle" => cmd_oracle(&registry, &args.query),
        "serve" => cmd_serve(registry, &args, opts),
        _ => Err(usage()),
    };
    match outcome {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("{e}");
            ExitCode::FAILURE
        }
    }
}
