//! Workspace-wide error type.
//!
//! Every layer of the workspace has its own error enum; applications
//! that drive the whole stack (parse → optimize → execute) previously
//! had to box them or write seven `map_err` arms. [`SecoError`] unifies
//! them behind one enum with `From` impls for each, so `?` works across
//! layer boundaries, and classifies failures as retryable or not — the
//! same classification the resilience middleware
//! ([`seco_services::resilience`]) uses to decide whether a failed call
//! is worth retrying.

use std::fmt;

use seco_engine::EngineError;
use seco_join::JoinError;
use seco_model::ModelError;
use seco_optimizer::OptError;
use seco_plan::PlanError;
use seco_query::QueryError;
use seco_services::ServiceError;

/// Classification of errors into transient (worth retrying) and
/// permanent. Implemented by every error that can wrap a service-layer
/// failure; a deterministic logic error is never retryable.
pub trait Retryable {
    /// True when retrying the failed operation could succeed.
    fn is_retryable(&self) -> bool;
}

impl Retryable for ServiceError {
    fn is_retryable(&self) -> bool {
        self.is_transient()
    }
}

/// Any error of the Search Computing stack.
#[derive(Debug, Clone, PartialEq)]
pub enum SecoError {
    /// Service-mart / schema / tuple error.
    Model(ModelError),
    /// Service substrate error (calls, registries, resilience).
    Service(ServiceError),
    /// Query language / semantics error.
    Query(QueryError),
    /// Plan DAG error.
    Plan(PlanError),
    /// Join method error.
    Join(JoinError),
    /// Optimizer error.
    Opt(OptError),
    /// Executor error.
    Engine(EngineError),
}

impl SecoError {
    /// The service-layer failure at the root of this error, if any —
    /// unwraps the `Engine(Join(Service(…)))`-style nesting the
    /// executors produce.
    pub fn service_cause(&self) -> Option<&ServiceError> {
        match self {
            SecoError::Service(e) => Some(e),
            SecoError::Join(JoinError::Service(e)) => Some(e),
            SecoError::Engine(EngineError::Service(e)) => Some(e),
            SecoError::Engine(EngineError::Join(JoinError::Service(e))) => Some(e),
            _ => None,
        }
    }
}

impl Retryable for SecoError {
    fn is_retryable(&self) -> bool {
        self.service_cause().is_some_and(ServiceError::is_transient)
    }
}

impl fmt::Display for SecoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SecoError::Model(e) => write!(f, "model error: {e}"),
            SecoError::Service(e) => write!(f, "service error: {e}"),
            SecoError::Query(e) => write!(f, "query error: {e}"),
            SecoError::Plan(e) => write!(f, "plan error: {e}"),
            SecoError::Join(e) => write!(f, "join error: {e}"),
            SecoError::Opt(e) => write!(f, "optimizer error: {e}"),
            SecoError::Engine(e) => write!(f, "engine error: {e}"),
        }
    }
}

impl std::error::Error for SecoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SecoError::Model(e) => Some(e),
            SecoError::Service(e) => Some(e),
            SecoError::Query(e) => Some(e),
            SecoError::Plan(e) => Some(e),
            SecoError::Join(e) => Some(e),
            SecoError::Opt(e) => Some(e),
            SecoError::Engine(e) => Some(e),
        }
    }
}

impl From<ModelError> for SecoError {
    fn from(e: ModelError) -> Self {
        SecoError::Model(e)
    }
}
impl From<ServiceError> for SecoError {
    fn from(e: ServiceError) -> Self {
        SecoError::Service(e)
    }
}
impl From<QueryError> for SecoError {
    fn from(e: QueryError) -> Self {
        SecoError::Query(e)
    }
}
impl From<PlanError> for SecoError {
    fn from(e: PlanError) -> Self {
        SecoError::Plan(e)
    }
}
impl From<JoinError> for SecoError {
    fn from(e: JoinError) -> Self {
        SecoError::Join(e)
    }
}
impl From<OptError> for SecoError {
    fn from(e: OptError) -> Self {
        SecoError::Opt(e)
    }
}
impl From<EngineError> for SecoError {
    fn from(e: EngineError) -> Self {
        SecoError::Engine(e)
    }
}

/// Result alias over [`SecoError`].
pub type Result<T> = std::result::Result<T, SecoError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_layer_converts_via_question_mark() {
        fn model() -> Result<()> {
            Err(ModelError::UnknownName("m".into()))?
        }
        fn all() -> Result<()> {
            Err(QueryError::UnknownAtom("a".into()))?
        }
        assert!(matches!(model().unwrap_err(), SecoError::Model(_)));
        let e = all().unwrap_err();
        assert!(matches!(e, SecoError::Query(_)));
        assert!(e.to_string().contains("query error"));
        assert!(std::error::Error::source(&e).is_some());
    }

    #[test]
    fn retryability_tracks_the_transient_service_cause() {
        let transient = ServiceError::Transport {
            service: "s".into(),
            detail: "connection reset".into(),
        };
        assert!(SecoError::from(transient.clone()).is_retryable());
        assert!(SecoError::Join(JoinError::Service(transient.clone())).is_retryable());
        assert!(
            SecoError::Engine(EngineError::Join(JoinError::Service(transient.clone())))
                .is_retryable()
        );
        assert!(SecoError::Engine(EngineError::Service(transient)).is_retryable());

        // Logic errors are never retryable.
        assert!(!SecoError::from(QueryError::UnknownAtom("a".into())).is_retryable());
        assert!(!SecoError::from(ServiceError::UnknownService("s".into())).is_retryable());
        // An open breaker is deliberate refusal, not a transient fault.
        assert!(!SecoError::from(ServiceError::CircuitOpen {
            service: "s".into()
        })
        .is_retryable());
        // A deadline overrun is transient: the next attempt may be fast.
        assert!(SecoError::from(ServiceError::DeadlineExceeded {
            service: "s".into(),
            deadline_ms: 10.0
        })
        .is_retryable());
    }
}
